//! Crash-safe ingestion: the durable run driver.
//!
//! `run_durable` drives the crawl scheduler cycle-by-cycle through the
//! *sequential* pipeline, journaling every cycle and every ingested report
//! (see [`crate::journal`]) and periodically persisting an **incremental
//! binary checkpoint** into a [`kg_persist::SegmentStore`] living alongside
//! the journal: run metadata (scheduler control state + ingested hashes) as
//! one JSON blob, the graph's copy-on-write arena segments and the search
//! index's term shards as one `kg_codec` `KGBIN001` binary blob each
//! (fixed-layout, validated in place — recovery is checksum + bounds-check +
//! index rebuild, no per-field parse). Only blobs dirtied since the previous
//! checkpoint are rewritten — the rest are carried forward by manifest
//! reference — so a steady-state checkpoint costs O(delta), not O(graph).
//! Recovery decodes segment blobs in parallel (they are independent by
//! construction) and auto-sniffs each payload's format, so manifests mixing
//! legacy JSON blobs with binary ones — e.g. a store written by an older
//! build and resumed by this one — reassemble cleanly; the JSON encoding
//! stays writable via [`DurableOptions::json_payloads`] as the codec's
//! differential oracle.
//!
//! The recovery model is **snapshot + deterministic redo**: the checkpoint
//! is the durable truth, and everything after it is recomputed rather than
//! replayed from the journal. Because the simulated web is a pure function
//! of `(seed, url, time)` and the scheduler's heap order is total, resuming
//! from the newest checkpoint that verifies (frame checksums, then a full
//! digest recomputation) and re-stepping to the same horizon reproduces the
//! uninterrupted run byte-for-byte — the property the chaos harness
//! (`tests/chaos.rs`, `tests/persist_chaos.rs`, `scripts/chaos.sh`) asserts
//! via [`graph_digest`]. A corrupt checkpoint is quarantined with
//! attribution and recovery falls back to the next older one; journal
//! records after the restored checkpoint are an audit trail (and the chaos
//! harness's kill-point counter), not replay instructions; content-hash
//! dedup keeps any re-ingestion idempotent.
//!
//! Disk growth is bounded: after each verified checkpoint the store prunes
//! checkpoints beyond [`DurableOptions::retention`] and the journal is
//! truncated below the oldest retained checkpoint's marker; accumulated
//! dead frames trigger crash-safe compaction.

use crate::journal::{self, Journal, JournalError, JournalRecord};
use crate::snapshot::KnowledgeBase;
use crate::SystemConfig;
use kg_corpus::{standard_sources, SimulatedWeb, World};
use kg_crawler::{Scheduler, SchedulerCheckpoint, SchedulerConfig, SchedulerStats};
use kg_graph::{Edge, GraphStore, Node, NodeId};
use kg_ir::{combine_hashes, RawReport};
use kg_persist::{FaultHook, SegmentStore, StoreOptions};
use kg_pipeline::{
    run_sequential, GraphConnector, ParserRegistry, PipelineMetrics, TraceEvent, TraceLog,
};
use kg_search::{Bm25Params, SearchIndex, ShardTerms, PERSIST_SHARDS};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Default simulated start: the publication epoch of the synthetic corpus.
pub const DEFAULT_START_MS: u64 = 1_500_000_000_000;

/// Deterministic fingerprint of a knowledge graph — a thin alias for
/// [`GraphStore::digest`]: the commutative sum of per-element hashes over the
/// elements' canonical JSON (properties in BTreeMap order; the serde-skipped
/// hash indexes never leak in). The same scheme serves all digest consumers —
/// durable checkpoints, the determinism suite, and serving epochs
/// (`kg_serve::KgSnapshot::digest`) — so their fingerprints stay mutually
/// comparable, and recovery can verify a reassembled graph against the
/// manifest's stored digest.
pub fn graph_digest(graph: &GraphStore) -> u64 {
    graph.digest()
}

/// The legacy monolithic snapshot shape: everything a recovery needs in one
/// JSON document. The durable driver no longer writes these (checkpoints go
/// to the segment store); the struct remains as the JSON-sidecar baseline
/// the E15 persistence benchmark compares the segment store against.
#[derive(Serialize, Deserialize)]
pub struct SnapshotPayload {
    pub seq: u64,
    /// Scheduler cycles completed when the snapshot was taken.
    pub cycles_done: u64,
    /// [`graph_digest`] of `kb.graph`, re-verified on load.
    pub kg_digest: u64,
    /// Sorted content hashes of every report ingested so far.
    pub ingested: Vec<u64>,
    pub scheduler: SchedulerCheckpoint,
    pub kb: KnowledgeBase,
}

/// Checkpoint metadata blob (`meta`): everything outside the graph arenas
/// and search shards, plus the counts recovery needs to know which segment
/// blobs to read back.
#[derive(Serialize, Deserialize)]
struct CheckpointMeta {
    seq: u64,
    cycles_done: u64,
    kg_digest: u64,
    /// Sorted content hashes of every report ingested so far.
    ingested: Vec<u64>,
    scheduler: SchedulerCheckpoint,
    node_segments: usize,
    edge_segments: usize,
    search_params: Bm25Params,
    search_doc_segments: usize,
}

/// Knobs of a durable run.
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Persist a checkpoint every this many scheduler cycles (plus one at
    /// the end of every run that made progress). `0` means only the final one.
    pub snapshot_every_cycles: u64,
    /// Checkpoints retained on disk after each new one (min 1). Older
    /// checkpoints are pruned and the journal truncated below the oldest
    /// retained marker, bounding disk to O(live graph + retention).
    pub retention: usize,
    /// Chaos harness: fail with [`JournalError::InjectedCrash`] instead of
    /// appending journal record number N (counted from this run's start).
    pub crash_after_records: Option<u64>,
    /// Make the injected crash leave a torn half-written frame behind.
    pub crash_torn_tail: bool,
    /// Chaos harness: kill before global durable I/O operation N. Journal
    /// and segment store share one op counter, so sweeping N crosses every
    /// syscall boundary of the checkpoint/compaction/truncation paths.
    pub io_kill_after: Option<u64>,
    /// Make the doomed I/O op a torn half-write.
    pub io_kill_torn: bool,
    /// Externally supplied fault hook (op-order audits). When set,
    /// `io_kill_after` arms *this* hook.
    pub fault_hook: Option<FaultHook>,
    /// Write segment/shard blobs as legacy JSON instead of `KGBIN001`
    /// binary. Recovery auto-sniffs per blob either way; this knob exists as
    /// the differential oracle for the binary codec and to emulate stores
    /// written by older builds (mixed-format forward-compat tests).
    pub json_payloads: bool,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            snapshot_every_cycles: 8,
            retention: 2,
            crash_after_records: None,
            crash_torn_tail: false,
            io_kill_after: None,
            io_kill_torn: false,
            fault_hook: None,
            json_payloads: false,
        }
    }
}

/// What one `run_durable` call did.
#[derive(Debug)]
pub struct DurableReport {
    /// Scheduler cycles fired by this call.
    pub cycles_run: u64,
    /// Reports connected into the graph by this call.
    pub reports_ingested: usize,
    /// Journal records appended by this call.
    pub records_appended: u64,
    /// Report groups skipped because their content hash was already ingested.
    pub skipped_duplicates: usize,
    /// [`graph_digest`] of the final graph.
    pub kg_digest: u64,
    /// Checkpoint sequence number recovery started from, if resuming.
    pub resumed_from_snapshot: Option<u64>,
    /// Intact journal records found on startup.
    pub replayed_records: usize,
    /// Whether startup had to discard a torn journal tail.
    pub torn_tail: bool,
    /// Attributed quarantine events from recovery: checkpoints (or single
    /// blobs) that failed verification and were skipped. Empty on a clean
    /// resume.
    pub recovery_events: Vec<String>,
    /// Scheduler stats over the whole journal directory's lifetime.
    pub stats: SchedulerStats,
    /// Accumulated pipeline accounting across this call's cycles.
    pub metrics: PipelineMetrics,
    /// The final graph (an `Arc`-segment refcount clone, not a deep copy) —
    /// lets callers run post-build checks (e.g. shard-partition digest
    /// verification) without re-reading the durable dir.
    pub graph: GraphStore,
    /// The final keyword index (same cheap clone).
    pub search: SearchIndex<NodeId>,
    /// Structured events: replay, snapshots, reboots, breaker transitions.
    pub trace: TraceLog,
}

/// Group a cycle's raw pages into whole reports (pages of one report arrive
/// contiguously, in page order) with an order-sensitive combined body hash.
fn group_reports(reports: Vec<RawReport>) -> Vec<(String, String, u64, Vec<RawReport>)> {
    let mut groups: Vec<(String, String, Vec<RawReport>)> = Vec::new();
    for report in reports {
        match groups.last_mut() {
            Some((_, key, pages)) if *key == report.report_key => pages.push(report),
            _ => groups.push((
                report.source_name.clone(),
                report.report_key.clone(),
                vec![report],
            )),
        }
    }
    groups
        .into_iter()
        .map(|(source, key, pages)| {
            let hash = combine_hashes(pages.iter().map(|p| p.content_hash()));
            (source, key, hash, pages)
        })
        .collect()
}

fn absorb_metrics(total: &mut PipelineMetrics, part: &PipelineMetrics) {
    total.input_pages += part.input_pages;
    total.ported += part.ported;
    total.screened_out += part.screened_out;
    total.parsed += part.parsed;
    total.parse_errors += part.parse_errors;
    total.extracted += part.extracted;
    total.connected += part.connected;
    total.quarantined += part.quarantined;
    total.wall_us += part.wall_us;
    total.wall_ms = total.wall_us / 1000;
}

struct DurableState<'w> {
    scheduler: Scheduler<'w>,
    connector: GraphConnector,
    ingested: BTreeSet<u64>,
    cycles_done: u64,
    snapshot_seq: u64,
}

/// One verified, reassembled checkpoint.
struct Recovered {
    meta: CheckpointMeta,
    graph: GraphStore,
    search: SearchIndex<NodeId>,
}

/// One decoded segment blob, produced by the parallel decode pool.
enum DecodedPart {
    Node(Vec<Option<Node>>),
    Edge(Vec<Option<Edge>>),
    Doc(Vec<(NodeId, u32)>),
    Shard(ShardTerms),
}

/// Decode one segment blob, auto-sniffing its wire format: `KGBIN001`
/// payloads take the zero-parse binary path, anything else the legacy JSON
/// path. The fallback is what makes mixed-format manifests (old JSON blobs
/// carried forward beside new binary ones) recover without ceremony.
fn decode_part(kind: char, index: usize, bytes: &[u8]) -> Result<DecodedPart, String> {
    match kind {
        'n' => kg_codec::decode_node_segment_auto(bytes)
            .map(DecodedPart::Node)
            .map_err(|e| format!("node segment {index}: {e}")),
        'e' => kg_codec::decode_edge_segment_auto(bytes)
            .map(DecodedPart::Edge)
            .map_err(|e| format!("edge segment {index}: {e}")),
        'd' => kg_codec::decode_doc_segment_auto(bytes)
            .map(DecodedPart::Doc)
            .map_err(|e| format!("doc segment {index}: {e}")),
        's' => kg_codec::decode_posting_shard_auto(bytes)
            .map(DecodedPart::Shard)
            .map_err(|e| format!("search shard {index}: {e}")),
        other => Err(format!("unknown blob kind {other:?}")),
    }
}

/// Decode a checkpoint's segment blobs across cores: segments are
/// independent by construction, so a work-stealing counter over the job
/// list keeps every core busy regardless of skew in segment sizes. Results
/// come back in job order.
fn decode_parts(jobs: &[(char, usize, &[u8])]) -> Vec<Result<DecodedPart, String>> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(jobs.len());
    if workers <= 1 {
        return jobs.iter().map(|&(k, i, b)| decode_part(k, i, b)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<DecodedPart, String>>> =
        (0..jobs.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let at = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&(kind, index, bytes)) = jobs.get(at) else {
                            break;
                        };
                        mine.push((at, decode_part(kind, index, bytes)));
                    }
                    mine
                })
            })
            .collect();
        for handle in handles {
            for (at, result) in handle.join().expect("decode worker panicked") {
                slots[at] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every job claimed exactly once"))
        .collect()
}

/// Reassemble a checkpoint from its verified blobs. Every structural or
/// semantic mismatch is a clean `Err(reason)` — the store quarantines the
/// checkpoint and falls back to an older one.
fn reassemble(
    record: &kg_persist::CheckpointRecord,
    blobs: &BTreeMap<String, Vec<u8>>,
) -> Result<Recovered, String> {
    let meta_bytes = blobs.get("meta").ok_or("missing meta blob")?;
    let meta: CheckpointMeta =
        serde_json::from_slice(meta_bytes).map_err(|e| format!("meta blob: {e}"))?;
    if meta.seq != record.seq || meta.kg_digest != record.kg_digest {
        return Err(format!(
            "meta blob identifies checkpoint {} (digest {:016x}), manifest says {} ({:016x})",
            meta.seq, meta.kg_digest, record.seq, record.kg_digest
        ));
    }
    // One flat job list over every segment blob, decoded in parallel.
    let mut jobs: Vec<(char, usize, &[u8])> = Vec::new();
    let sets: [(char, usize); 4] = [
        ('n', meta.node_segments),
        ('e', meta.edge_segments),
        ('d', meta.search_doc_segments),
        ('s', PERSIST_SHARDS),
    ];
    for (kind, count) in sets {
        for i in 0..count {
            let name = format!("{kind}{i}");
            let bytes = blobs
                .get(&name)
                .ok_or_else(|| format!("missing blob {name}"))?;
            jobs.push((kind, i, bytes.as_slice()));
        }
    }
    let mut decoded = decode_parts(&jobs).into_iter();
    let mut node_parts: Vec<Vec<Option<Node>>> = Vec::with_capacity(meta.node_segments);
    let mut edge_parts: Vec<Vec<Option<Edge>>> = Vec::with_capacity(meta.edge_segments);
    let mut doc_parts: Vec<Vec<(NodeId, u32)>> = Vec::with_capacity(meta.search_doc_segments);
    let mut shard_parts: Vec<ShardTerms> = Vec::with_capacity(PERSIST_SHARDS);
    for _ in 0..jobs.len() {
        match decoded.next().expect("one result per job")? {
            DecodedPart::Node(part) => node_parts.push(part),
            DecodedPart::Edge(part) => edge_parts.push(part),
            DecodedPart::Doc(part) => doc_parts.push(part),
            DecodedPart::Shard(part) => shard_parts.push(part),
        }
    }
    let graph = GraphStore::from_segments(node_parts, edge_parts)?;
    // The decisive check: the reassembled graph must reproduce the digest
    // the manifest recorded at checkpoint time, byte-identical semantics.
    let digest = graph_digest(&graph);
    if digest != record.kg_digest {
        return Err(format!(
            "reassembled graph digest {digest:016x} != recorded {:016x}",
            record.kg_digest
        ));
    }
    let search = SearchIndex::from_persist_parts(meta.search_params, doc_parts, shard_parts)?;
    Ok(Recovered {
        meta,
        graph,
        search,
    })
}

/// What `verify_dir` found in a durable directory's segment store.
#[derive(Debug)]
pub struct RecoverSummary {
    /// Every manifest checkpoint record, oldest first: `(seq, cycles_done,
    /// kg_digest)`. Includes records that would fail verification.
    pub checkpoints: Vec<(u64, u64, u64)>,
    /// Per-checkpoint payload wire format, aligned with `checkpoints`:
    /// `"bin"`, `"json"`, or `"mixed(Nj/Mb)"` when carried-forward legacy
    /// JSON blobs sit beside binary ones (`"empty"` for a meta-only record,
    /// `"?"` when a blob could not be read — recovery attributes those).
    pub payload_formats: Vec<String>,
    /// The newest checkpoint that passed verification, if any.
    pub restored: Option<(u64, u64, u64)>,
    /// Attributed quarantine events for checkpoints/blobs that failed.
    pub events: Vec<String>,
    /// Whether the manifest had a torn tail (tolerated, truncated on open).
    pub manifest_torn: bool,
    pub stats: kg_persist::StoreStats,
}

/// Inspect (read-only) the segment store in `dir`: replay the manifest,
/// then walk checkpoints newest-first until one verifies. With
/// `deep = false` each candidate's blobs are checksum-verified and its meta
/// parsed; with `deep = true` the full graph and search index are
/// reassembled and the graph digest recomputed against the manifest — the
/// same verification a resume performs.
pub fn verify_dir(dir: &Path, deep: bool) -> Result<RecoverSummary, JournalError> {
    if !dir.join("manifest.log").exists() {
        return Err(JournalError::Persist(
            kg_persist::PersistError::ManifestUnusable {
                reason: format!("no manifest.log in {}", dir.display()),
            },
        ));
    }
    let mut store = SegmentStore::open(dir, StoreOptions::default())?;
    let checkpoints: Vec<(u64, u64, u64)> = store
        .checkpoints()
        .iter()
        .map(|r| (r.seq, r.cycles_done, r.kg_digest))
        .collect();
    // Classify payload formats before recovery (which truncates the record
    // list to the survivor) so the column aligns with `checkpoints`.
    let payload_formats: Vec<String> = store
        .checkpoints()
        .iter()
        .map(|record| {
            let (mut json_n, mut bin_n, mut unreadable) = (0usize, 0usize, false);
            for entry in &record.entries {
                if entry.logical == "meta" {
                    continue;
                }
                match store.blob_prefix(entry, kg_codec::BIN_MAGIC.len()) {
                    Ok(prefix) => match kg_codec::payload_format(&prefix) {
                        kg_codec::PayloadFormat::Binary => bin_n += 1,
                        kg_codec::PayloadFormat::Json => json_n += 1,
                    },
                    Err(_) => unreadable = true,
                }
            }
            match (json_n, bin_n) {
                _ if unreadable => "?".to_owned(),
                (0, 0) => "empty".to_owned(),
                (0, _) => "bin".to_owned(),
                (_, 0) => "json".to_owned(),
                (j, b) => format!("mixed({j}j/{b}b)"),
            }
        })
        .collect();
    let restored = if deep {
        store
            .recover_with(reassemble)?
            .map(|r| (r.meta.seq, r.meta.cycles_done, r.meta.kg_digest))
    } else {
        store.recover_with(|record, blobs| {
            let meta_bytes = blobs.get("meta").ok_or("missing meta blob")?;
            let meta: CheckpointMeta =
                serde_json::from_slice(meta_bytes).map_err(|e| format!("meta blob: {e}"))?;
            if meta.seq != record.seq || meta.kg_digest != record.kg_digest {
                return Err("meta blob does not match its manifest record".to_owned());
            }
            Ok((meta.seq, meta.cycles_done, meta.kg_digest))
        })?
    };
    Ok(RecoverSummary {
        checkpoints,
        payload_formats,
        restored,
        events: store
            .quarantine_log()
            .iter()
            .map(|event| event.to_string())
            .collect(),
        manifest_torn: store.manifest_torn(),
        stats: store.stats(),
    })
}

/// Persist one incremental checkpoint, commit its journal marker, then
/// enforce retention (prune + journal truncation) and compaction. Segment
/// and shard blobs are `KGBIN001` binary unless `json_payloads` asks for
/// the legacy JSON oracle encoding.
fn write_checkpoint(
    store: &mut SegmentStore,
    state: &mut DurableState<'_>,
    journal: &mut Journal,
    trace: &TraceLog,
    json_payloads: bool,
) -> Result<u64, JournalError> {
    let seq = state.snapshot_seq;
    let graph = &state.connector.graph;
    let search = &state.connector.search;
    let digest = graph_digest(graph);
    // With no baseline (fresh store, or nothing survived recovery) the
    // carry set is empty, so every blob must be written.
    let full = store.baseline_seq().is_none();
    let meta = CheckpointMeta {
        seq,
        cycles_done: state.cycles_done,
        kg_digest: digest,
        ingested: state.ingested.iter().copied().collect(),
        scheduler: state.scheduler.checkpoint(),
        node_segments: graph.node_segment_count(),
        edge_segments: graph.edge_segment_count(),
        search_params: search.persist_params(),
        search_doc_segments: search.doc_segment_count(),
    };
    let mut blobs: Vec<(String, Vec<u8>)> = Vec::new();
    blobs.push(("meta".to_owned(), serde_json::to_vec(&meta)?));
    let node_set: Vec<usize> = if full {
        (0..meta.node_segments).collect()
    } else {
        graph.dirty_node_segments()
    };
    for i in node_set {
        let bytes = if json_payloads {
            let json = graph.node_segment_json(i).expect("dirty segment exists");
            json.into_bytes()
        } else {
            let slots = graph.node_segment_slots(i).expect("dirty segment exists");
            kg_codec::encode_node_segment(slots)
        };
        blobs.push((format!("n{i}"), bytes));
    }
    let edge_set: Vec<usize> = if full {
        (0..meta.edge_segments).collect()
    } else {
        graph.dirty_edge_segments()
    };
    for i in edge_set {
        let bytes = if json_payloads {
            let json = graph.edge_segment_json(i).expect("dirty segment exists");
            json.into_bytes()
        } else {
            let slots = graph.edge_segment_slots(i).expect("dirty segment exists");
            kg_codec::encode_edge_segment(slots)
        };
        blobs.push((format!("e{i}"), bytes));
    }
    let doc_set: Vec<usize> = if full {
        (0..meta.search_doc_segments).collect()
    } else {
        search.dirty_doc_segments()
    };
    for i in doc_set {
        let bytes = if json_payloads {
            let json = search.doc_segment_json(i).expect("dirty segment exists");
            json.into_bytes()
        } else {
            let slots = search.doc_segment_slots(i).expect("dirty segment exists");
            kg_codec::encode_doc_segment(slots)
        };
        blobs.push((format!("d{i}"), bytes));
    }
    // Every shard is written on a full checkpoint — including empty ones —
    // so the carried entry set always holds all PERSIST_SHARDS shards.
    let shard_set: Vec<usize> = if full {
        (0..PERSIST_SHARDS).collect()
    } else {
        search.dirty_persist_shards()
    };
    for s in shard_set {
        let bytes = if json_payloads {
            search.shard_json(s).into_bytes()
        } else {
            kg_codec::encode_posting_shard(&search.shard_terms(s))
        };
        blobs.push((format!("s{s}"), bytes));
    }
    store.checkpoint(seq, state.cycles_done, digest, blobs)?;
    // The journal marker is audit only (the manifest committed above), but
    // commit buffered cycle records alongside it so the audit trail is
    // never behind the checkpoint it describes.
    journal.append(&JournalRecord::Snapshot {
        seq,
        cycles_done: state.cycles_done,
        kg_digest: digest,
    })?;
    journal.commit()?;
    // Only now — checkpoint durably committed — may dirtiness be forgotten.
    state.connector.graph.clear_segment_dirty();
    state.connector.search.clear_persist_dirty();
    trace.record(TraceEvent::SnapshotTaken {
        seq,
        cycles_done: state.cycles_done,
        kg_digest: digest,
    });
    // Bound disk: retention pruning, journal truncation below the oldest
    // retained checkpoint, and compaction once garbage dominates.
    store.prune()?;
    if let Some(horizon) = store.oldest_retained_seq() {
        journal.truncate_before_snapshot(horizon)?;
    }
    if store.should_compact() {
        store.compact()?;
    }
    Ok(digest)
}

/// Run (or resume) a durable ingestion in `dir` up to simulated `until_ms`.
///
/// Fresh directories start every source at [`DEFAULT_START_MS`]. Existing
/// directories are recovered: the journal is replayed (tolerating a torn
/// tail), the newest segment-store checkpoint that verifies in full —
/// frame checksums, then a recomputed graph digest — is restored (corrupt
/// ones are quarantined with attribution and older ones tried), and the
/// scheduler re-runs deterministically from that frontier. Calling this
/// again over a completed directory with the same horizon is a no-op that
/// returns the same digest.
pub fn run_durable(
    system: &SystemConfig,
    sched_config: &SchedulerConfig,
    dir: &Path,
    until_ms: u64,
    opts: &DurableOptions,
) -> Result<DurableReport, JournalError> {
    std::fs::create_dir_all(dir)?;
    let world = World::generate(system.world.clone());
    let web = SimulatedWeb::with_faults(
        world,
        standard_sources(system.articles_per_source),
        system.seed,
        system.faults,
    );
    let trace = TraceLog::new();
    let journal_path = dir.join("journal.log");

    // One hook shared by journal and segment store: op indices form a single
    // global sequence, so an io_kill_after sweep crosses every boundary.
    let hook = match (&opts.fault_hook, opts.io_kill_after) {
        (Some(hook), kill) => {
            if let Some(at) = kill {
                hook.arm_kill_after(at, opts.io_kill_torn);
            }
            Some(hook.clone())
        }
        (None, Some(at)) => {
            let hook = FaultHook::new();
            hook.arm_kill_after(at, opts.io_kill_torn);
            Some(hook)
        }
        (None, None) => None,
    };
    let mut store = SegmentStore::open(
        dir,
        StoreOptions {
            retention: opts.retention.max(1),
            hook: hook.clone(),
            ..StoreOptions::default()
        },
    )?;

    let mut resumed_from = None;
    let mut replayed_records = 0;
    let mut torn_tail = false;

    // A journal shorter than its magic is a torn *creation* — the very
    // first write of a fresh run died mid-magic, so nothing was ever
    // committed. Start over instead of refusing with BadHeader.
    let journal_usable = std::fs::metadata(&journal_path)
        .map(|m| m.len() >= journal::JOURNAL_MAGIC.len() as u64)
        .unwrap_or(false);
    let (mut journal, mut state) = if journal_usable {
        let replayed = journal::replay(&journal_path)?;
        replayed_records = replayed.records.len();
        torn_tail = replayed.torn_tail;
        let journal = Journal::open_after_replay_with(&journal_path, &replayed, hook.clone())?;
        let recovered = store.recover_with(reassemble)?;
        let state = match recovered {
            Some(Recovered {
                meta,
                graph,
                search,
            }) => {
                resumed_from = Some(meta.seq);
                DurableState {
                    snapshot_seq: meta.seq,
                    cycles_done: meta.cycles_done,
                    ingested: meta.ingested.into_iter().collect(),
                    scheduler: Scheduler::restore(&web, meta.scheduler),
                    connector: GraphConnector::with_state(graph, search),
                }
            }
            // Nothing survived: deterministic redo from the epoch start
            // reproduces the exact same state (and the same digest).
            None => DurableState {
                scheduler: Scheduler::new(&web, sched_config.clone(), DEFAULT_START_MS),
                connector: GraphConnector::new(),
                ingested: BTreeSet::new(),
                cycles_done: 0,
                snapshot_seq: 0,
            },
        };
        trace.record(TraceEvent::JournalReplayed {
            records: replayed_records,
            torn_tail,
            resumed_from_snapshot: resumed_from,
        });
        (journal, state)
    } else {
        (
            Journal::create_with(&journal_path, hook.clone())?,
            DurableState {
                scheduler: Scheduler::new(&web, sched_config.clone(), DEFAULT_START_MS),
                connector: GraphConnector::new(),
                ingested: BTreeSet::new(),
                cycles_done: 0,
                snapshot_seq: 0,
            },
        )
    };
    let recovery_events: Vec<String> = store
        .quarantine_log()
        .iter()
        .map(|event| event.to_string())
        .collect();

    let records_at_start = journal.records_written();
    if let Some(after) = opts.crash_after_records {
        journal.set_crash_after(records_at_start + after, opts.crash_torn_tail);
    }

    let registry = ParserRegistry::new();
    let extractor = crate::gazetteer_extractor(&web, &system.training);
    let mut metrics = PipelineMetrics::default();
    let mut cycles_run = 0u64;
    let mut reports_ingested = 0usize;
    let mut skipped_duplicates = 0usize;
    let mut seen_reboots = state.scheduler.stats.reboot_events.len();
    let mut seen_breaker_events = state.scheduler.stats.breaker_events.len();

    while let Some(fired) = state.scheduler.step_due(until_ms) {
        // Surface new scheduler events in the structured trace.
        for event in &state.scheduler.stats.breaker_events[seen_breaker_events..] {
            trace.record(TraceEvent::BreakerTransition {
                source: event.source.clone(),
                at_ms: event.at_ms,
                from: event.from.to_string(),
                to: event.to.to_string(),
                reason: event.reason.clone(),
            });
        }
        seen_breaker_events = state.scheduler.stats.breaker_events.len();
        for event in &state.scheduler.stats.reboot_events[seen_reboots..] {
            trace.record(TraceEvent::SchedulerReboot {
                source: event.source.clone(),
                due_ms: event.due_ms,
                error: event.error.clone(),
            });
        }
        seen_reboots = state.scheduler.stats.reboot_events.len();

        // Dedup whole reports by combined content hash, then ingest the
        // batch through the deterministic sequential pipeline.
        let mut batch = Vec::new();
        let mut newly_ingested = Vec::new();
        for (source, key, hash, pages) in group_reports(fired.reports) {
            if !state.ingested.insert(hash) {
                skipped_duplicates += 1;
                continue;
            }
            newly_ingested.push((hash, source, key));
            batch.extend(pages);
        }
        if !batch.is_empty() {
            let out = run_sequential(
                batch,
                &registry,
                &extractor,
                std::mem::take(&mut state.connector),
                &system.pipeline,
            );
            state.connector = out.connector;
            absorb_metrics(&mut metrics, &out.metrics);
            reports_ingested += out.metrics.connected;
        }

        for (content_hash, source, report_key) in newly_ingested {
            journal.append(&JournalRecord::Ingested {
                content_hash,
                source,
                report_key,
            })?;
        }
        journal.append(&JournalRecord::Cycle {
            source: fired.source,
            due_ms: fired.due_ms,
            new_reports: fired.new_reports,
            pages_fetched: fired.pages_fetched,
            error: fired.error,
        })?;
        // Group commit: one barrier per cycle, not per record.
        journal.commit()?;

        state.cycles_done += 1;
        cycles_run += 1;
        if opts.snapshot_every_cycles > 0 && state.cycles_done % opts.snapshot_every_cycles == 0 {
            state.snapshot_seq += 1;
            write_checkpoint(
                &mut store,
                &mut state,
                &mut journal,
                &trace,
                opts.json_payloads,
            )?;
        }
    }

    // Seal the run with a final checkpoint (unless this call was a pure
    // no-op resume of an already-complete directory).
    if cycles_run > 0 || state.snapshot_seq == 0 {
        state.snapshot_seq += 1;
        write_checkpoint(
            &mut store,
            &mut state,
            &mut journal,
            &trace,
            opts.json_payloads,
        )?;
    }

    Ok(DurableReport {
        cycles_run,
        reports_ingested,
        records_appended: journal.records_written() - records_at_start,
        skipped_duplicates,
        kg_digest: graph_digest(&state.connector.graph),
        resumed_from_snapshot: resumed_from,
        replayed_records,
        torn_tail,
        recovery_events,
        stats: state.scheduler.stats.clone(),
        metrics,
        trace,
        graph: state.connector.graph.clone(),
        search: state.connector.search.clone(),
    })
}
