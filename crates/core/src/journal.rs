//! Durable, append-only ingest journal with torn-tail tolerance.
//!
//! The journal is the audit trail of a durable ingestion run (see
//! [`crate::durable`]): one record per crawl cycle, one per ingested report
//! (keyed by content hash), and a marker per persisted KG snapshot. The
//! format is length-prefixed and checksummed so a reader can always tell a
//! complete record from the torn tail a crash leaves behind:
//!
//! ```text
//! [8-byte magic "KGJOURN1"]
//! repeat:
//!   [u32 LE payload length][u64 LE FNV-1a of payload][payload: JSON record]
//! ```
//!
//! Replay stops at the first frame whose length, checksum or JSON does not
//! check out and reports how many clean bytes precede it; re-opening for
//! append truncates the torn tail away. Records are *facts about the past*,
//! never instructions: recovery correctness comes from the snapshot sidecars
//! the `Snapshot` markers point at (see DESIGN.md "Failure model & recovery").

use kg_ir::fnv1a64;
use kg_persist::{FaultHook, PersistError, Vfs};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// First bytes of every journal file.
pub const JOURNAL_MAGIC: &[u8; 8] = b"KGJOURN1";

/// Frame header size: u32 length + u64 checksum.
const FRAME_HEADER: usize = 4 + 8;

/// Upper bound on a single payload; anything larger is treated as torn
/// (a corrupt length prefix would otherwise ask us to allocate garbage).
const MAX_PAYLOAD: usize = 16 * 1024 * 1024;

/// One journal record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// A scheduler cycle fired for a source.
    Cycle {
        source: String,
        /// When the job fired (simulated ms).
        due_ms: u64,
        new_reports: usize,
        pages_fetched: usize,
        /// Abort cause, if the cycle aborted.
        error: Option<String>,
    },
    /// One whole report entered the knowledge graph.
    Ingested {
        /// Order-sensitive combined hash of all page bodies.
        content_hash: u64,
        source: String,
        report_key: String,
    },
    /// A segment-store checkpoint was durably committed (its manifest
    /// record fsynced) *before* this marker was appended — the marker is
    /// an audit record and the journal-truncation horizon, not the commit
    /// point itself.
    Snapshot {
        seq: u64,
        /// Scheduler cycles completed at snapshot time.
        cycles_done: u64,
        /// FNV-1a digest of the serialized graph at snapshot time.
        kg_digest: u64,
    },
}

/// Journal failure modes.
#[derive(Debug)]
pub enum JournalError {
    Io(std::io::Error),
    Serde(serde_json::Error),
    /// The file exists but does not start with [`JOURNAL_MAGIC`].
    BadHeader,
    /// A test-configured crash point fired (see [`Journal::set_crash_after`]
    /// and [`kg_persist::FaultHook`]).
    InjectedCrash,
    /// The segment store underneath the snapshots failed.
    Persist(PersistError),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Serde(e) => write!(f, "journal encoding error: {e}"),
            JournalError::BadHeader => write!(f, "journal header is not {JOURNAL_MAGIC:?}"),
            JournalError::InjectedCrash => write!(f, "injected crash point reached"),
            JournalError::Persist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

impl From<serde_json::Error> for JournalError {
    fn from(e: serde_json::Error) -> Self {
        JournalError::Serde(e)
    }
}

impl From<PersistError> for JournalError {
    fn from(e: PersistError) -> Self {
        match e {
            // A hook-injected kill is the same failure mode wherever it
            // fires; collapse so callers (and the CLI's exit code) need one
            // check.
            PersistError::InjectedCrash { .. } => JournalError::InjectedCrash,
            other => JournalError::Persist(other),
        }
    }
}

/// Outcome of replaying a journal file.
#[derive(Debug)]
pub struct Replay {
    /// Every intact record, in append order.
    pub records: Vec<JournalRecord>,
    /// Whether trailing bytes had to be discarded (torn tail).
    pub torn_tail: bool,
    /// Clean prefix length in bytes (header + intact frames); re-opening for
    /// append truncates the file to this length.
    pub clean_len: u64,
}

impl Replay {
    /// The last snapshot marker in the clean prefix, if any.
    pub fn last_snapshot(&self) -> Option<(u64, u64, u64)> {
        self.records.iter().rev().find_map(|r| match r {
            JournalRecord::Snapshot {
                seq,
                cycles_done,
                kg_digest,
            } => Some((*seq, *cycles_done, *kg_digest)),
            _ => None,
        })
    }

    /// All snapshot markers in the clean prefix, oldest first.
    pub fn snapshots(&self) -> Vec<(u64, u64, u64)> {
        self.records
            .iter()
            .filter_map(|r| match r {
                JournalRecord::Snapshot {
                    seq,
                    cycles_done,
                    kg_digest,
                } => Some((*seq, *cycles_done, *kg_digest)),
                _ => None,
            })
            .collect()
    }
}

/// Replay a journal from disk, tolerating a torn tail.
pub fn replay(path: &Path) -> Result<Replay, JournalError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < JOURNAL_MAGIC.len() || &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
        return Err(JournalError::BadHeader);
    }
    let mut records = Vec::new();
    let mut offset = JOURNAL_MAGIC.len();
    let mut torn_tail = false;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        if rest.len() < FRAME_HEADER {
            torn_tail = true;
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let checksum = u64::from_le_bytes([
            rest[4], rest[5], rest[6], rest[7], rest[8], rest[9], rest[10], rest[11],
        ]);
        if len > MAX_PAYLOAD || rest.len() < FRAME_HEADER + len {
            torn_tail = true;
            break;
        }
        let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
        if fnv1a64(payload) != checksum {
            torn_tail = true;
            break;
        }
        match serde_json::from_slice::<JournalRecord>(payload) {
            Ok(record) => records.push(record),
            Err(_) => {
                torn_tail = true;
                break;
            }
        }
        offset += FRAME_HEADER + len;
    }
    Ok(Replay {
        records,
        torn_tail,
        clean_len: offset as u64,
    })
}

/// An open journal, ready to append.
pub struct Journal {
    file: File,
    path: PathBuf,
    vfs: Vfs,
    records_written: u64,
    /// Bytes appended since the last [`Journal::commit`].
    uncommitted: u64,
    crash_after: Option<u64>,
    crash_torn: bool,
}

impl Journal {
    /// Create a fresh journal (truncating anything at `path`).
    pub fn create(path: &Path) -> Result<Self, JournalError> {
        Journal::create_with(path, None)
    }

    /// [`Journal::create`] with a fault hook interposing every I/O op. The
    /// magic is made durable immediately (file + parent directory fsync) —
    /// an empty journal that exists must replay as an empty journal, not as
    /// a missing file.
    pub fn create_with(path: &Path, hook: Option<FaultHook>) -> Result<Self, JournalError> {
        let vfs = Vfs::new(hook);
        let mut file = vfs.create(path)?;
        vfs.append(&mut file, path, JOURNAL_MAGIC)?;
        vfs.sync_file(&file, path)?;
        if let Some(parent) = path.parent() {
            vfs.sync_dir(parent)?;
        }
        Ok(Journal {
            file,
            path: path.to_owned(),
            vfs,
            records_written: 0,
            uncommitted: 0,
            crash_after: None,
            crash_torn: false,
        })
    }

    /// Re-open an existing journal for append after [`replay`]: the torn
    /// tail (if any) is truncated away so new frames extend the clean prefix.
    pub fn open_after_replay(path: &Path, replay: &Replay) -> Result<Self, JournalError> {
        Journal::open_after_replay_with(path, replay, None)
    }

    /// [`Journal::open_after_replay`] with a fault hook.
    pub fn open_after_replay_with(
        path: &Path,
        replay: &Replay,
        hook: Option<FaultHook>,
    ) -> Result<Self, JournalError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(replay.clean_len)?;
        let mut file = file;
        use std::io::Seek;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(Journal {
            file,
            path: path.to_owned(),
            vfs: Vfs::new(hook),
            records_written: replay.records.len() as u64,
            uncommitted: 0,
            crash_after: None,
            crash_torn: false,
        })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended over this journal's lifetime (including replayed
    /// ones when opened after replay).
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Arm an injected crash: the append that would write record number
    /// `record_count + 1` (1-based over the file's lifetime) fails with
    /// [`JournalError::InjectedCrash`] instead. With `torn`, the doomed
    /// append first writes a partial frame — the torn tail a real mid-write
    /// crash leaves.
    pub fn set_crash_after(&mut self, record_count: u64, torn: bool) {
        self.crash_after = Some(record_count);
        self.crash_torn = torn;
    }

    /// Append one record: length-prefixed, checksummed, buffered. Records
    /// are *facts*, not instructions — a record lost to a crash before
    /// [`Journal::commit`] is re-derived by deterministic redo, so appends
    /// need no per-record fsync (group commit).
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), JournalError> {
        let payload = serde_json::to_vec(record)?;
        if let Some(limit) = self.crash_after {
            if self.records_written >= limit {
                if self.crash_torn {
                    // Die mid-write: a frame header promising more payload
                    // than ever arrives.
                    let mut torn = Vec::new();
                    torn.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                    torn.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
                    torn.extend_from_slice(&payload[..payload.len() / 2]);
                    self.file.write_all(&torn)?;
                    self.file.flush()?;
                }
                return Err(JournalError::InjectedCrash);
            }
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.vfs.append(&mut self.file, &self.path, &frame)?;
        self.uncommitted += frame.len() as u64;
        self.records_written += 1;
        Ok(())
    }

    /// Group-commit barrier: fsync everything appended since the last
    /// commit. The durable loop calls this once per cycle (and before each
    /// checkpoint's manifest write), not once per record.
    pub fn commit(&mut self) -> Result<(), JournalError> {
        if self.uncommitted == 0 {
            return Ok(());
        }
        self.vfs.sync_file(&self.file, &self.path)?;
        self.uncommitted = 0;
        Ok(())
    }

    /// Drop every record below the `Snapshot { seq: horizon }` marker: the
    /// retained suffix (marker included) is rewritten to a tmp file which is
    /// atomically renamed over the journal (fsync'd both sides). Records
    /// below a verified checkpoint are dead weight — recovery never replays
    /// across a checkpoint — so this is what bounds journal growth.
    ///
    /// Returns whether anything was truncated. [`Journal::records_written`]
    /// is *not* rewound: it counts appends over the journal's lifetime (so
    /// armed [`Journal::set_crash_after`] points still fire), not frames
    /// currently on disk.
    pub fn truncate_before_snapshot(&mut self, horizon: u64) -> Result<bool, JournalError> {
        self.commit()?;
        let mut bytes = Vec::new();
        File::open(&self.path)?.read_to_end(&mut bytes)?;
        if bytes.len() < JOURNAL_MAGIC.len() || &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
            return Err(JournalError::BadHeader);
        }
        // Find the byte offset of the horizon snapshot's frame.
        let mut offset = JOURNAL_MAGIC.len();
        let mut cut: Option<usize> = None;
        while offset + FRAME_HEADER <= bytes.len() {
            let rest = &bytes[offset..];
            let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
            if len > MAX_PAYLOAD || rest.len() < FRAME_HEADER + len {
                break;
            }
            let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
            if let Ok(JournalRecord::Snapshot { seq, .. }) =
                serde_json::from_slice::<JournalRecord>(payload)
            {
                if seq == horizon {
                    cut = Some(offset);
                    break;
                }
            }
            offset += FRAME_HEADER + len;
        }
        let Some(cut) = cut else {
            return Ok(false); // horizon not found: keep everything
        };
        if cut == JOURNAL_MAGIC.len() {
            return Ok(false); // nothing below the horizon
        }
        let tmp_path = self.path.with_extension("log.tmp");
        let mut tmp = self.vfs.create(&tmp_path)?;
        self.vfs.append(&mut tmp, &tmp_path, JOURNAL_MAGIC)?;
        self.vfs.append(&mut tmp, &tmp_path, &bytes[cut..])?;
        self.vfs.sync_file(&tmp, &tmp_path)?;
        self.vfs.rename(&tmp_path, &self.path)?;
        if let Some(parent) = self.path.parent() {
            self.vfs.sync_dir(parent)?;
        }
        // Swap the append handle to the new file.
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        use std::io::Seek;
        file.seek(std::io::SeekFrom::End(0))?;
        self.file = file;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kg-journal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.log")
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Cycle {
                source: "securelist".into(),
                due_ms: 1_500_000_000_000,
                new_reports: 3,
                pages_fetched: 7,
                error: None,
            },
            JournalRecord::Ingested {
                content_hash: 0xDEAD_BEEF,
                source: "securelist".into(),
                report_key: "r0".into(),
            },
            JournalRecord::Snapshot {
                seq: 1,
                cycles_done: 1,
                kg_digest: 42,
            },
            JournalRecord::Cycle {
                source: "talos-intel".into(),
                due_ms: 1_500_000_100_000,
                new_reports: 0,
                pages_fetched: 1,
                error: Some("aborted after 10 hard fetch failures".into()),
            },
        ]
    }

    #[test]
    fn round_trip_all_record_kinds() {
        let path = tmp("roundtrip");
        let mut journal = Journal::create(&path).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        let replay = replay(&path).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.records, sample_records());
        assert_eq!(replay.last_snapshot(), Some((1, 1, 42)));
        assert_eq!(replay.snapshots(), vec![(1, 1, 42)]);
    }

    #[test]
    fn torn_tail_is_tolerated_and_truncated_on_reopen() {
        let path = tmp("torn");
        let mut journal = Journal::create(&path).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        drop(journal);
        // Simulate a crash mid-write: append half a frame of garbage.
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&[0x77, 0x02, 0x00, 0x00, 0xAB, 0xCD])
            .unwrap();
        drop(file);

        let first = replay(&path).unwrap();
        assert!(first.torn_tail);
        assert_eq!(first.records, sample_records());
        assert_eq!(first.clean_len, clean_len);

        // Re-open, truncating the tail, and keep appending.
        let mut journal = Journal::open_after_replay(&path, &first).unwrap();
        assert_eq!(journal.records_written(), 4);
        journal
            .append(&JournalRecord::Snapshot {
                seq: 2,
                cycles_done: 2,
                kg_digest: 43,
            })
            .unwrap();
        let second = replay(&path).unwrap();
        assert!(!second.torn_tail);
        assert_eq!(second.records.len(), 5);
        assert_eq!(second.last_snapshot(), Some((2, 2, 43)));
    }

    #[test]
    fn corrupt_checksum_stops_replay_at_the_bad_frame() {
        let path = tmp("checksum");
        let mut journal = Journal::create(&path).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        drop(journal);
        // Flip a byte inside the last frame's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let replay = replay(&path).unwrap();
        assert!(replay.torn_tail);
        assert_eq!(replay.records.len(), 3);
    }

    #[test]
    fn bad_header_is_an_error() {
        let path = tmp("header");
        std::fs::write(&path, b"definitely not a journal").unwrap();
        assert!(matches!(replay(&path), Err(JournalError::BadHeader)));
        assert!(matches!(
            replay(&path.with_extension("missing")),
            Err(JournalError::Io(_))
        ));
    }

    #[test]
    fn truncation_drops_records_below_the_snapshot_horizon() {
        let path = tmp("truncate");
        let mut journal = Journal::create(&path).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        journal
            .append(&JournalRecord::Snapshot {
                seq: 2,
                cycles_done: 2,
                kg_digest: 43,
            })
            .unwrap();
        let before = std::fs::metadata(&path).unwrap().len();

        // Unknown horizon: keep everything.
        assert!(!journal.truncate_before_snapshot(99).unwrap());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), before);

        // Truncate below snapshot seq 2: the marker and later records stay.
        assert!(journal.truncate_before_snapshot(2).unwrap());
        assert!(std::fs::metadata(&path).unwrap().len() < before);
        let after = replay(&path).unwrap();
        assert!(!after.torn_tail);
        assert_eq!(
            after.records,
            vec![JournalRecord::Snapshot {
                seq: 2,
                cycles_done: 2,
                kg_digest: 43
            }]
        );
        // Lifetime record count is monotone — truncation never rewinds it.
        assert_eq!(journal.records_written(), 5);

        // The swapped handle keeps appending to the new file.
        journal
            .append(&JournalRecord::Ingested {
                content_hash: 7,
                source: "s".into(),
                report_key: "r9".into(),
            })
            .unwrap();
        journal.commit().unwrap();
        assert_eq!(replay(&path).unwrap().records.len(), 2);
    }

    #[test]
    fn barriers_are_issued_in_order() {
        // The sync-counting audit: create → (write+sync+dirsync), appends
        // buffer, commit syncs exactly once.
        let dir = std::env::temp_dir().join(format!("kg-journal-{}-barrier", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.log");
        let hook = kg_persist::FaultHook::new();
        let mut journal = Journal::create_with(&path, Some(hook.clone())).unwrap();
        use kg_persist::IoOp;
        assert_eq!(
            hook.log(),
            vec![
                IoOp::Create {
                    file: "journal.log".into()
                },
                IoOp::Write {
                    file: "journal.log".into(),
                    bytes: JOURNAL_MAGIC.len()
                },
                IoOp::SyncFile {
                    file: "journal.log".into()
                },
                IoOp::SyncDir {
                    dir: dir.file_name().unwrap().to_string_lossy().into_owned()
                },
            ]
        );
        hook.clear_log();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        // No sync yet: appends are group-committed.
        assert!(hook.log().iter().all(|op| matches!(op, IoOp::Write { .. })));
        journal.commit().unwrap();
        let log = hook.log();
        assert!(matches!(log.last(), Some(IoOp::SyncFile { .. })));
        assert_eq!(
            log.iter()
                .filter(|op| matches!(op, IoOp::SyncFile { .. }))
                .count(),
            1
        );
        // Idempotent: nothing new to commit, no extra sync.
        journal.commit().unwrap();
        assert_eq!(hook.log().len(), log.len());
    }

    #[test]
    fn injected_crash_fires_on_the_chosen_append() {
        let path = tmp("crash");
        let mut journal = Journal::create(&path).unwrap();
        journal.set_crash_after(2, true);
        let records = sample_records();
        journal.append(&records[0]).unwrap();
        journal.append(&records[1]).unwrap();
        let err = journal.append(&records[2]).unwrap_err();
        assert!(matches!(err, JournalError::InjectedCrash));
        drop(journal);
        // The file holds two clean records plus a torn half-frame.
        let after = replay(&path).unwrap();
        assert!(after.torn_tail);
        assert_eq!(after.records, records[..2].to_vec());
    }
}
