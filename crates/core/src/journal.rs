//! Durable, append-only ingest journal with torn-tail tolerance.
//!
//! The journal is the audit trail of a durable ingestion run (see
//! [`crate::durable`]): one record per crawl cycle, one per ingested report
//! (keyed by content hash), and a marker per persisted KG snapshot. The
//! format is length-prefixed and checksummed so a reader can always tell a
//! complete record from the torn tail a crash leaves behind:
//!
//! ```text
//! [8-byte magic "KGJOURN1"]
//! repeat:
//!   [u32 LE payload length][u64 LE FNV-1a of payload][payload: JSON record]
//! ```
//!
//! Replay stops at the first frame whose length, checksum or JSON does not
//! check out and reports how many clean bytes precede it; re-opening for
//! append truncates the torn tail away. Records are *facts about the past*,
//! never instructions: recovery correctness comes from the snapshot sidecars
//! the `Snapshot` markers point at (see DESIGN.md "Failure model & recovery").

use kg_ir::fnv1a64;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// First bytes of every journal file.
pub const JOURNAL_MAGIC: &[u8; 8] = b"KGJOURN1";

/// Frame header size: u32 length + u64 checksum.
const FRAME_HEADER: usize = 4 + 8;

/// Upper bound on a single payload; anything larger is treated as torn
/// (a corrupt length prefix would otherwise ask us to allocate garbage).
const MAX_PAYLOAD: usize = 16 * 1024 * 1024;

/// One journal record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// A scheduler cycle fired for a source.
    Cycle {
        source: String,
        /// When the job fired (simulated ms).
        due_ms: u64,
        new_reports: usize,
        pages_fetched: usize,
        /// Abort cause, if the cycle aborted.
        error: Option<String>,
    },
    /// One whole report entered the knowledge graph.
    Ingested {
        /// Order-sensitive combined hash of all page bodies.
        content_hash: u64,
        source: String,
        report_key: String,
    },
    /// A KG snapshot sidecar `snapshot-<seq>.json` was durably written
    /// (tmp+rename) *before* this marker was appended, so the marker's
    /// presence implies the sidecar is complete.
    Snapshot {
        seq: u64,
        /// Scheduler cycles completed at snapshot time.
        cycles_done: u64,
        /// FNV-1a digest of the serialized graph at snapshot time.
        kg_digest: u64,
    },
}

/// Journal failure modes.
#[derive(Debug)]
pub enum JournalError {
    Io(std::io::Error),
    Serde(serde_json::Error),
    /// The file exists but does not start with [`JOURNAL_MAGIC`].
    BadHeader,
    /// A test-configured crash point fired (see [`Journal::set_crash_after`]).
    InjectedCrash,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Serde(e) => write!(f, "journal encoding error: {e}"),
            JournalError::BadHeader => write!(f, "journal header is not {JOURNAL_MAGIC:?}"),
            JournalError::InjectedCrash => write!(f, "injected crash point reached"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

impl From<serde_json::Error> for JournalError {
    fn from(e: serde_json::Error) -> Self {
        JournalError::Serde(e)
    }
}

/// Outcome of replaying a journal file.
#[derive(Debug)]
pub struct Replay {
    /// Every intact record, in append order.
    pub records: Vec<JournalRecord>,
    /// Whether trailing bytes had to be discarded (torn tail).
    pub torn_tail: bool,
    /// Clean prefix length in bytes (header + intact frames); re-opening for
    /// append truncates the file to this length.
    pub clean_len: u64,
}

impl Replay {
    /// The last snapshot marker in the clean prefix, if any.
    pub fn last_snapshot(&self) -> Option<(u64, u64, u64)> {
        self.records.iter().rev().find_map(|r| match r {
            JournalRecord::Snapshot {
                seq,
                cycles_done,
                kg_digest,
            } => Some((*seq, *cycles_done, *kg_digest)),
            _ => None,
        })
    }

    /// All snapshot markers in the clean prefix, oldest first.
    pub fn snapshots(&self) -> Vec<(u64, u64, u64)> {
        self.records
            .iter()
            .filter_map(|r| match r {
                JournalRecord::Snapshot {
                    seq,
                    cycles_done,
                    kg_digest,
                } => Some((*seq, *cycles_done, *kg_digest)),
                _ => None,
            })
            .collect()
    }
}

/// Replay a journal from disk, tolerating a torn tail.
pub fn replay(path: &Path) -> Result<Replay, JournalError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < JOURNAL_MAGIC.len() || &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
        return Err(JournalError::BadHeader);
    }
    let mut records = Vec::new();
    let mut offset = JOURNAL_MAGIC.len();
    let mut torn_tail = false;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        if rest.len() < FRAME_HEADER {
            torn_tail = true;
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let checksum = u64::from_le_bytes([
            rest[4], rest[5], rest[6], rest[7], rest[8], rest[9], rest[10], rest[11],
        ]);
        if len > MAX_PAYLOAD || rest.len() < FRAME_HEADER + len {
            torn_tail = true;
            break;
        }
        let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
        if fnv1a64(payload) != checksum {
            torn_tail = true;
            break;
        }
        match serde_json::from_slice::<JournalRecord>(payload) {
            Ok(record) => records.push(record),
            Err(_) => {
                torn_tail = true;
                break;
            }
        }
        offset += FRAME_HEADER + len;
    }
    Ok(Replay {
        records,
        torn_tail,
        clean_len: offset as u64,
    })
}

/// An open journal, ready to append.
pub struct Journal {
    file: File,
    path: PathBuf,
    records_written: u64,
    crash_after: Option<u64>,
    crash_torn: bool,
}

impl Journal {
    /// Create a fresh journal (truncating anything at `path`).
    pub fn create(path: &Path) -> Result<Self, JournalError> {
        let mut file = File::create(path)?;
        file.write_all(JOURNAL_MAGIC)?;
        file.flush()?;
        Ok(Journal {
            file,
            path: path.to_owned(),
            records_written: 0,
            crash_after: None,
            crash_torn: false,
        })
    }

    /// Re-open an existing journal for append after [`replay`]: the torn
    /// tail (if any) is truncated away so new frames extend the clean prefix.
    pub fn open_after_replay(path: &Path, replay: &Replay) -> Result<Self, JournalError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(replay.clean_len)?;
        let mut file = file;
        use std::io::Seek;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(Journal {
            file,
            path: path.to_owned(),
            records_written: replay.records.len() as u64,
            crash_after: None,
            crash_torn: false,
        })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended over this journal's lifetime (including replayed
    /// ones when opened after replay).
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Arm an injected crash: the append that would write record number
    /// `record_count + 1` (1-based over the file's lifetime) fails with
    /// [`JournalError::InjectedCrash`] instead. With `torn`, the doomed
    /// append first writes a partial frame — the torn tail a real mid-write
    /// crash leaves.
    pub fn set_crash_after(&mut self, record_count: u64, torn: bool) {
        self.crash_after = Some(record_count);
        self.crash_torn = torn;
    }

    /// Append one record: length-prefixed, checksummed, flushed.
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), JournalError> {
        let payload = serde_json::to_vec(record)?;
        if let Some(limit) = self.crash_after {
            if self.records_written >= limit {
                if self.crash_torn {
                    // Die mid-write: a frame header promising more payload
                    // than ever arrives.
                    let mut torn = Vec::new();
                    torn.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                    torn.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
                    torn.extend_from_slice(&payload[..payload.len() / 2]);
                    self.file.write_all(&torn)?;
                    self.file.flush()?;
                }
                return Err(JournalError::InjectedCrash);
            }
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.file.flush()?;
        self.records_written += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kg-journal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.log")
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Cycle {
                source: "securelist".into(),
                due_ms: 1_500_000_000_000,
                new_reports: 3,
                pages_fetched: 7,
                error: None,
            },
            JournalRecord::Ingested {
                content_hash: 0xDEAD_BEEF,
                source: "securelist".into(),
                report_key: "r0".into(),
            },
            JournalRecord::Snapshot {
                seq: 1,
                cycles_done: 1,
                kg_digest: 42,
            },
            JournalRecord::Cycle {
                source: "talos-intel".into(),
                due_ms: 1_500_000_100_000,
                new_reports: 0,
                pages_fetched: 1,
                error: Some("aborted after 10 hard fetch failures".into()),
            },
        ]
    }

    #[test]
    fn round_trip_all_record_kinds() {
        let path = tmp("roundtrip");
        let mut journal = Journal::create(&path).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        let replay = replay(&path).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.records, sample_records());
        assert_eq!(replay.last_snapshot(), Some((1, 1, 42)));
        assert_eq!(replay.snapshots(), vec![(1, 1, 42)]);
    }

    #[test]
    fn torn_tail_is_tolerated_and_truncated_on_reopen() {
        let path = tmp("torn");
        let mut journal = Journal::create(&path).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        drop(journal);
        // Simulate a crash mid-write: append half a frame of garbage.
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&[0x77, 0x02, 0x00, 0x00, 0xAB, 0xCD])
            .unwrap();
        drop(file);

        let first = replay(&path).unwrap();
        assert!(first.torn_tail);
        assert_eq!(first.records, sample_records());
        assert_eq!(first.clean_len, clean_len);

        // Re-open, truncating the tail, and keep appending.
        let mut journal = Journal::open_after_replay(&path, &first).unwrap();
        assert_eq!(journal.records_written(), 4);
        journal
            .append(&JournalRecord::Snapshot {
                seq: 2,
                cycles_done: 2,
                kg_digest: 43,
            })
            .unwrap();
        let second = replay(&path).unwrap();
        assert!(!second.torn_tail);
        assert_eq!(second.records.len(), 5);
        assert_eq!(second.last_snapshot(), Some((2, 2, 43)));
    }

    #[test]
    fn corrupt_checksum_stops_replay_at_the_bad_frame() {
        let path = tmp("checksum");
        let mut journal = Journal::create(&path).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        drop(journal);
        // Flip a byte inside the last frame's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let replay = replay(&path).unwrap();
        assert!(replay.torn_tail);
        assert_eq!(replay.records.len(), 3);
    }

    #[test]
    fn bad_header_is_an_error() {
        let path = tmp("header");
        std::fs::write(&path, b"definitely not a journal").unwrap();
        assert!(matches!(replay(&path), Err(JournalError::BadHeader)));
        assert!(matches!(
            replay(&path.with_extension("missing")),
            Err(JournalError::Io(_))
        ));
    }

    #[test]
    fn injected_crash_fires_on_the_chosen_append() {
        let path = tmp("crash");
        let mut journal = Journal::create(&path).unwrap();
        journal.set_crash_after(2, true);
        let records = sample_records();
        journal.append(&records[0]).unwrap();
        journal.append(&records[1]).unwrap();
        let err = journal.append(&records[2]).unwrap_err();
        assert!(matches!(err, JournalError::InjectedCrash));
        drop(journal);
        // The file holds two clean records plus a torn half-frame.
        let after = replay(&path).unwrap();
        assert!(after.torn_tail);
        assert_eq!(after.records, records[..2].to_vec());
    }
}
