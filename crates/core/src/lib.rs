//! SecurityKG — automated OSCTI gathering and management.
//!
//! The facade crate: wires the crawler, the extraction models, the staged
//! backend pipeline, the knowledge graph and the exploration UI backend into
//! one system, mirroring the paper's architecture (Figure 1):
//!
//! ```text
//! collection (kg-crawler over kg-corpus)
//!   → processing (kg-pipeline: porter/checker/parser/extractor)
//!   → storage (graph connector: kg-graph + kg-search)
//!   → applications (Explorer, Cypher, fusion, layout)
//! ```
//!
//! Typical use:
//!
//! ```
//! use securitykg::{SecurityKg, SystemConfig};
//!
//! let mut config = SystemConfig::default();
//! config.articles_per_source = 3;       // tiny corpus for the doctest
//! config.world.malware_count = 12;
//! config.world.actor_count = 6;
//! config.training.articles = 40;
//! let mut kg = SecurityKg::bootstrap(&config);
//! let report = kg.crawl_and_ingest();
//! assert!(report.reports_ingested > 0);
//! assert!(kg.graph().node_count() > 0);
//! let hits = kg.keyword_search("wannacry", 5);
//! let _ = hits; // tiny corpora may or may not mention the demo malware
//! ```

pub mod durable;
pub mod evalx;
pub mod explorer;
pub mod journal;
pub mod quality;
pub mod snapshot;
pub mod stix;
pub mod train;

// Re-export the subsystem crates so downstream users need a single
// dependency.
pub use kg_corpus as corpus;
pub use kg_crawler as crawler;
pub use kg_extract as extract;
pub use kg_fusion as fusion;
pub use kg_graph as graph;
pub use kg_hunting as hunting;
pub use kg_ir as ir;
pub use kg_layout as layout;
pub use kg_nlp as nlp;
pub use kg_ontology as ontology;
pub use kg_persist as persist;
pub use kg_pipeline as pipeline;
pub use kg_search as search;
pub use kg_serve as serve;

pub use durable::{
    graph_digest, run_durable, verify_dir, DurableOptions, DurableReport, RecoverSummary,
    SnapshotPayload, DEFAULT_START_MS,
};
pub use evalx::{evaluate_ner, evaluate_relations, ExtractionScores};
pub use explorer::{Explorer, ViewNode, ViewSnapshot};
pub use journal::{replay, Journal, JournalError, JournalRecord, Replay};
pub use quality::{source_quality, QualityReport, VendorQuality};
pub use snapshot::KnowledgeBase;
pub use stix::{export_bundle, import_bundle};
pub use train::{collect_gold, train_ner, LabelSource, TrainedNer, TrainingConfig};

use kg_corpus::{standard_sources, FaultProfile, SimulatedWeb, World, WorldConfig};
use kg_crawler::{crawl_all, CrawlMetrics, CrawlState, CrawlerConfig};
use kg_fusion::{FusionConfig, FusionReport};
use kg_graph::{GraphStore, NodeId};
use kg_pipeline::{
    GraphConnector, IocOnlyExtractor, NerExtractor, ParserRegistry, PipelineConfig,
    PipelineMetrics, TraceEvent, TraceLog,
};
use kg_search::SearchIndex;
use std::sync::Arc;

/// Whole-system configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// The synthetic threat universe.
    pub world: WorldConfig,
    /// Articles per source in the simulated web.
    pub articles_per_source: usize,
    /// Web / generation seed.
    pub seed: u64,
    /// Injected fault rates layered on the simulated web (quiet by default;
    /// chaos runs turn them up).
    pub faults: FaultProfile,
    pub crawler: CrawlerConfig,
    pub pipeline: PipelineConfig,
    pub training: TrainingConfig,
    pub fusion: FusionConfig,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            world: WorldConfig::default(),
            articles_per_source: 40,
            seed: 0x5ec_417,
            faults: FaultProfile::default(),
            crawler: CrawlerConfig::default(),
            pipeline: PipelineConfig::default(),
            training: TrainingConfig::default(),
            fusion: FusionConfig::default(),
        }
    }
}

/// The gazetteer baseline extractor (IOC scanner + exact matching over the
/// curated lists) for a given web — shared by [`SecurityKg`] and the durable
/// ingest driver, which needs extraction without CRF training.
pub(crate) fn gazetteer_extractor(
    web: &SimulatedWeb,
    training: &TrainingConfig,
) -> IocOnlyExtractor {
    let curated = web
        .world()
        .curated_lists(training.lf_coverage, training.seed);
    IocOnlyExtractor {
        baseline: Arc::new(kg_extract::RegexNerBaseline::new(vec![
            (kg_ontology::EntityKind::Malware, curated.malware),
            (kg_ontology::EntityKind::ThreatActor, curated.actors),
            (kg_ontology::EntityKind::Technique, curated.techniques),
            (kg_ontology::EntityKind::Tool, curated.tools),
            (kg_ontology::EntityKind::Software, curated.software),
        ])),
    }
}

/// Summary of one crawl-and-ingest round.
#[derive(Debug, Clone)]
pub struct IngestReport {
    pub crawl: CrawlMetrics,
    pub pipeline: PipelineMetrics,
    pub reports_ingested: usize,
}

/// The assembled SecurityKG system.
pub struct SecurityKg {
    config: SystemConfig,
    web: SimulatedWeb,
    crawl_state: CrawlState,
    registry: ParserRegistry,
    ner: Option<Arc<kg_extract::NerPipeline>>,
    connector: GraphConnector,
    /// Incremental epoch builder for O(delta) serving publishes; seeded
    /// lazily on the first [`SecurityKg::serving_snapshot_incremental`].
    epoch: Option<kg_serve::EpochBuilder>,
    /// Per-shard epoch builders for scale-out serving; seeded lazily on the
    /// first [`SecurityKg::serving_shards`] (reseeded if the shard count
    /// changes).
    shard_set: Option<kg_serve::ShardSet>,
    /// Structured event log accumulated across ingest rounds.
    trace: TraceLog,
    /// Simulated clock for incremental crawls.
    pub now_ms: u64,
}

impl SecurityKg {
    /// Build the system: generate the world + web, train the extractor on
    /// the training slice of the corpus, and prepare an empty knowledge
    /// graph.
    pub fn bootstrap(config: &SystemConfig) -> Self {
        let world = World::generate(config.world.clone());
        let web = SimulatedWeb::with_faults(
            world,
            standard_sources(config.articles_per_source),
            config.seed,
            config.faults,
        );
        let trained = train_ner(&web, &config.training);
        let mut pipeline = trained.into_pipeline();
        pipeline.min_confidence = config.pipeline.ner_min_confidence;
        SecurityKg {
            config: config.clone(),
            web,
            crawl_state: CrawlState::new(),
            registry: ParserRegistry::new(),
            ner: Some(Arc::new(pipeline)),
            connector: GraphConnector::new(),
            epoch: None,
            shard_set: None,
            trace: TraceLog::new(),
            now_ms: u64::MAX / 4,
        }
    }

    /// Build without CRF training: extraction falls back to the IOC scanner
    /// plus exact gazetteer matching over the curated lists (the "naive
    /// regex-rule" configuration). Much faster to construct; used by tests
    /// and as the E3 baseline system.
    pub fn bootstrap_without_ner(config: &SystemConfig) -> Self {
        let world = World::generate(config.world.clone());
        let web = SimulatedWeb::with_faults(
            world,
            standard_sources(config.articles_per_source),
            config.seed,
            config.faults,
        );
        SecurityKg {
            config: config.clone(),
            web,
            crawl_state: CrawlState::new(),
            registry: ParserRegistry::new(),
            ner: None,
            connector: GraphConnector::new(),
            epoch: None,
            shard_set: None,
            trace: TraceLog::new(),
            now_ms: u64::MAX / 4,
        }
    }

    /// The gazetteer baseline extractor over this web's curated lists.
    fn baseline_extractor(&self) -> IocOnlyExtractor {
        gazetteer_extractor(&self.web, &self.config.training)
    }

    /// The simulated web (for experiments needing ground truth).
    pub fn web(&self) -> &SimulatedWeb {
        &self.web
    }

    /// The trained NER pipeline, if any.
    pub fn ner(&self) -> Option<&Arc<kg_extract::NerPipeline>> {
        self.ner.as_ref()
    }

    /// Crawl every source incrementally and push everything new through the
    /// processing pipeline into the knowledge graph.
    pub fn crawl_and_ingest(&mut self) -> IngestReport {
        let (reports, crawl) = crawl_all(
            &self.web,
            &mut self.crawl_state,
            &self.config.crawler,
            self.now_ms,
        );
        self.trace.record(TraceEvent::IngestStarted {
            pages: reports.len(),
        });
        let connector = std::mem::take(&mut self.connector);
        let out = match &self.ner {
            Some(ner) => kg_pipeline::run_pipelined(
                reports,
                &self.registry,
                &NerExtractor {
                    pipeline: Arc::clone(ner),
                },
                connector,
                &self.config.pipeline,
            ),
            None => kg_pipeline::run_pipelined(
                reports,
                &self.registry,
                &self.baseline_extractor(),
                connector,
                &self.config.pipeline,
            ),
        };
        self.connector = out.connector;
        self.trace.absorb(&out.trace);
        self.trace.record(TraceEvent::IngestFinished {
            connected: out.metrics.connected,
            quarantined: out.metrics.quarantined,
            wall_us: out.metrics.wall_us,
        });
        IngestReport {
            crawl,
            reports_ingested: out.metrics.connected,
            pipeline: out.metrics,
        }
    }

    /// The accumulated structured event log (pipeline stages, quarantines,
    /// ingest rounds).
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Run the knowledge-fusion stage (§2.5) over the current graph.
    pub fn fuse(&mut self) -> FusionReport {
        kg_fusion::fuse(&mut self.connector.graph, &self.config.fusion)
    }

    /// The knowledge graph.
    pub fn graph(&self) -> &GraphStore {
        &self.connector.graph
    }

    /// Mutable access (applications layer).
    pub fn graph_mut(&mut self) -> &mut GraphStore {
        &mut self.connector.graph
    }

    /// The keyword index.
    pub fn search_index(&self) -> &SearchIndex<NodeId> {
        &self.connector.search
    }

    /// Find an entity node by name **or recorded alias** (fusion may have
    /// absorbed the queried name into a canonical sibling).
    pub fn find_entity(&self, label: &str, name: &str) -> Option<NodeId> {
        self.find_entity_lowered(label, &name.to_lowercase())
    }

    /// [`SecurityKg::find_entity`] with the name already lowercased, so
    /// per-label loops normalise the query once instead of once per kind.
    fn find_entity_lowered(&self, label: &str, name: &str) -> Option<NodeId> {
        if let Some(id) = self.connector.graph.node_by_name(label, name) {
            return Some(id);
        }
        self.connector
            .graph
            .nodes_with_label(label)
            .into_iter()
            .find(|&id| {
                match self
                    .connector
                    .graph
                    .node(id)
                    .and_then(|n| n.props.get("aliases"))
                {
                    Some(kg_graph::Value::List(xs)) => xs.iter().any(|v| v.as_text() == Some(name)),
                    _ => false,
                }
            })
    }

    /// Keyword search (Elasticsearch path in the paper's UI): returns
    /// matching *report* nodes plus the entity nodes they describe.
    pub fn keyword_search(&self, query: &str, k: usize) -> Vec<NodeId> {
        let mut out = Vec::new();
        // Entity whose canonical name (or alias) matches directly, first
        // (query lowercased once, not once per entity kind).
        let lowered = query.to_lowercase();
        for label in kg_ontology::EntityKind::ALL {
            if let Some(id) = self.find_entity_lowered(label.label(), &lowered) {
                if !out.contains(&id) {
                    out.push(id);
                }
            }
        }
        for hit in self.connector.search.search(query, k) {
            if !out.contains(&hit.doc) {
                out.push(hit.doc);
            }
        }
        out.truncate(k.max(1));
        out
    }

    /// Cypher query (Neo4j path in the paper's UI).
    pub fn cypher(
        &mut self,
        query: &str,
    ) -> Result<kg_graph::QueryResult, kg_graph::cypher::CypherError> {
        self.connector.graph.query(query)
    }

    /// Start an exploration session (the web UI backend).
    pub fn explorer(&self) -> Explorer<'_> {
        Explorer::new(self)
    }

    /// Freeze the current knowledge base into an immutable serving snapshot
    /// (`kg-serve`'s publication unit): graph + keyword index + expansion
    /// adjacency, stamped with the graph's canonical digest — the same
    /// fingerprint [`graph_digest`] computes, so serving epochs and durable
    /// snapshots are directly comparable. This is the O(graph) full rebuild;
    /// [`SecurityKg::serving_snapshot_incremental`] is the O(delta) path.
    pub fn serving_snapshot(&self) -> kg_serve::KgSnapshot {
        kg_serve::KgSnapshot::build(self.connector.graph.clone(), self.connector.search.clone())
    }

    /// Freeze a serving snapshot incrementally: digest and adjacency are
    /// carried forward from the previous freeze and patched with whatever
    /// ingestion touched since (O(delta)), and the graph/index clones are
    /// refcount bumps over `Arc`'d segments. The first call seeds the epoch
    /// builder with one full scan; digest-identical to
    /// [`SecurityKg::serving_snapshot`] at every state.
    pub fn serving_snapshot_incremental(&mut self) -> kg_serve::KgSnapshot {
        if self.epoch.is_none() {
            self.epoch = Some(kg_serve::EpochBuilder::new(&mut self.connector.graph));
        }
        self.epoch
            .as_mut()
            .expect("seeded above")
            .freeze(&mut self.connector.graph, &self.connector.search)
    }

    /// Partition the knowledge base across `shards` scatter-gather cells
    /// and freeze one snapshot per shard (see `kg-serve::ShardedServe`).
    /// Nodes route by hashed `(label, name)` canon key; each shard carries
    /// its owned slice of the graph, the keyword index and the expansion
    /// adjacency plus a partial digest — the per-shard partials plus the
    /// digest seed sum to [`graph_digest`], so a scatter-gather response
    /// vector is verifiable against the durable fingerprint. The first call
    /// seeds per-shard epoch builders with one full scan; later calls are
    /// O(delta) per shard. Changing `shards` reseeds from scratch.
    pub fn serving_shards(&mut self, shards: usize) -> Vec<kg_serve::ShardSnapshot> {
        self.seed_shard_set(shards);
        self.shard_set
            .as_mut()
            .expect("seeded above")
            .freeze_all(&mut self.connector.graph, &self.connector.search)
    }

    /// Freeze the next epoch of a single shard (independent per-shard
    /// publication: the other shards keep serving their current epochs).
    /// `shards` fixes the partition width on first use, like
    /// [`SecurityKg::serving_shards`].
    pub fn serving_shard(&mut self, shard: usize, shards: usize) -> kg_serve::ShardSnapshot {
        self.seed_shard_set(shards);
        self.shard_set.as_mut().expect("seeded above").freeze_shard(
            shard,
            &mut self.connector.graph,
            &self.connector.search,
        )
    }

    fn seed_shard_set(&mut self, shards: usize) {
        let reseed = self
            .shard_set
            .as_ref()
            .is_none_or(|set| set.shards() != shards.max(1));
        if reseed {
            self.shard_set = Some(kg_serve::ShardSet::new(
                &mut self.connector.graph,
                &self.connector.search,
                shards,
            ));
        }
    }

    /// Register a standing-query hub on the live graph's delta log (its own
    /// cursor — independent of the epoch builder's). Pair with
    /// [`SecurityKg::serving_snapshot_incremental`]: subscriptions are
    /// evaluated against each publish's delta via
    /// [`SecurityKg::evaluate_subscriptions`], turning polling into push
    /// alerts.
    pub fn subscription_hub(&mut self) -> kg_serve::SubscriptionHub {
        kg_serve::SubscriptionHub::new(&mut self.connector.graph)
    }

    /// Evaluate `hub`'s standing queries over the delta sealed by `next`'s
    /// freeze, diffing each touched element between `prev` and `next`
    /// (O(delta × subscriptions)). Matches land in the subscribers'
    /// mailboxes; `SubscriptionMatched`/`MailboxOverflow` land on the
    /// system trace.
    pub fn evaluate_subscriptions(
        &mut self,
        hub: &kg_serve::SubscriptionHub,
        prev: &kg_serve::KgSnapshot,
        next: &kg_serve::KgSnapshot,
    ) -> kg_serve::DeliveryReport {
        hub.evaluate(&mut self.connector.graph, prev, next, Some(&self.trace))
    }

    /// Build a threat hunter from the knowledge graph (the paper's future
    /// work: knowledge-enhanced threat protection). Extracts a behaviour
    /// graph for every malware node with at least `min_indicators` IOC
    /// indicators.
    pub fn hunter(&self, min_indicators: usize) -> kg_hunting::Hunter {
        kg_hunting::Hunter::new(kg_hunting::behavior::behaviors_with_label(
            &self.connector.graph,
            kg_ontology::EntityKind::Malware.label(),
            min_indicators,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SystemConfig {
        SystemConfig {
            world: WorldConfig::tiny(7),
            articles_per_source: 4,
            training: TrainingConfig {
                articles: 60,
                ..TrainingConfig::default()
            },
            ..SystemConfig::default()
        }
    }

    #[test]
    fn end_to_end_build_query_fuse() {
        let mut kg = SecurityKg::bootstrap(&tiny_config());
        let report = kg.crawl_and_ingest();
        assert!(report.reports_ingested > 0);
        assert!(kg.graph().node_count() > report.reports_ingested);
        assert!(kg.graph().edge_count() > 0);

        // Incremental second round: nothing new.
        let second = kg.crawl_and_ingest();
        assert_eq!(second.reports_ingested, 0);

        // Cypher works over the built graph.
        let result = kg
            .cypher("MATCH (v:CtiVendor)-[:PUBLISHES]->(r) RETURN count(*)")
            .unwrap();
        let published = result.rows[0][0].as_int().unwrap();
        assert_eq!(published as usize, report.reports_ingested);

        // Fusion runs and is idempotent.
        let f1 = kg.fuse();
        let f2 = kg.fuse();
        assert_eq!(f2.nodes_removed, 0);
        let _ = f1;
    }

    #[test]
    fn ingest_rounds_accumulate_in_the_trace() {
        let mut kg = SecurityKg::bootstrap_without_ner(&tiny_config());
        assert!(kg.trace().is_empty());
        let first = kg.crawl_and_ingest();
        let events: Vec<TraceEvent> = kg.trace().snapshot().into_iter().map(|r| r.event).collect();
        assert!(matches!(events[0], TraceEvent::IngestStarted { .. }));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::StageFinished { .. })));
        assert!(matches!(
            events.last(),
            Some(TraceEvent::IngestFinished { connected, quarantined: 0, .. })
                if *connected == first.reports_ingested
        ));
        let after_first = kg.trace().total_recorded();
        // A second (empty) round still books-ends its events.
        kg.crawl_and_ingest();
        assert!(kg.trace().total_recorded() > after_first);
        assert!(!kg.trace().render_tail(5).is_empty());
    }

    #[test]
    fn serving_snapshot_matches_live_graph_and_digest() {
        let mut kg = SecurityKg::bootstrap_without_ner(&tiny_config());
        kg.crawl_and_ingest();
        let snap = kg.serving_snapshot();
        assert_eq!(snap.node_count(), kg.graph().node_count());
        assert_eq!(snap.edge_count(), kg.graph().edge_count());
        assert_eq!(
            snap.digest(),
            durable::graph_digest(kg.graph()),
            "serving digest must equal the durable graph digest"
        );
        // The incremental freeze agrees with the full rebuild, now and
        // after another ingest round mutates the graph.
        let inc = kg.serving_snapshot_incremental();
        assert_eq!(inc.digest(), snap.digest());
        assert_eq!(inc.mode(), kg_serve::SnapshotMode::Incremental);
        kg.crawl_and_ingest();
        let inc2 = kg.serving_snapshot_incremental();
        assert_eq!(inc2.digest(), kg.serving_snapshot().digest());
        assert_eq!(inc2.digest(), durable::graph_digest(kg.graph()));
        // The snapshot answers the same keyword query as the live system.
        let malware = kg.graph().nodes_with_label("Malware");
        assert!(!malware.is_empty());
        let name = kg
            .graph()
            .node(malware[0])
            .unwrap()
            .name()
            .unwrap()
            .to_owned();
        assert_eq!(snap.keyword_search(&name, 10), kg.keyword_search(&name, 10));
    }

    #[test]
    fn sharded_serving_agrees_with_the_single_snapshot() {
        let mut kg = SecurityKg::bootstrap_without_ner(&tiny_config());
        kg.crawl_and_ingest();
        let oracle = kg.serving_snapshot();
        let serve = kg_serve::ShardedServe::new(kg.serving_shards(3));
        assert_eq!(serve.shards(), 3);
        // The per-shard partial digests reassemble the canonical graph
        // digest, and every query class matches the unsharded snapshot.
        let malware = kg.graph().nodes_with_label("Malware");
        let name = kg
            .graph()
            .node(malware[0])
            .unwrap()
            .name()
            .unwrap()
            .to_owned();
        for query in [
            kg_serve::Query::Search {
                q: name.clone(),
                k: 10,
            },
            kg_serve::Query::Cypher {
                q: "MATCH (m:Malware) RETURN m.name ORDER BY m.name LIMIT 5".into(),
            },
            kg_serve::Query::Expand {
                name,
                hops: 2,
                cap: 40,
            },
        ] {
            let response = serve.execute(&query);
            assert_eq!(response.answer, oracle.answer(&query));
            assert_eq!(response.combined_digest(), oracle.digest());
        }
        // Mutate and republish a single shard: the mixed-epoch digest
        // vector no longer reassembles, but a full refreeze does.
        kg.crawl_and_ingest();
        kg.graph_mut()
            .create_node("Malware", [("name", kg_graph::Value::from("shardling"))]);
        for shard in 0..3 {
            serve.publish_shard(kg.serving_shard(shard, 3));
        }
        assert_eq!(
            serve.execute(&kg_serve::Query::Search {
                q: "shardling".into(),
                k: 3,
            }),
            serve.execute(&kg_serve::Query::Search {
                q: "shardling".into(),
                k: 3,
            }),
        );
        assert_eq!(
            serve
                .execute(&kg_serve::Query::Cypher {
                    q: "MATCH (m:Malware {name: 'shardling'}) RETURN count(*)".into(),
                })
                .combined_digest(),
            durable::graph_digest(kg.graph()),
        );
    }

    #[test]
    fn standing_queries_fire_across_ingest_rounds() {
        let mut kg = SecurityKg::bootstrap_without_ner(&tiny_config());
        let hub = kg.subscription_hub();
        let sub = hub.subscribe(
            kg_serve::WatchSpec::Node {
                label: Some("Malware".into()),
                predicate: None,
            },
            usize::MAX,
        );
        let prev = kg.serving_snapshot_incremental();
        kg.crawl_and_ingest();
        let next = kg.serving_snapshot_incremental();
        let report = kg.evaluate_subscriptions(&hub, &prev, &next);
        // Every malware node ingested this round appears exactly once, and
        // the incremental match set equals the full-rescan oracle.
        let malware = kg.graph().nodes_with_label("Malware");
        assert!(!malware.is_empty());
        let appeared: Vec<_> = sub
            .drain()
            .into_iter()
            .filter(|e| e.kind == kg_serve::MatchKind::Appeared)
            .map(|e| e.node)
            .collect();
        assert_eq!(appeared.len(), malware.len());
        assert_eq!(
            report.matches,
            kg_serve::rescan_matches(
                &kg_serve::WatchSpec::Node {
                    label: Some("Malware".into()),
                    predicate: None,
                },
                sub.id(),
                &prev,
                &next,
            )
        );
        assert!(kg.trace().snapshot().iter().any(|r| matches!(
            r.event,
            TraceEvent::SubscriptionMatched { matched, .. } if matched == appeared.len()
        )));
        // A quiet round fires nothing.
        kg.crawl_and_ingest();
        let next2 = kg.serving_snapshot_incremental();
        let report = kg.evaluate_subscriptions(&hub, &next, &next2);
        assert_eq!(report.matched, 0);
    }

    #[test]
    fn keyword_and_cypher_find_the_same_entity() {
        let mut config = tiny_config();
        config.articles_per_source = 12;
        let mut kg = SecurityKg::bootstrap_without_ner(&config);
        kg.crawl_and_ingest();
        // Find some malware that exists in the graph.
        let malware = kg.graph().nodes_with_label("Malware");
        assert!(!malware.is_empty());
        let name = kg
            .graph()
            .node(malware[0])
            .unwrap()
            .name()
            .unwrap()
            .to_owned();
        let keyword_hits = kg.keyword_search(&name, 10);
        assert!(keyword_hits.contains(&malware[0]), "{name}");
        let r = kg
            .cypher(&format!("match (n) where n.name = \"{name}\" return n"))
            .unwrap();
        assert_eq!(r.node_ids(), vec![malware[0]]);
    }
}
