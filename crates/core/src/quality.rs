//! Threat-intelligence quality analytics over the knowledge graph.
//!
//! The paper's related work highlights "measuring threat intelligence
//! quality" (Li et al., *Reading the Tea Leaves*, USENIX Security 2019; Dong
//! et al. 2019). With a knowledge graph that records which vendor published
//! which report mentioning which entity at what time, those feed-quality
//! metrics become graph queries. This module computes, per CTI vendor:
//!
//! - **volume** — reports published and entities mentioned;
//! - **breadth** — distinct entities per report, IOC density;
//! - **exclusivity** (differential contribution) — entities no other vendor
//!   mentions;
//! - **latency** — how far behind the earliest reporter the vendor's first
//!   mention of each shared entity is;
//! - **coverage** — fraction of all known entities the vendor mentions.

use kg_graph::{GraphStore, NodeId};
use kg_ontology::{EntityKind, RelationKind};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Quality metrics for one CTI vendor (source).
#[derive(Debug, Clone, Default, Serialize)]
pub struct VendorQuality {
    pub vendor: String,
    pub reports: usize,
    /// Distinct entities this vendor's reports mention.
    pub entities: usize,
    /// Distinct IOC entities mentioned.
    pub iocs: usize,
    /// Entities mentioned by this vendor and nobody else.
    pub exclusive: usize,
    /// Fraction of the graph's entities this vendor covers.
    pub coverage: f64,
    /// Mean lag (ms) behind the first reporter, over shared entities this
    /// vendor also mentions. 0 when the vendor is always first.
    pub mean_latency_ms: f64,
    /// Entities this vendor reported before anyone else.
    pub scoops: usize,
}

/// The full per-vendor quality table plus corpus-level aggregates.
#[derive(Debug, Clone, Default, Serialize)]
pub struct QualityReport {
    pub vendors: Vec<VendorQuality>,
    pub total_entities: usize,
    /// Entities mentioned by ≥2 vendors (the overlap the latency metric is
    /// computed on).
    pub shared_entities: usize,
}

/// Compute the quality report from a built knowledge graph.
///
/// Relies on the connector's provenance structure: `(:CtiVendor)-[:PUBLISHES]->
/// (report)-[:MENTIONS]->(entity)` with a `timestamp` property on reports.
pub fn source_quality(graph: &GraphStore) -> QualityReport {
    let publishes = RelationKind::Publishes.label();
    let mentions = RelationKind::Mentions.label();

    // entity → (vendor → earliest mention time).
    let mut first_mention: HashMap<NodeId, BTreeMap<String, u64>> = HashMap::new();
    // vendor → stats accumulators.
    let mut vendor_reports: BTreeMap<String, usize> = BTreeMap::new();
    let mut vendor_entities: BTreeMap<String, HashSet<NodeId>> = BTreeMap::new();

    for vendor_node in graph.nodes_with_label(EntityKind::CtiVendor.label()) {
        let Some(vendor) = graph.node(vendor_node).and_then(|n| n.name()) else {
            continue;
        };
        let vendor = vendor.to_owned();
        for publish_edge in graph.outgoing(vendor_node) {
            if publish_edge.rel_type != publishes {
                continue;
            }
            let report = publish_edge.to;
            *vendor_reports.entry(vendor.clone()).or_insert(0) += 1;
            let timestamp = graph
                .node(report)
                .and_then(|n| n.props.get("timestamp"))
                .and_then(|v| v.as_int())
                .unwrap_or(i64::MAX) as u64;
            for mention_edge in graph.outgoing(report) {
                if mention_edge.rel_type != mentions {
                    continue;
                }
                let entity = mention_edge.to;
                vendor_entities
                    .entry(vendor.clone())
                    .or_default()
                    .insert(entity);
                let per_vendor = first_mention.entry(entity).or_default();
                let slot = per_vendor.entry(vendor.clone()).or_insert(u64::MAX);
                *slot = (*slot).min(timestamp);
            }
        }
    }

    let total_entities = first_mention.len();
    let shared_entities = first_mention.values().filter(|m| m.len() >= 2).count();

    // Global first-mention time per entity.
    let global_first: HashMap<NodeId, u64> = first_mention
        .iter()
        .map(|(&e, per_vendor)| (e, per_vendor.values().copied().min().unwrap_or(0)))
        .collect();

    let mut vendors = Vec::new();
    for (vendor, entities) in &vendor_entities {
        let mut exclusive = 0usize;
        let mut scoops = 0usize;
        let mut latency_sum = 0u64;
        let mut latency_n = 0usize;
        let mut iocs = 0usize;
        for &entity in entities {
            let per_vendor = &first_mention[&entity];
            if per_vendor.len() == 1 {
                exclusive += 1;
            } else {
                let mine = per_vendor[vendor];
                let first = global_first[&entity];
                if mine == first {
                    scoops += 1;
                } else {
                    latency_sum += mine - first;
                    latency_n += 1;
                }
            }
            let is_ioc = graph
                .node(entity)
                .and_then(|n| n.label.parse::<EntityKind>().ok())
                .is_some_and(|k| k.is_ioc());
            if is_ioc {
                iocs += 1;
            }
        }
        vendors.push(VendorQuality {
            vendor: vendor.clone(),
            reports: vendor_reports.get(vendor).copied().unwrap_or(0),
            entities: entities.len(),
            iocs,
            exclusive,
            coverage: if total_entities == 0 {
                0.0
            } else {
                entities.len() as f64 / total_entities as f64
            },
            mean_latency_ms: if latency_n == 0 {
                0.0
            } else {
                latency_sum as f64 / latency_n as f64
            },
            scoops,
        });
    }
    // Highest coverage first.
    vendors.sort_by(|a, b| {
        b.coverage
            .partial_cmp(&a.coverage)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    QualityReport {
        vendors,
        total_entities,
        shared_entities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_graph::Value;

    /// Two vendors: A reports entity X at t=100 and exclusive Y; B reports X
    /// at t=200.
    fn sample() -> GraphStore {
        let mut g = GraphStore::new();
        let vendor_a = g.create_node("CtiVendor", [("name", Value::from("alpha-labs"))]);
        let vendor_b = g.create_node("CtiVendor", [("name", Value::from("beta-intel"))]);
        let report_a = g.create_node(
            "MalwareReport",
            [
                ("name", Value::from("alpha-labs/r0")),
                ("timestamp", Value::Int(100)),
            ],
        );
        let report_b = g.create_node(
            "MalwareReport",
            [
                ("name", Value::from("beta-intel/r0")),
                ("timestamp", Value::Int(200)),
            ],
        );
        let x = g.create_node("Malware", [("name", Value::from("x"))]);
        let y = g.create_node("Domain", [("name", Value::from("y.evil.ru"))]);
        g.create_edge(vendor_a, "PUBLISHES", report_a, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(vendor_b, "PUBLISHES", report_b, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(report_a, "MENTIONS", x, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(report_a, "MENTIONS", y, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(report_b, "MENTIONS", x, [] as [(&str, Value); 0])
            .unwrap();
        g
    }

    #[test]
    fn computes_volume_exclusivity_latency() {
        let report = source_quality(&sample());
        assert_eq!(report.total_entities, 2);
        assert_eq!(report.shared_entities, 1);
        let a = report
            .vendors
            .iter()
            .find(|v| v.vendor == "alpha-labs")
            .unwrap();
        let b = report
            .vendors
            .iter()
            .find(|v| v.vendor == "beta-intel")
            .unwrap();
        assert_eq!(a.reports, 1);
        assert_eq!(a.entities, 2);
        assert_eq!(a.exclusive, 1);
        assert_eq!(a.scoops, 1, "alpha was first on x");
        assert_eq!(a.mean_latency_ms, 0.0);
        assert_eq!(a.iocs, 1, "the domain");
        assert_eq!(b.entities, 1);
        assert_eq!(b.exclusive, 0);
        assert_eq!(b.scoops, 0);
        assert_eq!(b.mean_latency_ms, 100.0, "beta trailed by 100ms on x");
        // Coverage ordering: alpha first.
        assert_eq!(report.vendors[0].vendor, "alpha-labs");
        assert!((a.coverage - 1.0).abs() < 1e-9);
        assert!((b.coverage - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_yields_empty_report() {
        let report = source_quality(&GraphStore::new());
        assert!(report.vendors.is_empty());
        assert_eq!(report.total_entities, 0);
    }
}
