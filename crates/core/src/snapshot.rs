//! Persistence of a built knowledge base: the graph store plus the keyword
//! index, loadable without the web/world/extractor machinery — what a
//! deployment hands to the applications layer (UI server, CLI, hunting).

use kg_graph::{GraphStore, NodeId};
use kg_search::SearchIndex;
use serde::{Deserialize, Serialize};

/// A self-contained, queryable knowledge base.
#[derive(Serialize, Deserialize)]
pub struct KnowledgeBase {
    pub graph: GraphStore,
    pub search: SearchIndex<NodeId>,
}

impl KnowledgeBase {
    /// Serialise to JSON bytes.
    pub fn to_bytes(&self) -> Result<Vec<u8>, serde_json::Error> {
        serde_json::to_vec(self)
    }

    /// Load from JSON bytes (graph indexes are rebuilt).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, serde_json::Error> {
        let mut kb: KnowledgeBase = serde_json::from_slice(bytes)?;
        // GraphStore's secondary indexes are #[serde(skip)]; rebuild in place.
        kb.graph.rebuild_after_load();
        Ok(kb)
    }

    /// Freeze this knowledge base into a `kg-serve` publication snapshot.
    pub fn into_serving(self) -> kg_serve::KgSnapshot {
        kg_serve::KgSnapshot::build(self.graph, self.search)
    }

    /// Keyword search over the stored index (+ direct name hits).
    pub fn keyword_search(&self, query: &str, k: usize) -> Vec<NodeId> {
        let mut out = Vec::new();
        // Lowercase the query once, not once per entity kind.
        let lowered = query.to_lowercase();
        for kind in kg_ontology::EntityKind::ALL {
            if let Some(id) = self.graph.node_by_name(kind.label(), &lowered) {
                out.push(id);
            }
        }
        for hit in self.search.search(query, k) {
            if !out.contains(&hit.doc) {
                out.push(hit.doc);
            }
        }
        out.truncate(k.max(1));
        out
    }
}

impl crate::SecurityKg {
    /// Snapshot the built knowledge base (graph + keyword index).
    pub fn snapshot(&self) -> Result<Vec<u8>, serde_json::Error> {
        KnowledgeBase {
            graph: self.graph().clone(),
            search: self.search_index().clone(),
        }
        .to_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SecurityKg, SystemConfig, TrainingConfig};
    use kg_corpus::WorldConfig;

    #[test]
    fn snapshot_round_trips_and_stays_queryable() {
        let config = SystemConfig {
            world: WorldConfig::tiny(4),
            articles_per_source: 6,
            training: TrainingConfig {
                articles: 30,
                ..TrainingConfig::default()
            },
            ..SystemConfig::default()
        };
        let mut kg = SecurityKg::bootstrap_without_ner(&config);
        kg.crawl_and_ingest();
        let bytes = kg.snapshot().unwrap();
        let kb = KnowledgeBase::from_bytes(&bytes).unwrap();
        assert_eq!(kb.graph.node_count(), kg.graph().node_count());

        // Keyword search works on the restored index.
        let malware = kb.graph.nodes_with_label("Malware");
        assert!(!malware.is_empty());
        let name = kb
            .graph
            .node(malware[0])
            .unwrap()
            .name()
            .unwrap()
            .to_owned();
        assert!(kb.keyword_search(&name, 5).contains(&malware[0]));

        // Read-only Cypher works on the restored graph.
        let r = kb
            .graph
            .query_readonly("MATCH (n:CtiVendor) RETURN count(*)")
            .unwrap();
        assert!(r.rows[0][0].as_int().unwrap() > 0);
    }

    #[test]
    fn garbage_bytes_error() {
        assert!(KnowledgeBase::from_bytes(b"not json").is_err());
    }
}
