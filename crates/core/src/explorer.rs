//! The exploration UI backend (paper §2.6).
//!
//! Everything the React frontend does that is *algorithmic* lives here,
//! headless and testable: keyword / Cypher entry points, node
//! expansion/collapse on double-click, drag-and-lock, automatic Barnes–Hut
//! layout, view history (the back button), display caps and random
//! subgraphs. The [`ViewSnapshot`] JSON export is what a thin rendering
//! layer would consume.

use crate::SecurityKg;
use kg_graph::NodeId;
use kg_layout::{ForceLayout, LayoutConfig, LayoutGraph, Vec2};
use serde::Serialize;
use std::collections::{HashMap, HashSet, VecDeque};

/// One node as shown in the view.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct ViewNode {
    pub id: u64,
    pub label: String,
    pub name: String,
    pub x: f32,
    pub y: f32,
    pub locked: bool,
    pub expanded: bool,
    /// Full degree in the knowledge graph (shown on hover).
    pub degree: usize,
}

/// A serialisable snapshot of the current view.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct ViewSnapshot {
    pub nodes: Vec<ViewNode>,
    /// (index into `nodes`, index into `nodes`, relation type).
    pub edges: Vec<(usize, usize, String)>,
}

impl ViewSnapshot {
    /// JSON for the rendering layer.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialises")
    }
}

/// An exploration session over a built knowledge graph.
pub struct Explorer<'a> {
    kg: &'a SecurityKg,
    visible: Vec<NodeId>,
    positions: HashMap<NodeId, Vec2>,
    locked: HashSet<NodeId>,
    expanded: HashSet<NodeId>,
    /// Which node's expansion spawned each visible node.
    spawned_by: HashMap<NodeId, NodeId>,
    history: Vec<Vec<NodeId>>,
    engine: ForceLayout,
    /// Display cap on total nodes (user-configurable in the UI).
    pub max_nodes: usize,
    /// Cap on neighbours added per expansion.
    pub max_neighbors: usize,
}

impl<'a> Explorer<'a> {
    /// Start an empty session.
    pub fn new(kg: &'a SecurityKg) -> Self {
        Explorer {
            kg,
            visible: Vec::new(),
            positions: HashMap::new(),
            locked: HashSet::new(),
            expanded: HashSet::new(),
            spawned_by: HashMap::new(),
            history: Vec::new(),
            engine: ForceLayout::new(LayoutConfig::default()),
            max_nodes: 200,
            max_neighbors: 15,
        }
    }

    /// Currently visible node ids.
    pub fn visible(&self) -> &[NodeId] {
        &self.visible
    }

    /// Replace the view with these nodes (pushes the old view to history).
    pub fn show(&mut self, nodes: Vec<NodeId>) {
        if !self.visible.is_empty() {
            self.history.push(self.visible.clone());
        }
        self.visible.clear();
        self.positions.clear();
        self.locked.clear();
        self.expanded.clear();
        self.spawned_by.clear();
        for (i, id) in nodes.into_iter().take(self.max_nodes).enumerate() {
            if self.kg.graph().node(id).is_some() && !self.visible.contains(&id) {
                self.visible.push(id);
                let angle = i as f32 * 2.399_963;
                let radius = 30.0 * (i as f32 + 1.0).sqrt();
                self.positions
                    .insert(id, Vec2::new(radius * angle.cos(), radius * angle.sin()));
            }
        }
        self.engine.reheat();
    }

    /// Keyword search → new view (the Elasticsearch entry point).
    pub fn search(&mut self, query: &str, k: usize) {
        let hits = self.kg.keyword_search(query, k);
        self.show(hits);
    }

    /// Read-only Cypher query → new view (the Neo4j entry point).
    pub fn cypher(&mut self, query: &str) -> Result<usize, kg_graph::cypher::CypherError> {
        let result = self.kg.graph().query_readonly(query)?;
        let ids = result.node_ids();
        let n = ids.len();
        self.show(ids);
        Ok(n)
    }

    /// Double-click: expand if collapsed, collapse if expanded.
    pub fn toggle(&mut self, node: NodeId) {
        if self.expanded.contains(&node) {
            self.collapse(node);
        } else {
            self.expand(node);
        }
    }

    /// Show up to `max_neighbors` hidden neighbours of `node`.
    pub fn expand(&mut self, node: NodeId) {
        if !self.visible.contains(&node) {
            return;
        }
        let base = self.positions.get(&node).copied().unwrap_or_default();
        let mut added = 0usize;
        for neighbor in self.kg.graph().neighbors(node) {
            if added >= self.max_neighbors || self.visible.len() >= self.max_nodes {
                break;
            }
            if self.visible.contains(&neighbor) {
                continue;
            }
            self.visible.push(neighbor);
            let angle = (self.visible.len() as f32) * 2.399_963;
            self.positions.insert(
                neighbor,
                base + Vec2::new(40.0 * angle.cos(), 40.0 * angle.sin()),
            );
            self.spawned_by.insert(neighbor, node);
            added += 1;
        }
        self.expanded.insert(node);
        self.engine.reheat();
    }

    /// Hide `node`'s neighbours and everything downstream of them (paper:
    /// "double clicking on the node again will hide all its neighboring
    /// nodes and downstream nodes").
    pub fn collapse(&mut self, node: NodeId) {
        // Downstream = transitively spawned from `node`.
        let mut doomed: HashSet<NodeId> = HashSet::new();
        let mut queue: VecDeque<NodeId> = self
            .spawned_by
            .iter()
            .filter(|&(_, &parent)| parent == node)
            .map(|(&child, _)| child)
            .collect();
        while let Some(n) = queue.pop_front() {
            if !doomed.insert(n) {
                continue;
            }
            for (&child, &parent) in &self.spawned_by {
                if parent == n && !doomed.contains(&child) {
                    queue.push_back(child);
                }
            }
        }
        self.visible.retain(|n| !doomed.contains(n));
        for n in &doomed {
            self.positions.remove(n);
            self.locked.remove(n);
            self.expanded.remove(n);
            self.spawned_by.remove(n);
        }
        self.spawned_by.retain(|child, _| !doomed.contains(child));
        self.expanded.remove(&node);
        self.engine.reheat();
    }

    /// Drag a node to a position; it locks in place (paper: "the dragged
    /// nodes will lock in place but are still draggable if selected").
    pub fn drag(&mut self, node: NodeId, x: f32, y: f32) {
        if self.visible.contains(&node) {
            self.positions.insert(node, Vec2::new(x, y));
            self.locked.insert(node);
            self.engine.reheat();
        }
    }

    /// Unlock a node (re-selected).
    pub fn unlock(&mut self, node: NodeId) {
        self.locked.remove(&node);
    }

    /// The back button: restore the previous view.
    pub fn back(&mut self) -> bool {
        match self.history.pop() {
            Some(previous) => {
                // Bypass show()'s history push.
                let saved = std::mem::take(&mut self.history);
                self.show(previous);
                self.history = saved;
                true
            }
            None => false,
        }
    }

    /// Fetch a random subgraph of about `n` nodes (BFS from a seeded start).
    pub fn random_subgraph(&mut self, n: usize, seed: u64) {
        let all: Vec<NodeId> = self.kg.graph().all_nodes().map(|node| node.id).collect();
        if all.is_empty() {
            self.show(Vec::new());
            return;
        }
        let start = all[(seed as usize) % all.len()];
        let mut picked = Vec::new();
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([start]);
        while let Some(node) = queue.pop_front() {
            if picked.len() >= n {
                break;
            }
            if !seen.insert(node) {
                continue;
            }
            picked.push(node);
            for neighbor in self.kg.graph().neighbors(node) {
                if !seen.contains(&neighbor) {
                    queue.push_back(neighbor);
                }
            }
        }
        // Disconnected graph: fill from the remaining pool.
        let mut cursor = (seed as usize).wrapping_add(1);
        while picked.len() < n.min(all.len()) {
            let candidate = all[cursor % all.len()];
            if seen.insert(candidate) {
                picked.push(candidate);
            }
            cursor += 1;
        }
        self.show(picked);
    }

    /// Run `steps` of the Barnes–Hut layout over the current view.
    pub fn run_layout(&mut self, steps: usize) {
        let index: HashMap<NodeId, usize> = self
            .visible
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        let mut graph = LayoutGraph {
            positions: self
                .visible
                .iter()
                .map(|id| self.positions.get(id).copied().unwrap_or_default())
                .collect(),
            edges: self.view_edges_indices(&index),
            locked: self
                .visible
                .iter()
                .map(|id| self.locked.contains(id))
                .collect(),
        };
        self.engine.run(&mut graph, steps);
        for (i, id) in self.visible.iter().enumerate() {
            self.positions.insert(*id, graph.positions[i]);
        }
    }

    fn view_edges_indices(&self, index: &HashMap<NodeId, usize>) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        for &id in &self.visible {
            for edge in self.kg.graph().outgoing(id) {
                if let (Some(&a), Some(&b)) = (index.get(&edge.from), index.get(&edge.to)) {
                    edges.push((a, b));
                }
            }
        }
        edges
    }

    /// Snapshot the view for rendering.
    pub fn snapshot(&self) -> ViewSnapshot {
        let index: HashMap<NodeId, usize> = self
            .visible
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        let nodes = self
            .visible
            .iter()
            .map(|&id| {
                let node = self.kg.graph().node(id).expect("visible nodes exist");
                let p = self.positions.get(&id).copied().unwrap_or_default();
                ViewNode {
                    id: id.0,
                    label: node.label.clone(),
                    name: node.name().unwrap_or("").to_owned(),
                    x: p.x,
                    y: p.y,
                    locked: self.locked.contains(&id),
                    expanded: self.expanded.contains(&id),
                    degree: self.kg.graph().degree(id),
                }
            })
            .collect();
        let mut edges = Vec::new();
        for &id in &self.visible {
            for edge in self.kg.graph().outgoing(id) {
                if let (Some(&a), Some(&b)) = (index.get(&edge.from), index.get(&edge.to)) {
                    edges.push((a, b, edge.rel_type.clone()));
                }
            }
        }
        ViewSnapshot { nodes, edges }
    }
}

#[cfg(test)]
mod tests {

    use crate::{SecurityKg, SystemConfig, TrainingConfig};
    use kg_corpus::WorldConfig;

    fn built_kg() -> SecurityKg {
        let config = SystemConfig {
            world: WorldConfig::tiny(7),
            articles_per_source: 6,
            training: TrainingConfig {
                articles: 40,
                ..TrainingConfig::default()
            },
            ..SystemConfig::default()
        };
        let mut kg = SecurityKg::bootstrap_without_ner(&config);
        kg.crawl_and_ingest();
        kg
    }

    #[test]
    fn search_expand_collapse_cycle() {
        let kg = built_kg();
        let mut explorer = kg.explorer();
        // Pick the best-connected malware so expansion has work to do.
        let malware = kg
            .graph()
            .nodes_with_label("Malware")
            .into_iter()
            .max_by_key(|&id| kg.graph().degree(id))
            .expect("some malware in the graph");
        assert!(kg.graph().degree(malware) >= 2);
        let name = kg.graph().node(malware).unwrap().name().unwrap().to_owned();
        explorer.search(&name, 5);
        assert!(explorer.visible().contains(&malware), "search for {name:?}");

        // Focus the view on the single node, then expand/collapse it.
        explorer.show(vec![malware]);
        explorer.toggle(malware); // expand
        let after_expand = explorer.visible().len();
        assert!(after_expand > 1);

        explorer.toggle(malware); // collapse
        assert_eq!(explorer.visible(), &[malware]);
    }

    #[test]
    fn collapse_hides_downstream_nodes() {
        let kg = built_kg();
        let mut explorer = kg.explorer();
        // Pick a node with 2-hop structure: a vendor publishes reports which
        // mention entities.
        let vendors = kg.graph().nodes_with_label("CtiVendor");
        let vendor = *vendors
            .iter()
            .max_by_key(|&&v| kg.graph().degree(v))
            .unwrap();
        explorer.show(vec![vendor]);
        explorer.expand(vendor);
        let reports: Vec<_> = explorer.visible()[1..].to_vec();
        assert!(!reports.is_empty());
        explorer.expand(reports[0]);
        assert!(explorer.visible().len() > 1 + reports.len());
        // Collapsing the vendor hides reports AND their expansions.
        explorer.collapse(vendor);
        assert_eq!(explorer.visible(), &[vendor]);
    }

    #[test]
    fn drag_locks_and_layout_respects_it() {
        let kg = built_kg();
        let mut explorer = kg.explorer();
        explorer.random_subgraph(10, 3);
        let node = explorer.visible()[0];
        explorer.drag(node, 123.0, -45.0);
        explorer.run_layout(50);
        let snap = explorer.snapshot();
        let dragged = snap.nodes.iter().find(|n| n.id == node.0).unwrap();
        assert_eq!((dragged.x, dragged.y), (123.0, -45.0));
        assert!(dragged.locked);
        // Other nodes moved.
        assert!(snap.nodes.iter().any(|n| !n.locked));
    }

    #[test]
    fn back_restores_previous_view() {
        let kg = built_kg();
        let mut explorer = kg.explorer();
        explorer.random_subgraph(5, 1);
        let first = explorer.visible().to_vec();
        explorer.random_subgraph(5, 99);
        let second = explorer.visible().to_vec();
        assert_ne!(first, second);
        assert!(explorer.back());
        assert_eq!(explorer.visible(), &first[..]);
        // The initial empty view was never pushed; history is exhausted.
        assert!(!explorer.back());
    }

    #[test]
    fn caps_are_enforced() {
        let kg = built_kg();
        let mut explorer = kg.explorer();
        explorer.max_nodes = 5;
        explorer.max_neighbors = 2;
        explorer.random_subgraph(50, 7);
        assert!(explorer.visible().len() <= 5);
        let node = explorer.visible()[0];
        explorer.expand(node);
        assert!(explorer.visible().len() <= 5);
    }

    #[test]
    fn cypher_view_and_snapshot_json() {
        let kg = built_kg();
        let mut explorer = kg.explorer();
        let n = explorer
            .cypher("MATCH (v:CtiVendor) RETURN v LIMIT 3")
            .unwrap();
        assert!(n > 0);
        explorer.run_layout(10);
        let snap = explorer.snapshot();
        assert_eq!(snap.nodes.len(), n);
        let json = snap.to_json();
        assert!(json.contains("\"label\""));
        // Write queries are rejected on the read-only path.
        assert!(explorer
            .cypher("CREATE (x:Malware {name: 'nope'})")
            .is_err());
    }

    #[test]
    fn random_subgraph_fills_from_disconnected_pool() {
        let kg = built_kg();
        let mut explorer = kg.explorer();
        let total = kg.graph().node_count();
        explorer.random_subgraph(total + 50, 5);
        assert!(explorer.visible().len() <= explorer.max_nodes.min(total));
        assert!(!explorer.visible().is_empty());
    }
}
