//! Golden query tests — the paper's §3 demo scenarios (experiment E8),
//! lifted out of `exp_demo` into deterministic assertions so regressions in
//! the query paths fail CI instead of just skewing a demo printout.
//!
//! Scenario 1: keyword search "wannacry" finds the malware node and its
//!   1-hop neighbourhood is non-trivial.
//! Scenario 2: Cypher lists cozyduke's techniques and finds other actors
//!   sharing them.
//! Scenario 3: `match (n) where n.name = "wannacry" return n` returns
//!   exactly the node scenario 1's keyword search surfaced.

use kg_corpus::WorldConfig;
use securitykg::{SecurityKg, SystemConfig, TrainingConfig};
use std::sync::OnceLock;

/// The E8 world (same seed and density as `exp_demo`), built once for all
/// three scenarios. Gazetteer extraction keeps the build deterministic and
/// fast; the demo binary additionally trains the NER path.
fn demo_kg() -> &'static SecurityKg {
    static KG: OnceLock<SecurityKg> = OnceLock::new();
    KG.get_or_init(|| {
        let mut config = SystemConfig {
            world: WorldConfig {
                malware_count: 40,
                actor_count: 24,
                cve_count: 60,
                campaign_count: 16,
                seed: 0xE8,
            },
            articles_per_source: 60,
            training: TrainingConfig {
                articles: 60,
                ..TrainingConfig::default()
            },
            ..SystemConfig::default()
        };
        config.fusion.alias_groups = kg_corpus::names::MALWARE_ALIASES
            .iter()
            .chain(kg_corpus::names::ACTOR_ALIASES.iter())
            .map(|group| group.iter().map(|s| (*s).to_owned()).collect())
            .collect();
        let mut kg = SecurityKg::bootstrap_without_ner(&config);
        kg.crawl_and_ingest();
        kg
    })
}

#[test]
fn scenario_1_wannacry_keyword_search_reaches_the_malware_node() {
    let kg = demo_kg();
    let hits = kg.keyword_search("wannacry", 10);
    assert!(!hits.is_empty(), "keyword search must surface wannacry");
    let node = kg
        .graph()
        .node_by_name("Malware", "wannacry")
        .expect("E8 world covers wannacry");
    assert!(
        hits.contains(&node),
        "the malware node itself must be among the hits: {hits:?}"
    );
    // The investigation has somewhere to go: the node has outgoing
    // behaviour edges (dropped files, C2 domains, exploited CVEs...).
    let neighbours = kg.graph().outgoing(node);
    assert!(
        neighbours.len() >= 2,
        "wannacry neighbourhood too small: {neighbours:?}"
    );
}

#[test]
fn scenario_2_cozyduke_technique_overlap_via_cypher() {
    let kg = demo_kg();
    assert!(
        kg.graph().node_by_name("ThreatActor", "cozyduke").is_some(),
        "E8 world covers cozyduke"
    );
    let result = kg
        .graph()
        .query_readonly(
            "MATCH (a:ThreatActor {name: 'cozyduke'})-[:USES]->(t:Technique) \
             RETURN t.name ORDER BY t.name",
        )
        .unwrap();
    assert!(
        !result.rows.is_empty(),
        "cozyduke must use at least one technique"
    );
    // Techniques come back sorted and unique (ORDER BY semantics).
    let techniques: Vec<String> = result.rows.iter().map(|r| r[0].to_string()).collect();
    let mut sorted = techniques.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(techniques, sorted, "ORDER BY t.name must sort uniquely");
    // Other actors share techniques with cozyduke, ranked by overlap.
    let twins = kg
        .graph()
        .query_readonly(
            "MATCH (a:ThreatActor {name: 'cozyduke'})-[:USES]->(t:Technique)\
             <-[:USES]-(other:ThreatActor) \
             RETURN other.name, count(t) AS shared ORDER BY count(t) DESC LIMIT 5",
        )
        .unwrap();
    assert!(!twins.rows.is_empty(), "no actor shares a technique");
    let shared: Vec<i64> = twins
        .rows
        .iter()
        .map(|r| r[1].to_string().parse().unwrap())
        .collect();
    assert!(shared.windows(2).all(|w| w[0] >= w[1]), "{shared:?}");
    assert!(shared[0] >= 1);
}

#[test]
fn scenario_3_cypher_and_keyword_search_agree_on_wannacry() {
    let kg = demo_kg();
    let node = kg
        .graph()
        .node_by_name("Malware", "wannacry")
        .expect("E8 world covers wannacry");
    let result = kg
        .graph()
        .query_readonly("match (n) where n.name = \"wannacry\" return n")
        .unwrap();
    assert_eq!(
        result.node_ids(),
        vec![node],
        "Cypher full scan and keyword search must resolve the same node"
    );
}
