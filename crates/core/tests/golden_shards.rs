//! Golden scatter-gather tests — the E8 demo scenarios of
//! `golden_queries.rs` replayed through the sharded serving layer: every
//! answer must be identical at 1 shard and at 4 shards, and both must equal
//! the unsharded snapshot oracle. The deterministic gazetteer build keeps
//! the world (and therefore the expected answers) fixed across runs.

use kg_corpus::WorldConfig;
use securitykg::serve::{KgSnapshot, Query, ShardSet, ShardedServe};
use securitykg::{SecurityKg, SystemConfig, TrainingConfig};
use std::sync::OnceLock;

/// The E8 world — same seed and density as `golden_queries.rs` / `exp_demo`.
fn demo_kg() -> &'static SecurityKg {
    static KG: OnceLock<SecurityKg> = OnceLock::new();
    KG.get_or_init(|| {
        let mut config = SystemConfig {
            world: WorldConfig {
                malware_count: 40,
                actor_count: 24,
                cve_count: 60,
                campaign_count: 16,
                seed: 0xE8,
            },
            articles_per_source: 60,
            training: TrainingConfig {
                articles: 60,
                ..TrainingConfig::default()
            },
            ..SystemConfig::default()
        };
        config.fusion.alias_groups = kg_corpus::names::MALWARE_ALIASES
            .iter()
            .chain(kg_corpus::names::ACTOR_ALIASES.iter())
            .map(|group| group.iter().map(|s| (*s).to_owned()).collect())
            .collect();
        let mut kg = SecurityKg::bootstrap_without_ner(&config);
        kg.crawl_and_ingest();
        kg
    })
}

/// Partition the demo KB into a fresh `shards`-cell server.
fn sharded(kg: &SecurityKg, shards: usize) -> ShardedServe {
    let mut graph = kg.graph().clone();
    let mut set = ShardSet::new(&mut graph, kg.search_index(), shards);
    ShardedServe::new(set.freeze_all(&mut graph, kg.search_index()))
}

/// The E8 demo queries, as serving-layer requests.
fn demo_queries() -> Vec<Query> {
    vec![
        // Scenario 1: the analyst's entry point.
        Query::Search {
            q: "wannacry".into(),
            k: 10,
        },
        Query::Expand {
            name: "wannacry".into(),
            hops: 2,
            cap: 40,
        },
        // Scenario 2: cozyduke's techniques and the actors sharing them.
        Query::Cypher {
            q: "MATCH (a:ThreatActor {name: 'cozyduke'})-[:USES]->(t:Technique) \
                RETURN t.name ORDER BY t.name"
                .into(),
        },
        Query::Cypher {
            q: "MATCH (a:ThreatActor {name: 'cozyduke'})-[:USES]->(t:Technique)\
                <-[:USES]-(other:ThreatActor) \
                RETURN other.name, count(t) AS shared ORDER BY count(t) DESC LIMIT 5"
                .into(),
        },
        // Scenario 3: the full-scan WHERE path.
        Query::Cypher {
            q: "match (n) where n.name = \"wannacry\" return n".into(),
        },
    ]
}

#[test]
fn demo_scenarios_are_identical_at_one_and_four_shards() {
    let kg = demo_kg();
    let oracle = KgSnapshot::build(kg.graph().clone(), kg.search_index().clone());
    let one = sharded(kg, 1);
    let four = sharded(kg, 4);
    for query in demo_queries() {
        let expected = oracle.answer(&query);
        let at_one = one.execute(&query);
        let at_four = four.execute(&query);
        assert_eq!(at_one.answer, expected, "1-shard diverged on {query:?}");
        assert_eq!(at_four.answer, expected, "4-shard diverged on {query:?}");
        // Both partitions carry digest vectors that reassemble the same
        // canonical graph digest.
        assert_eq!(at_one.combined_digest(), oracle.digest());
        assert_eq!(at_four.combined_digest(), oracle.digest());
        assert_eq!(at_one.vector.len(), 1);
        assert_eq!(at_four.vector.len(), 4);
    }
}

#[test]
fn demo_answers_are_nonempty_and_anchored_on_the_expected_entities() {
    let kg = demo_kg();
    let four = sharded(kg, 4);
    let wannacry = kg
        .graph()
        .node_by_name("Malware", "wannacry")
        .expect("E8 world covers wannacry");
    // The search hits include the malware node itself, wherever it shards.
    match four
        .execute(&Query::Search {
            q: "wannacry".into(),
            k: 10,
        })
        .answer
    {
        securitykg::serve::Answer::Nodes(ids) => {
            assert!(ids.contains(&wannacry), "search lost the malware node")
        }
        other => panic!("search answered {other:?}"),
    }
    // Cozyduke's technique list is sorted and unique, as in the unsharded
    // golden test.
    match four
        .execute(&Query::Cypher {
            q: "MATCH (a:ThreatActor {name: 'cozyduke'})-[:USES]->(t:Technique) \
                RETURN t.name ORDER BY t.name"
                .into(),
        })
        .answer
    {
        securitykg::serve::Answer::Rows { rows, .. } => {
            assert!(!rows.is_empty(), "cozyduke must use at least one technique");
            let techniques: Vec<String> = rows.iter().map(|r| r[0].to_string()).collect();
            let mut sorted = techniques.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(techniques, sorted, "ORDER BY t.name must sort uniquely");
        }
        other => panic!("cypher answered {other:?}"),
    }
}
