//! End-to-end determinism suite for the split connector (ISSUE: parallel
//! shard-and-merge graph construction with deterministic deltas).
//!
//! The contract: the final knowledge graph is **byte-identical** — same
//! serialised bytes, hence same fnv1a64 digest — no matter how the work was
//! scheduled. Sequential baseline, pipelined runs with 1/4/8 resolve
//! workers, byte-serialised transport, and a crash-interrupted durable
//! build that replays its journal must all converge on one digest.

use securitykg::corpus::{standard_sources, SimulatedWeb, World, WorldConfig};
use securitykg::crawler::{crawl_all, CrawlState, CrawlerConfig, SchedulerConfig};
use securitykg::extract::RegexNerBaseline;
use securitykg::fusion::ResolverConfig;
use securitykg::ir::RawReport;
use securitykg::ontology::EntityKind;
use securitykg::pipeline::{
    run_pipelined, run_sequential, GraphConnector, IocOnlyExtractor, ParserRegistry, PipelineConfig,
};
use securitykg::{run_durable, DurableOptions, JournalError, SystemConfig, DEFAULT_START_MS};
use std::path::PathBuf;
use std::sync::Arc;

const FOREVER: u64 = u64::MAX / 4;

fn corpus(seed: u64) -> (SimulatedWeb, Vec<RawReport>) {
    let web = SimulatedWeb::new(
        World::generate(WorldConfig::tiny(seed)),
        standard_sources(8),
        seed,
    );
    let mut state = CrawlState::new();
    let (reports, _) = crawl_all(&web, &mut state, &CrawlerConfig::default(), FOREVER);
    (web, reports)
}

/// Gazetteer extractor over the world's curated lists, so the corpus yields
/// real entity mentions (and therefore real fusion work) without CRF
/// training cost.
fn extractor(web: &SimulatedWeb) -> IocOnlyExtractor {
    let curated = web.world().curated_lists(1.0, 0xD1);
    IocOnlyExtractor {
        baseline: Arc::new(RegexNerBaseline::new(vec![
            (EntityKind::Malware, curated.malware),
            (EntityKind::ThreatActor, curated.actors),
            (EntityKind::Technique, curated.techniques),
            (EntityKind::Tool, curated.tools),
            (EntityKind::Software, curated.software),
        ])),
    }
}

/// The schedule-independence digest: the canonical per-element graph digest
/// *and* (strictly stronger) the fnv1a64 of the serialised bytes, asserted
/// mutually consistent so the byte-identity contract survives the digest's
/// move to a commutative per-element scheme.
fn digest(connector: &GraphConnector) -> (u64, u64) {
    let bytes = serde_json::to_vec(&connector.graph).expect("graph serialises");
    (connector.graph.digest(), securitykg::ir::fnv1a64(&bytes))
}

#[test]
fn graph_digest_is_schedule_independent() {
    let (web, reports) = corpus(0xD47);
    let extractor = extractor(&web);
    let registry = ParserRegistry::new();

    let seq = run_sequential(
        reports.clone(),
        &registry,
        &extractor,
        GraphConnector::with_resolver(ResolverConfig::standard()),
        &PipelineConfig::default(),
    );
    let reference = digest(&seq.connector);
    assert!(seq.metrics.connected > 0, "corpus produced no reports");

    for (connect_workers, serialize_transport) in [(1, false), (4, false), (8, false), (4, true)] {
        let mut config = PipelineConfig::default();
        config.workers.connect = connect_workers;
        config.serialize_transport = serialize_transport;
        let out = run_pipelined(
            reports.clone(),
            &registry,
            &extractor,
            GraphConnector::with_resolver(ResolverConfig::standard()),
            &config,
        );
        assert_eq!(
            out.metrics.connected, seq.metrics.connected,
            "connected count diverged at connect={connect_workers} ser={serialize_transport}"
        );
        assert_eq!(
            digest(&out.connector),
            reference,
            "graph digest diverged at connect={connect_workers} ser={serialize_transport}"
        );
        assert_eq!(
            out.connector.canon().len(),
            seq.connector.canon().len(),
            "canon table diverged at connect={connect_workers} ser={serialize_transport}"
        );
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kg-determinism-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A durable build that crashes mid-journal and replays must land on the
/// same digest as an uninterrupted build — recovery goes through
/// `GraphConnector::with_state`, which re-seeds the canon table from the
/// restored graph before the delta path resumes.
#[test]
fn durable_replay_matches_uninterrupted_build() {
    let system = SystemConfig {
        world: WorldConfig::tiny(0xD48),
        articles_per_source: 5,
        seed: 0xD48,
        ..SystemConfig::default()
    };
    let sched = SchedulerConfig::default();
    let until = DEFAULT_START_MS + 2 * 24 * 3_600_000;
    let opts = DurableOptions::default();

    let ref_dir = tmp_dir("ref");
    let reference = run_durable(&system, &sched, &ref_dir, until, &opts).expect("reference run");
    let _ = std::fs::remove_dir_all(&ref_dir);
    assert!(reference.reports_ingested > 0, "reference ingested nothing");

    let dir = tmp_dir("crash");
    let crash = DurableOptions {
        crash_after_records: Some(reference.records_appended / 2),
        crash_torn_tail: true,
        ..DurableOptions::default()
    };
    match run_durable(&system, &sched, &dir, until, &crash) {
        Err(JournalError::InjectedCrash) => {}
        other => panic!("expected injected crash, got {other:?}"),
    }
    let resumed = run_durable(&system, &sched, &dir, until, &opts).expect("resume");
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(resumed.kg_digest, reference.kg_digest);
}
