//! The simulated OSCTI web: an HTTP-like fetch interface over the 42
//! sources, with latency, transient failures, pagination, ad pages and
//! time-based publication.
//!
//! Everything is a pure function of `(seed, url, now)`: no state, no I/O, so
//! a fleet of crawler threads can hammer it concurrently, and generating
//! article 80,000 of a source does not require generating the first 79,999.

use crate::article::ArticleGenerator;
use crate::rng::Rng;
use crate::source::{self, SourceSpec};
use crate::truth::GoldReport;
use crate::world::World;
use kg_ir::FetchStatus;
use serde::{Deserialize, Serialize};

/// Deterministic fault-injection knobs layered on top of each source's
/// built-in transient failure rate. All rates default to zero, so a plain
/// [`SimulatedWeb::new`] behaves exactly as before; the chaos harness turns
/// them up via [`SimulatedWeb::with_faults`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Probability a fetch is answered with 429 + Retry-After.
    #[serde(default)]
    pub rate_limit_rate: f64,
    /// Retry-After the simulated servers attach to a 429.
    #[serde(default)]
    pub retry_after_ms: u64,
    /// Probability a successful body arrives cut off mid-transfer (the
    /// closing `</html>` never arrives).
    #[serde(default)]
    pub truncate_rate: f64,
    /// Probability a successful article body is structurally mangled while
    /// still arriving complete (unclosed tags, zeroed pager totals).
    #[serde(default)]
    pub malform_rate: f64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            rate_limit_rate: 0.0,
            retry_after_ms: 2_000,
            truncate_rate: 0.0,
            malform_rate: 0.0,
        }
    }
}

impl FaultProfile {
    /// Elevated rates for chaos testing: roughly one fetch in four is
    /// degraded somehow.
    pub fn chaos() -> Self {
        FaultProfile {
            rate_limit_rate: 0.10,
            retry_after_ms: 2_000,
            truncate_rate: 0.08,
            malform_rate: 0.10,
        }
    }

    /// True when every rate is zero (the profile injects nothing).
    pub fn is_quiet(&self) -> bool {
        self.rate_limit_rate == 0.0 && self.truncate_rate == 0.0 && self.malform_rate == 0.0
    }
}

/// The outcome of one simulated fetch.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchResponse {
    pub status: FetchStatus,
    /// Page body; empty unless `status` is `Ok`.
    pub body: String,
    /// Simulated service latency. The crawler sleeps this long (or accounts
    /// for it virtually, in the benchmarks' virtual-time mode).
    pub latency_ms: u64,
}

/// The simulated web.
#[derive(Debug)]
pub struct SimulatedWeb {
    world: World,
    sources: Vec<SourceSpec>,
    seed: u64,
    faults: FaultProfile,
}

impl SimulatedWeb {
    /// Build a web over a world with the given sources (no injected faults
    /// beyond each source's own transient failure rate).
    pub fn new(world: World, sources: Vec<SourceSpec>, seed: u64) -> Self {
        Self::with_faults(world, sources, seed, FaultProfile::default())
    }

    /// Build a web with an explicit fault profile layered on every source.
    pub fn with_faults(
        world: World,
        sources: Vec<SourceSpec>,
        seed: u64,
        faults: FaultProfile,
    ) -> Self {
        SimulatedWeb {
            world,
            sources,
            seed,
            faults,
        }
    }

    /// The active fault profile.
    pub fn faults(&self) -> &FaultProfile {
        &self.faults
    }

    /// The source registry.
    pub fn sources(&self) -> &[SourceSpec] {
        &self.sources
    }

    /// The underlying world (for ground-truth access in experiments).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Look up a source by name.
    pub fn source_by_name(&self, name: &str) -> Option<&SourceSpec> {
        self.sources.iter().find(|s| s.name == name)
    }

    /// How many articles of `spec` are published at simulated time `now_ms`.
    pub fn published_count(&self, spec: &SourceSpec, now_ms: u64) -> usize {
        (0..spec.article_count)
            .take_while(|&i| spec.publish_time_ms(i) <= now_ms)
            .count()
    }

    /// Total published articles across all sources at `now_ms`.
    pub fn total_published(&self, now_ms: u64) -> usize {
        self.sources
            .iter()
            .map(|s| self.published_count(s, now_ms))
            .sum()
    }

    /// Whether article `index` of `spec` is an ad/junk page.
    pub fn is_ad(&self, spec: &SourceSpec, index: usize) -> bool {
        let mut rng = Rng::new(self.seed)
            .derive(&spec.name)
            .derive_idx("ad", index as u64);
        rng.chance(spec.ad_rate)
    }

    /// Number of pages article `index` of `spec` spans.
    pub fn page_count(&self, spec: &SourceSpec, index: usize) -> u32 {
        let mut rng = Rng::new(self.seed)
            .derive(&spec.name)
            .derive_idx("pages", index as u64);
        if rng.chance(spec.multipage_prob) {
            2
        } else {
            1
        }
    }

    /// Ground truth for article `index` of source `name` (None for ads).
    pub fn gold(&self, source_name: &str, index: usize) -> Option<GoldReport> {
        let spec = self.source_by_name(source_name)?;
        if self.is_ad(spec, index) {
            return None;
        }
        Some(ArticleGenerator::new(&self.world, self.seed).generate(spec, index))
    }

    /// Fetch a URL at simulated time `now_ms`.
    ///
    /// Failure injection is keyed on `(url, now_ms >> 12)` so an immediate
    /// retry usually fails again but a backed-off retry usually succeeds —
    /// the behaviour the crawler's retry policy is designed for.
    pub fn fetch(&self, url: &str, now_ms: u64) -> FetchResponse {
        let Some((spec, path)) = self.resolve_host(url) else {
            return FetchResponse {
                status: FetchStatus::NotFound,
                body: String::new(),
                latency_ms: 5,
            };
        };

        // Latency draw (deterministic per url+time window).
        let mut lat_rng =
            Rng::new(self.seed ^ kg_ir::fnv1a64(url.as_bytes())).derive_idx("latency", now_ms >> 8);
        let latency_ms = spec.base_latency_ms
            + if spec.latency_jitter_ms > 0 {
                lat_rng.below(spec.latency_jitter_ms as usize + 1) as u64
            } else {
                0
            };

        // Transient failure draw.
        let mut fail_rng =
            Rng::new(self.seed ^ kg_ir::fnv1a64(url.as_bytes())).derive_idx("fail", now_ms >> 12);
        if fail_rng.chance(spec.failure_rate) {
            let status = if fail_rng.chance(0.5) {
                FetchStatus::ServerError
            } else {
                FetchStatus::TimedOut
            };
            return FetchResponse {
                status,
                body: String::new(),
                latency_ms: latency_ms * 3,
            };
        }

        // Injected fault draws, on a separate stream so the profile being
        // quiet leaves every pre-existing draw untouched. Keyed on the same
        // time window as failures: immediate retries hit the same fault,
        // backed-off retries usually clear it.
        let mut chaos_rng =
            Rng::new(self.seed ^ kg_ir::fnv1a64(url.as_bytes())).derive_idx("chaos", now_ms >> 12);
        if chaos_rng.chance(self.faults.rate_limit_rate) {
            return FetchResponse {
                status: FetchStatus::RateLimited {
                    retry_after_ms: self.faults.retry_after_ms,
                },
                body: String::new(),
                latency_ms,
            };
        }

        let body = self.render_path(spec, path, now_ms);
        match body {
            Some(mut b) => {
                if chaos_rng.chance(self.faults.truncate_rate) {
                    truncate_body(&mut b, &mut chaos_rng);
                } else if chaos_rng.chance(self.faults.malform_rate) {
                    b = malform_body(b, &mut chaos_rng);
                }
                FetchResponse {
                    status: FetchStatus::Ok,
                    body: b,
                    latency_ms,
                }
            }
            None => FetchResponse {
                status: FetchStatus::NotFound,
                body: String::new(),
                latency_ms,
            },
        }
    }

    fn resolve_host<'a>(&self, url: &'a str) -> Option<(&SourceSpec, &'a str)> {
        let rest = url.strip_prefix("https://")?;
        let (host, path) = rest.split_once('/').unwrap_or((rest, ""));
        let name = host.strip_suffix(".example")?;
        let spec = self.source_by_name(name)?;
        Some((spec, path))
    }

    fn render_path(&self, spec: &SourceSpec, path: &str, now_ms: u64) -> Option<String> {
        if let Some(query) = path.strip_prefix("index") {
            let page = query
                .strip_prefix("?page=")
                .and_then(|p| p.parse::<usize>().ok())
                .unwrap_or(0);
            return Some(self.render_index_page(spec, page, now_ms));
        }
        if let Some(rest) = path.strip_prefix("reports/") {
            let (key, page) = match rest.split_once("?page=") {
                Some((k, p)) => (k, p.parse::<u32>().ok()?),
                None => (rest, 1),
            };
            let index: usize = key.strip_prefix('r')?.parse().ok()?;
            if index >= spec.article_count || spec.publish_time_ms(index) > now_ms {
                return None;
            }
            if self.is_ad(spec, index) {
                return Some(source::render_ad_page(spec));
            }
            let total_pages = self.page_count(spec, index);
            if page == 0 || page > total_pages {
                return None;
            }
            let gold = ArticleGenerator::new(&self.world, self.seed).generate(spec, index);
            return Some(source::render_article(spec, &gold, page, total_pages));
        }
        None
    }

    fn render_index_page(&self, spec: &SourceSpec, page: usize, now_ms: u64) -> String {
        let published = self.published_count(spec, now_ms);
        // Newest first.
        let start = page * spec.articles_per_index;
        let keys: Vec<String> = (0..published)
            .rev()
            .skip(start)
            .take(spec.articles_per_index)
            .map(|i| format!("r{i}"))
            .collect();
        let has_next = published > start + keys.len();
        source::render_index(spec, &keys, has_next)
    }
}

/// Every rendered page ends with this terminator; a truncated transfer is
/// detectable by its absence.
pub const BODY_TERMINATOR: &str = "</html>";

/// Cut a body off mid-transfer. The cut point lands in the middle half of the
/// body and always removes the closing `</body>\n</html>\n`, which is how the
/// crawler detects the truncation.
fn truncate_body(body: &mut String, rng: &mut Rng) {
    let keep_at_most = body.len().saturating_sub(BODY_TERMINATOR.len() + 9);
    let mut cut = (body.len() / 4 + rng.below(body.len() / 2 + 1)).min(keep_at_most);
    while cut > 0 && !body.is_char_boundary(cut) {
        cut -= 1;
    }
    body.truncate(cut);
}

/// Structurally mangle a body while keeping it "complete" (the terminator
/// survives, so the crawler ships it downstream instead of retrying). The
/// parser and checker stages must cope.
fn malform_body(body: String, rng: &mut Rng) -> String {
    match rng.below(3) {
        // Unclosed tags spliced in before the content div.
        0 => body.replacen(
            "<div class=\"content\">",
            "<div class=\"torn\"><span><div class=\"content\">",
            1,
        ),
        // Pager total zeroed out (claims the report spans zero pages).
        1 if body.contains("data-total=\"") => {
            let mut out = body;
            if let Some(start) = out.find("data-total=\"") {
                let value_start = start + "data-total=\"".len();
                if let Some(len) = out[value_start..].find('"') {
                    out.replace_range(value_start..value_start + len, "0");
                }
            }
            out
        }
        // Stray closing tags jammed in before the end of the document.
        _ => body.replacen("</body>", "</p></td></body>", 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::standard_sources;
    use crate::world::{World, WorldConfig};

    const FOREVER: u64 = u64::MAX / 2;

    fn web() -> SimulatedWeb {
        SimulatedWeb::new(
            World::generate(WorldConfig::tiny(1)),
            standard_sources(30),
            7,
        )
    }

    #[test]
    fn fetch_article_ok() {
        let web = web();
        let spec = &web.sources()[0].clone();
        let url = spec.article_url("r0", 1);
        // Source 0 has failure_rate 0.
        let resp = web.fetch(&url, FOREVER);
        assert_eq!(resp.status, FetchStatus::Ok);
        assert!(resp.body.contains("<h1>"));
        assert!(resp.latency_ms >= spec.base_latency_ms);
    }

    #[test]
    fn fetch_is_deterministic() {
        let web = web();
        let url = web.sources()[0].article_url("r3", 1);
        assert_eq!(web.fetch(&url, 1000), web.fetch(&url, 1000));
    }

    #[test]
    fn unknown_urls_404() {
        let web = web();
        assert_eq!(
            web.fetch("https://nowhere.example/x", FOREVER).status,
            FetchStatus::NotFound
        );
        assert_eq!(
            web.fetch("https://securelist.example/bogus", FOREVER)
                .status,
            FetchStatus::NotFound
        );
        let beyond = web.sources()[0].article_url("r999999", 1);
        assert_eq!(web.fetch(&beyond, FOREVER).status, FetchStatus::NotFound);
    }

    #[test]
    fn unpublished_articles_are_invisible() {
        let web = web();
        let spec = web.sources()[0].clone();
        let url = spec.article_url("r5", 1);
        let before = spec.publish_time_ms(5) - 1;
        assert_eq!(web.fetch(&url, before).status, FetchStatus::NotFound);
        assert_eq!(
            web.fetch(&url, spec.publish_time_ms(5)).status,
            FetchStatus::Ok
        );
    }

    #[test]
    fn index_paginates_newest_first() {
        let web = web();
        let spec = web.sources()[0].clone();
        let body = web.fetch(&spec.index_url(0), FOREVER).body;
        let newest = format!("/reports/r{}", spec.article_count - 1);
        assert!(body.contains(&newest), "{body}");
        // Page past the end lists nothing.
        let last_page = spec.article_count / spec.articles_per_index + 1;
        let empty = web.fetch(&spec.index_url(last_page), FOREVER).body;
        assert!(!empty.contains("/reports/"));
    }

    #[test]
    fn published_count_grows_with_time() {
        let web = web();
        let spec = web.sources()[0].clone();
        let t0 = spec.publish_time_ms(0);
        assert_eq!(web.published_count(&spec, t0.saturating_sub(1)), 0);
        assert_eq!(web.published_count(&spec, t0), 1);
        assert!(web.published_count(&spec, FOREVER) == spec.article_count);
        assert!(web.total_published(FOREVER) > 0);
    }

    #[test]
    fn failures_eventually_clear_with_backoff() {
        let web = web();
        // Pick a source with a nonzero failure rate (index 3 → 0.08).
        let spec = web.sources()[3].clone();
        assert!(spec.failure_rate > 0.0);
        let url = spec.article_url("r0", 1);
        let mut saw_ok = false;
        let mut t = FOREVER;
        for _ in 0..50 {
            let resp = web.fetch(&url, t);
            if resp.status == FetchStatus::Ok {
                saw_ok = true;
                break;
            }
            t += 1 << 13; // back off past the failure window
        }
        assert!(saw_ok);
    }

    #[test]
    fn multipage_articles_serve_each_page() {
        let web = web();
        // Find a multipage article on a source with multipage_prob > 0 and no
        // failures.
        for spec in web.sources() {
            if spec.multipage_prob == 0.0 || spec.failure_rate > 0.0 {
                continue;
            }
            for i in 0..spec.article_count {
                if web.page_count(spec, i) == 2 && !web.is_ad(spec, i) {
                    let key = format!("r{i}");
                    let p1 = web.fetch(&spec.article_url(&key, 1), FOREVER);
                    let p2 = web.fetch(&spec.article_url(&key, 2), FOREVER);
                    assert_eq!(p1.status, FetchStatus::Ok);
                    assert_eq!(p2.status, FetchStatus::Ok);
                    assert!(p1.body.contains("data-total=\"2\""));
                    let p3 = web.fetch(&spec.article_url(&key, 3), FOREVER);
                    assert_eq!(p3.status, FetchStatus::NotFound);
                    return;
                }
            }
        }
        panic!("no multipage article found");
    }

    fn chaos_web() -> SimulatedWeb {
        SimulatedWeb::with_faults(
            World::generate(WorldConfig::tiny(1)),
            standard_sources(30),
            7,
            FaultProfile::chaos(),
        )
    }

    #[test]
    fn quiet_profile_changes_nothing() {
        let plain = web();
        let quiet = SimulatedWeb::with_faults(
            World::generate(WorldConfig::tiny(1)),
            standard_sources(30),
            7,
            FaultProfile::default(),
        );
        assert!(quiet.faults().is_quiet());
        for spec in plain.sources().iter().take(8) {
            for page in [spec.index_url(0), spec.article_url("r0", 1)] {
                assert_eq!(plain.fetch(&page, FOREVER), quiet.fetch(&page, FOREVER));
            }
        }
    }

    #[test]
    fn chaos_profile_injects_each_fault_kind() {
        let web = chaos_web();
        let (mut rate_limited, mut truncated, mut malformed) = (0usize, 0usize, 0usize);
        for spec in web.sources() {
            for i in 0..spec.article_count.min(20) {
                let url = spec.article_url(&format!("r{i}"), 1);
                let resp = web.fetch(&url, FOREVER);
                match resp.status {
                    FetchStatus::RateLimited { retry_after_ms } => {
                        assert_eq!(retry_after_ms, web.faults().retry_after_ms);
                        assert!(resp.body.is_empty());
                        rate_limited += 1;
                    }
                    FetchStatus::Ok if !resp.body.contains(BODY_TERMINATOR) => truncated += 1,
                    FetchStatus::Ok
                        if resp.body.contains("class=\"torn\"")
                            || resp.body.contains("data-total=\"0\"")
                            || resp.body.contains("</p></td></body>") =>
                    {
                        assert!(resp.body.ends_with("</html>\n"));
                        malformed += 1;
                    }
                    _ => {}
                }
            }
        }
        assert!(rate_limited > 0, "no rate limits injected");
        assert!(truncated > 0, "no truncations injected");
        assert!(malformed > 0, "no malformations injected");
    }

    #[test]
    fn injected_faults_clear_in_later_windows() {
        let web = chaos_web();
        let spec = web.sources()[0].clone();
        for i in 0..spec.article_count.min(30) {
            let url = spec.article_url(&format!("r{i}"), 1);
            let mut t = FOREVER;
            let mut clean = false;
            for _ in 0..60 {
                let resp = web.fetch(&url, t);
                if resp.status == FetchStatus::Ok && resp.body.contains(BODY_TERMINATOR) {
                    clean = true;
                    break;
                }
                t += 1 << 13; // next fault window
            }
            assert!(clean, "article {i} never served a complete body");
        }
    }

    #[test]
    fn faulty_fetch_is_still_deterministic() {
        let web = chaos_web();
        for spec in web.sources().iter().take(6) {
            let url = spec.article_url("r1", 1);
            assert_eq!(web.fetch(&url, 123_456), web.fetch(&url, 123_456));
        }
    }

    #[test]
    fn ad_pages_have_no_gold() {
        let web = web();
        for spec in web.sources() {
            if spec.ad_rate == 0.0 {
                continue;
            }
            for i in 0..spec.article_count.min(100) {
                if web.is_ad(spec, i) {
                    assert!(web.gold(&spec.name, i).is_none());
                    let body = web.fetch(&spec.article_url(&format!("r{i}"), 1), FOREVER);
                    if body.status == FetchStatus::Ok {
                        assert!(body.body.contains("class=\"ad\""));
                    }
                    return;
                }
            }
        }
        panic!("no ad page found");
    }
}
