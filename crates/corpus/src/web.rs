//! The simulated OSCTI web: an HTTP-like fetch interface over the 42
//! sources, with latency, transient failures, pagination, ad pages and
//! time-based publication.
//!
//! Everything is a pure function of `(seed, url, now)`: no state, no I/O, so
//! a fleet of crawler threads can hammer it concurrently, and generating
//! article 80,000 of a source does not require generating the first 79,999.

use crate::article::ArticleGenerator;
use crate::rng::Rng;
use crate::source::{self, SourceSpec};
use crate::truth::GoldReport;
use crate::world::World;
use kg_ir::FetchStatus;

/// The outcome of one simulated fetch.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchResponse {
    pub status: FetchStatus,
    /// Page body; empty unless `status` is `Ok`.
    pub body: String,
    /// Simulated service latency. The crawler sleeps this long (or accounts
    /// for it virtually, in the benchmarks' virtual-time mode).
    pub latency_ms: u64,
}

/// The simulated web.
#[derive(Debug)]
pub struct SimulatedWeb {
    world: World,
    sources: Vec<SourceSpec>,
    seed: u64,
}

impl SimulatedWeb {
    /// Build a web over a world with the given sources.
    pub fn new(world: World, sources: Vec<SourceSpec>, seed: u64) -> Self {
        SimulatedWeb {
            world,
            sources,
            seed,
        }
    }

    /// The source registry.
    pub fn sources(&self) -> &[SourceSpec] {
        &self.sources
    }

    /// The underlying world (for ground-truth access in experiments).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Look up a source by name.
    pub fn source_by_name(&self, name: &str) -> Option<&SourceSpec> {
        self.sources.iter().find(|s| s.name == name)
    }

    /// How many articles of `spec` are published at simulated time `now_ms`.
    pub fn published_count(&self, spec: &SourceSpec, now_ms: u64) -> usize {
        (0..spec.article_count)
            .take_while(|&i| spec.publish_time_ms(i) <= now_ms)
            .count()
    }

    /// Total published articles across all sources at `now_ms`.
    pub fn total_published(&self, now_ms: u64) -> usize {
        self.sources
            .iter()
            .map(|s| self.published_count(s, now_ms))
            .sum()
    }

    /// Whether article `index` of `spec` is an ad/junk page.
    pub fn is_ad(&self, spec: &SourceSpec, index: usize) -> bool {
        let mut rng = Rng::new(self.seed)
            .derive(&spec.name)
            .derive_idx("ad", index as u64);
        rng.chance(spec.ad_rate)
    }

    /// Number of pages article `index` of `spec` spans.
    pub fn page_count(&self, spec: &SourceSpec, index: usize) -> u32 {
        let mut rng = Rng::new(self.seed)
            .derive(&spec.name)
            .derive_idx("pages", index as u64);
        if rng.chance(spec.multipage_prob) {
            2
        } else {
            1
        }
    }

    /// Ground truth for article `index` of source `name` (None for ads).
    pub fn gold(&self, source_name: &str, index: usize) -> Option<GoldReport> {
        let spec = self.source_by_name(source_name)?;
        if self.is_ad(spec, index) {
            return None;
        }
        Some(ArticleGenerator::new(&self.world, self.seed).generate(spec, index))
    }

    /// Fetch a URL at simulated time `now_ms`.
    ///
    /// Failure injection is keyed on `(url, now_ms >> 12)` so an immediate
    /// retry usually fails again but a backed-off retry usually succeeds —
    /// the behaviour the crawler's retry policy is designed for.
    pub fn fetch(&self, url: &str, now_ms: u64) -> FetchResponse {
        let Some((spec, path)) = self.resolve_host(url) else {
            return FetchResponse {
                status: FetchStatus::NotFound,
                body: String::new(),
                latency_ms: 5,
            };
        };

        // Latency draw (deterministic per url+time window).
        let mut lat_rng =
            Rng::new(self.seed ^ kg_ir::fnv1a64(url.as_bytes())).derive_idx("latency", now_ms >> 8);
        let latency_ms = spec.base_latency_ms
            + if spec.latency_jitter_ms > 0 {
                lat_rng.below(spec.latency_jitter_ms as usize + 1) as u64
            } else {
                0
            };

        // Transient failure draw.
        let mut fail_rng =
            Rng::new(self.seed ^ kg_ir::fnv1a64(url.as_bytes())).derive_idx("fail", now_ms >> 12);
        if fail_rng.chance(spec.failure_rate) {
            let status = if fail_rng.chance(0.5) {
                FetchStatus::ServerError
            } else {
                FetchStatus::TimedOut
            };
            return FetchResponse {
                status,
                body: String::new(),
                latency_ms: latency_ms * 3,
            };
        }

        let body = self.render_path(spec, path, now_ms);
        match body {
            Some(b) => FetchResponse {
                status: FetchStatus::Ok,
                body: b,
                latency_ms,
            },
            None => FetchResponse {
                status: FetchStatus::NotFound,
                body: String::new(),
                latency_ms,
            },
        }
    }

    fn resolve_host<'a>(&self, url: &'a str) -> Option<(&SourceSpec, &'a str)> {
        let rest = url.strip_prefix("https://")?;
        let (host, path) = rest.split_once('/').unwrap_or((rest, ""));
        let name = host.strip_suffix(".example")?;
        let spec = self.source_by_name(name)?;
        Some((spec, path))
    }

    fn render_path(&self, spec: &SourceSpec, path: &str, now_ms: u64) -> Option<String> {
        if let Some(query) = path.strip_prefix("index") {
            let page = query
                .strip_prefix("?page=")
                .and_then(|p| p.parse::<usize>().ok())
                .unwrap_or(0);
            return Some(self.render_index_page(spec, page, now_ms));
        }
        if let Some(rest) = path.strip_prefix("reports/") {
            let (key, page) = match rest.split_once("?page=") {
                Some((k, p)) => (k, p.parse::<u32>().ok()?),
                None => (rest, 1),
            };
            let index: usize = key.strip_prefix('r')?.parse().ok()?;
            if index >= spec.article_count || spec.publish_time_ms(index) > now_ms {
                return None;
            }
            if self.is_ad(spec, index) {
                return Some(source::render_ad_page(spec));
            }
            let total_pages = self.page_count(spec, index);
            if page == 0 || page > total_pages {
                return None;
            }
            let gold = ArticleGenerator::new(&self.world, self.seed).generate(spec, index);
            return Some(source::render_article(spec, &gold, page, total_pages));
        }
        None
    }

    fn render_index_page(&self, spec: &SourceSpec, page: usize, now_ms: u64) -> String {
        let published = self.published_count(spec, now_ms);
        // Newest first.
        let start = page * spec.articles_per_index;
        let keys: Vec<String> = (0..published)
            .rev()
            .skip(start)
            .take(spec.articles_per_index)
            .map(|i| format!("r{i}"))
            .collect();
        let has_next = published > start + keys.len();
        source::render_index(spec, &keys, has_next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::standard_sources;
    use crate::world::{World, WorldConfig};

    const FOREVER: u64 = u64::MAX / 2;

    fn web() -> SimulatedWeb {
        SimulatedWeb::new(
            World::generate(WorldConfig::tiny(1)),
            standard_sources(30),
            7,
        )
    }

    #[test]
    fn fetch_article_ok() {
        let web = web();
        let spec = &web.sources()[0].clone();
        let url = spec.article_url("r0", 1);
        // Source 0 has failure_rate 0.
        let resp = web.fetch(&url, FOREVER);
        assert_eq!(resp.status, FetchStatus::Ok);
        assert!(resp.body.contains("<h1>"));
        assert!(resp.latency_ms >= spec.base_latency_ms);
    }

    #[test]
    fn fetch_is_deterministic() {
        let web = web();
        let url = web.sources()[0].article_url("r3", 1);
        assert_eq!(web.fetch(&url, 1000), web.fetch(&url, 1000));
    }

    #[test]
    fn unknown_urls_404() {
        let web = web();
        assert_eq!(
            web.fetch("https://nowhere.example/x", FOREVER).status,
            FetchStatus::NotFound
        );
        assert_eq!(
            web.fetch("https://securelist.example/bogus", FOREVER)
                .status,
            FetchStatus::NotFound
        );
        let beyond = web.sources()[0].article_url("r999999", 1);
        assert_eq!(web.fetch(&beyond, FOREVER).status, FetchStatus::NotFound);
    }

    #[test]
    fn unpublished_articles_are_invisible() {
        let web = web();
        let spec = web.sources()[0].clone();
        let url = spec.article_url("r5", 1);
        let before = spec.publish_time_ms(5) - 1;
        assert_eq!(web.fetch(&url, before).status, FetchStatus::NotFound);
        assert_eq!(
            web.fetch(&url, spec.publish_time_ms(5)).status,
            FetchStatus::Ok
        );
    }

    #[test]
    fn index_paginates_newest_first() {
        let web = web();
        let spec = web.sources()[0].clone();
        let body = web.fetch(&spec.index_url(0), FOREVER).body;
        let newest = format!("/reports/r{}", spec.article_count - 1);
        assert!(body.contains(&newest), "{body}");
        // Page past the end lists nothing.
        let last_page = spec.article_count / spec.articles_per_index + 1;
        let empty = web.fetch(&spec.index_url(last_page), FOREVER).body;
        assert!(!empty.contains("/reports/"));
    }

    #[test]
    fn published_count_grows_with_time() {
        let web = web();
        let spec = web.sources()[0].clone();
        let t0 = spec.publish_time_ms(0);
        assert_eq!(web.published_count(&spec, t0.saturating_sub(1)), 0);
        assert_eq!(web.published_count(&spec, t0), 1);
        assert!(web.published_count(&spec, FOREVER) == spec.article_count);
        assert!(web.total_published(FOREVER) > 0);
    }

    #[test]
    fn failures_eventually_clear_with_backoff() {
        let web = web();
        // Pick a source with a nonzero failure rate (index 3 → 0.08).
        let spec = web.sources()[3].clone();
        assert!(spec.failure_rate > 0.0);
        let url = spec.article_url("r0", 1);
        let mut saw_ok = false;
        let mut t = FOREVER;
        for _ in 0..50 {
            let resp = web.fetch(&url, t);
            if resp.status == FetchStatus::Ok {
                saw_ok = true;
                break;
            }
            t += 1 << 13; // back off past the failure window
        }
        assert!(saw_ok);
    }

    #[test]
    fn multipage_articles_serve_each_page() {
        let web = web();
        // Find a multipage article on a source with multipage_prob > 0 and no
        // failures.
        for spec in web.sources() {
            if spec.multipage_prob == 0.0 || spec.failure_rate > 0.0 {
                continue;
            }
            for i in 0..spec.article_count {
                if web.page_count(spec, i) == 2 && !web.is_ad(spec, i) {
                    let key = format!("r{i}");
                    let p1 = web.fetch(&spec.article_url(&key, 1), FOREVER);
                    let p2 = web.fetch(&spec.article_url(&key, 2), FOREVER);
                    assert_eq!(p1.status, FetchStatus::Ok);
                    assert_eq!(p2.status, FetchStatus::Ok);
                    assert!(p1.body.contains("data-total=\"2\""));
                    let p3 = web.fetch(&spec.article_url(&key, 3), FOREVER);
                    assert_eq!(p3.status, FetchStatus::NotFound);
                    return;
                }
            }
        }
        panic!("no multipage article found");
    }

    #[test]
    fn ad_pages_have_no_gold() {
        let web = web();
        for spec in web.sources() {
            if spec.ad_rate == 0.0 {
                continue;
            }
            for i in 0..spec.article_count.min(100) {
                if web.is_ad(spec, i) {
                    assert!(web.gold(&spec.name, i).is_none());
                    let body = web.fetch(&spec.article_url(&format!("r{i}"), 1), FOREVER);
                    if body.status == FetchStatus::Ok {
                        assert!(body.body.contains("class=\"ad\""));
                    }
                    return;
                }
            }
        }
        panic!("no ad page found");
    }
}
