//! The registry of simulated OSCTI sources and their HTML rendering.
//!
//! The paper's crawler framework covers "40+ major security websites ...
//! threat encyclopedias, blogs, security news". This module defines 42
//! sources with distinct page-template families, publication rates, latency
//! and failure characteristics, and renders articles into each source's HTML
//! dialect. Source-dependent parsers in `kg-pipeline` invert exactly these
//! templates.

use crate::truth::GoldReport;
use kg_ir::SourceId;
use serde::{Deserialize, Serialize};

/// The 42 CTI vendor names behind the simulated sources.
pub const VENDOR_NAMES: [&str; 42] = [
    "securelist",
    "threatpost",
    "krebsonsec",
    "malwarebytes-lab",
    "talos-intel",
    "unit42",
    "mandiant-blog",
    "recordedfuture",
    "proofpoint-blog",
    "sophos-news",
    "eset-welivesec",
    "trendmicro-blog",
    "mcafee-labs",
    "symantec-blog",
    "fireeye-blog",
    "crowdstrike-blog",
    "sentinelone-labs",
    "checkpoint-research",
    "fortiguard-labs",
    "paloalto-blog",
    "cisco-psirt",
    "msrc-advisories",
    "us-cert-alerts",
    "cisa-advisories",
    "nvd-feed",
    "mitre-notes",
    "sans-isc",
    "bleeping-computer",
    "hacker-news-sec",
    "dark-reading",
    "security-week",
    "threat-encyclopedia-a",
    "threat-encyclopedia-b",
    "virus-bulletin",
    "abuse-ch",
    "phishtank-feed",
    "spamhaus-news",
    "team-cymru",
    "shadowserver",
    "digital-shadows",
    "intel471-blog",
    "flashpoint-intel",
];

/// What kind of publication a source is (affects category mix and style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SourceKind {
    ThreatEncyclopedia,
    VendorBlog,
    SecurityNews,
    AdvisoryFeed,
    ResearchPortal,
}

/// The HTML dialect a source renders articles in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TemplateStyle {
    /// Metadata in a `<table class="meta">`, body in `<p>` tags.
    MetaTable,
    /// Metadata in a `<dl>` definition list.
    DefinitionList,
    /// No structured metadata; pure article.
    PlainArticle,
    /// News style: teaser `<div class="lede">` then body paragraphs.
    NewsTeaser,
}

/// Full specification of one simulated source.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SourceSpec {
    pub id: SourceId,
    /// Vendor / site name; doubles as the URL host stem.
    pub name: String,
    pub kind: SourceKind,
    pub style: TemplateStyle,
    /// Total number of articles the source will ever publish.
    pub article_count: usize,
    /// Articles listed per index page.
    pub articles_per_index: usize,
    /// Probability an article spans two pages.
    pub multipage_prob: f64,
    /// Mean simulated fetch latency.
    pub base_latency_ms: u64,
    /// Uniform jitter added to latency.
    pub latency_jitter_ms: u64,
    /// Probability a fetch fails transiently (5xx / timeout).
    pub failure_rate: f64,
    /// Probability a listed page is an ad / empty page the checker must drop.
    pub ad_rate: f64,
    /// Relative weights for (malware, vulnerability, attack) reports.
    pub category_mix: [f64; 3],
    /// Milliseconds between consecutive article publications.
    pub publish_interval_ms: u64,
}

impl SourceSpec {
    /// Base URL of the source.
    pub fn base_url(&self) -> String {
        format!("https://{}.example", self.name)
    }

    /// URL of index page `page` (0-based).
    pub fn index_url(&self, page: usize) -> String {
        format!("{}/index?page={}", self.base_url(), page)
    }

    /// URL of article `key`, page `page` (1-based).
    pub fn article_url(&self, key: &str, page: u32) -> String {
        if page <= 1 {
            format!("{}/reports/{}", self.base_url(), key)
        } else {
            format!("{}/reports/{}?page={}", self.base_url(), key, page)
        }
    }

    /// Publication timestamp of article `index` (simulated epoch ms).
    pub fn publish_time_ms(&self, index: usize) -> u64 {
        1_500_000_000_000 + index as u64 * self.publish_interval_ms
    }
}

/// Build the standard 42-source registry.
///
/// `articles_per_source` scales the corpus; the per-source counts vary ±50%
/// around it deterministically so sources are heterogeneous.
pub fn standard_sources(articles_per_source: usize) -> Vec<SourceSpec> {
    VENDOR_NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let kind = match i % 5 {
                0 => SourceKind::ThreatEncyclopedia,
                1 => SourceKind::VendorBlog,
                2 => SourceKind::SecurityNews,
                3 => SourceKind::AdvisoryFeed,
                _ => SourceKind::ResearchPortal,
            };
            let style = match i % 4 {
                0 => TemplateStyle::MetaTable,
                1 => TemplateStyle::DefinitionList,
                2 => TemplateStyle::PlainArticle,
                _ => TemplateStyle::NewsTeaser,
            };
            let category_mix = match kind {
                SourceKind::ThreatEncyclopedia => [0.7, 0.1, 0.2],
                SourceKind::VendorBlog => [0.5, 0.2, 0.3],
                SourceKind::SecurityNews => [0.4, 0.2, 0.4],
                SourceKind::AdvisoryFeed => [0.1, 0.8, 0.1],
                SourceKind::ResearchPortal => [0.3, 0.3, 0.4],
            };
            // Deterministic heterogeneity from the index.
            let wobble = |base: usize, i: usize| base / 2 + (i * 7919) % base.max(1);
            SourceSpec {
                id: SourceId(i as u32),
                name: (*name).to_owned(),
                kind,
                style,
                article_count: wobble(articles_per_source.max(2), i).max(1),
                articles_per_index: 10 + (i % 4) * 5,
                multipage_prob: [0.0, 0.1, 0.25][i % 3],
                base_latency_ms: 20 + (i as u64 % 7) * 15,
                latency_jitter_ms: 10 + (i as u64 % 5) * 10,
                failure_rate: [0.0, 0.01, 0.03, 0.08][i % 4],
                ad_rate: [0.0, 0.05, 0.1][i % 3],
                category_mix,
                publish_interval_ms: 3_600_000 + (i as u64 % 9) * 600_000,
            }
        })
        .collect()
}

/// Escape the five XML-special characters.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            other => out.push(other),
        }
    }
    out
}

/// Render one page of an article in the source's HTML dialect.
///
/// `page` is 1-based; `total_pages` ≥ 1. The body paragraphs are split
/// contiguously across pages; structured metadata appears on page 1 only.
pub fn render_article(spec: &SourceSpec, gold: &GoldReport, page: u32, total_pages: u32) -> String {
    let paragraphs: Vec<&str> = gold.text.split('\n').collect();
    let per_page = paragraphs.len().div_ceil(total_pages as usize).max(1);
    let start = (page as usize - 1) * per_page;
    let end = (start + per_page).min(paragraphs.len());
    let page_paragraphs = if start < paragraphs.len() {
        &paragraphs[start..end]
    } else {
        &[]
    };

    let mut html = String::with_capacity(2048);
    html.push_str("<!DOCTYPE html>\n<html>\n<head>\n<title>");
    html.push_str(&escape(&gold.title));
    html.push_str("</title>\n</head>\n<body>\n");
    html.push_str(&format!("<h1>{}</h1>\n", escape(&gold.title)));
    html.push_str(&format!(
        "<span class=\"category\">{}</span>\n",
        gold.category
    ));

    if page == 1 {
        match spec.style {
            TemplateStyle::MetaTable => {
                if !gold.structured.is_empty() {
                    html.push_str("<table class=\"meta\">\n");
                    for (k, v, _) in &gold.structured {
                        html.push_str(&format!(
                            "<tr><th>{}</th><td>{}</td></tr>\n",
                            escape(k),
                            escape(v)
                        ));
                    }
                    html.push_str("</table>\n");
                }
            }
            TemplateStyle::DefinitionList => {
                if !gold.structured.is_empty() {
                    html.push_str("<dl class=\"meta\">\n");
                    for (k, v, _) in &gold.structured {
                        html.push_str(&format!("<dt>{}</dt><dd>{}</dd>\n", escape(k), escape(v)));
                    }
                    html.push_str("</dl>\n");
                }
            }
            TemplateStyle::NewsTeaser => {
                html.push_str("<div class=\"lede\">Breaking analysis from our desk.</div>\n");
            }
            TemplateStyle::PlainArticle => {}
        }
    }

    html.push_str("<div class=\"content\">\n");
    for p in page_paragraphs {
        html.push_str(&format!("<p>{}</p>\n", escape(p)));
    }
    html.push_str("</div>\n");

    if total_pages > 1 {
        html.push_str(&format!(
            "<div class=\"pager\" data-page=\"{page}\" data-total=\"{total_pages}\"></div>\n"
        ));
    }
    html.push_str("</body>\n</html>\n");
    html
}

/// Render an index page listing article links, newest first.
pub fn render_index(spec: &SourceSpec, keys_newest_first: &[String], has_next: bool) -> String {
    let mut html = String::with_capacity(1024);
    html.push_str("<!DOCTYPE html>\n<html>\n<head>\n<title>");
    html.push_str(&escape(&spec.name));
    html.push_str(" index</title>\n</head>\n<body>\n<ul class=\"listing\">\n");
    for key in keys_newest_first {
        html.push_str(&format!(
            "<li><a href=\"/reports/{}\">{}</a></li>\n",
            escape(key),
            escape(key)
        ));
    }
    html.push_str("</ul>\n");
    if has_next {
        html.push_str("<a class=\"next\" href=\"?page=next\">older</a>\n");
    }
    html.push_str("</body>\n</html>\n");
    html
}

/// Render an ad / junk page (the checker stage must screen these out).
pub fn render_ad_page(spec: &SourceSpec) -> String {
    format!(
        "<!DOCTYPE html>\n<html>\n<head>\n<title>{} partners</title>\n</head>\n<body>\n\
         <div class=\"ad\">Sponsored content</div>\n<div class=\"content\">\n</div>\n\
         </body>\n</html>\n",
        escape(&spec.name)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_ontology::ReportCategory;

    #[test]
    fn registry_has_42_heterogeneous_sources() {
        let sources = standard_sources(100);
        assert_eq!(sources.len(), 42);
        let styles: std::collections::HashSet<_> =
            sources.iter().map(|s| format!("{:?}", s.style)).collect();
        assert_eq!(styles.len(), 4);
        let names: std::collections::HashSet<_> = sources.iter().map(|s| &s.name).collect();
        assert_eq!(names.len(), 42);
        for s in &sources {
            assert!(s.article_count >= 1);
            assert!(s.articles_per_index >= 10);
        }
    }

    #[test]
    fn urls_compose() {
        let s = &standard_sources(10)[0];
        assert_eq!(s.index_url(2), "https://securelist.example/index?page=2");
        assert_eq!(
            s.article_url("r5", 1),
            "https://securelist.example/reports/r5"
        );
        assert_eq!(
            s.article_url("r5", 2),
            "https://securelist.example/reports/r5?page=2"
        );
    }

    fn tiny_gold() -> GoldReport {
        GoldReport {
            key: "r0".into(),
            category: ReportCategory::Malware,
            title: "A <test> & title".into(),
            text: "Para one.\nPara two.\nPara three.".into(),
            mentions: Vec::new(),
            relations: Vec::new(),
            structured: vec![("family".into(), "emotet".into(), None)],
        }
    }

    #[test]
    fn render_escapes_and_paginates() {
        let sources = standard_sources(10);
        let meta_source = sources
            .iter()
            .find(|s| s.style == TemplateStyle::MetaTable)
            .unwrap();
        let gold = tiny_gold();
        let p1 = render_article(meta_source, &gold, 1, 2);
        assert!(p1.contains("&lt;test&gt; &amp; title"));
        assert!(p1.contains("<table class=\"meta\">"));
        assert!(p1.contains("<p>Para one.</p>"));
        assert!(!p1.contains("Para three"));
        let p2 = render_article(meta_source, &gold, 2, 2);
        assert!(p2.contains("Para three"));
        assert!(
            !p2.contains("<table class=\"meta\">"),
            "meta only on page 1"
        );
    }

    #[test]
    fn all_styles_render_all_paragraphs_single_page() {
        let gold = tiny_gold();
        for spec in standard_sources(10).iter().take(8) {
            let html = render_article(spec, &gold, 1, 1);
            for para in gold.text.split('\n') {
                assert!(html.contains(&format!("<p>{para}</p>")), "{:?}", spec.style);
            }
        }
    }

    #[test]
    fn index_lists_links() {
        let s = &standard_sources(10)[1];
        let html = render_index(s, &["r9".into(), "r8".into()], true);
        assert!(html.contains("href=\"/reports/r9\""));
        assert!(html.contains("class=\"next\""));
        let last = render_index(s, &["r0".into()], false);
        assert!(!last.contains("class=\"next\""));
    }

    #[test]
    fn publish_times_increase() {
        let s = &standard_sources(10)[0];
        assert!(s.publish_time_ms(1) > s.publish_time_ms(0));
    }
}
