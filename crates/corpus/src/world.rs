//! The threat universe: a deterministic population of malware families,
//! threat actors, vulnerabilities and their behaviours.
//!
//! Every article the synthetic web serves is generated *about* an entity of
//! this world, so facts are globally consistent: two different sources
//! writing about `wannacry` mention the same dropped files, C2 domains and
//! attributed actor — which is exactly the property the knowledge graph's
//! merge step (§2.5) exploits.

use crate::names;
use crate::rng::Rng;
use kg_ontology::EntityKind;
use serde::{Deserialize, Serialize};

/// World generation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    pub malware_count: usize,
    pub actor_count: usize,
    pub cve_count: usize,
    pub campaign_count: usize,
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            malware_count: 120,
            actor_count: 40,
            cve_count: 150,
            campaign_count: 30,
            seed: 0xC0FF_EE00,
        }
    }
}

impl WorldConfig {
    /// A small world for fast unit tests.
    pub fn tiny(seed: u64) -> Self {
        WorldConfig {
            malware_count: 12,
            actor_count: 6,
            cve_count: 10,
            campaign_count: 4,
            seed,
        }
    }
}

/// One malware family and its behavioural profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MalwareProfile {
    pub name: String,
    /// Vendor aliases (first entry is `name`).
    pub aliases: Vec<String>,
    pub dropped_files: Vec<String>,
    pub file_paths: Vec<String>,
    pub domains: Vec<String>,
    pub ips: Vec<String>,
    pub urls: Vec<String>,
    pub emails: Vec<String>,
    pub registry_keys: Vec<String>,
    /// (hash kind, digest) pairs identifying samples.
    pub hashes: Vec<(EntityKind, String)>,
    /// Indices into [`World::cves`].
    pub cves: Vec<usize>,
    /// Indices into [`World::techniques`].
    pub techniques: Vec<usize>,
    /// Indices into [`World::tools`].
    pub tools: Vec<usize>,
    /// Indices into [`World::software`].
    pub target_software: Vec<usize>,
    /// Index into [`World::actors`], if attributed.
    pub actor: Option<usize>,
    /// Index into [`World::campaigns`], if part of one.
    pub campaign: Option<usize>,
    /// Whether the family encrypts files (ransomware).
    pub is_ransomware: bool,
}

/// One threat actor and its tradecraft.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActorProfile {
    pub name: String,
    pub aliases: Vec<String>,
    pub techniques: Vec<usize>,
    pub tools: Vec<usize>,
    pub campaigns: Vec<usize>,
    pub target_software: Vec<usize>,
}

/// One vulnerability.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CveProfile {
    pub id: String,
    /// Index into [`World::software`].
    pub affects: usize,
    /// Named vulnerability ("eternalblue"), occasionally.
    pub nickname: Option<String>,
}

/// The full threat universe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct World {
    pub config: WorldConfig,
    pub malware: Vec<MalwareProfile>,
    pub actors: Vec<ActorProfile>,
    pub cves: Vec<CveProfile>,
    pub techniques: Vec<String>,
    pub tools: Vec<String>,
    pub software: Vec<String>,
    pub campaigns: Vec<String>,
    pub vendors: Vec<String>,
}

/// Curated entity-name lists, as the paper builds from MITRE ATT&CK for its
/// labeling functions. `coverage < 1.0` omits a deterministic fraction of
/// names, modelling the incompleteness of real curated lists.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CuratedLists {
    pub malware: Vec<String>,
    pub actors: Vec<String>,
    pub techniques: Vec<String>,
    pub tools: Vec<String>,
    pub software: Vec<String>,
}

impl World {
    /// Generate a world from a config. Deterministic in `config.seed`.
    pub fn generate(config: WorldConfig) -> Self {
        let root = Rng::new(config.seed);

        let techniques: Vec<String> = names::SEED_TECHNIQUES
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let tools: Vec<String> = names::SEED_TOOLS.iter().map(|s| (*s).to_owned()).collect();
        let software: Vec<String> = names::SEED_SOFTWARE
            .iter()
            .map(|s| (*s).to_owned())
            .collect();

        let mut rng = root.derive("campaigns");
        let mut campaigns = Vec::with_capacity(config.campaign_count);
        while campaigns.len() < config.campaign_count {
            let name = names::generate_campaign_name(&mut rng);
            if !campaigns.contains(&name) {
                campaigns.push(name);
            }
        }

        // Vendors: the CTI organisations running the 40+ sources.
        let vendors: Vec<String> = crate::source::VENDOR_NAMES
            .iter()
            .map(|s| (*s).to_owned())
            .collect();

        // CVEs.
        let mut rng = root.derive("cves");
        let mut cves = Vec::with_capacity(config.cve_count);
        let mut seen = std::collections::HashSet::new();
        // The demo's famous vulnerability, always present.
        cves.push(CveProfile {
            id: "CVE-2017-0144".into(),
            affects: software
                .iter()
                .position(|s| s == "smb protocol")
                .unwrap_or(0),
            nickname: Some("eternalblue".into()),
        });
        seen.insert("CVE-2017-0144".to_owned());
        while cves.len() < config.cve_count.max(1) {
            let id = names::generate_cve(&mut rng);
            if seen.insert(id.clone()) {
                let nickname = if rng.chance(0.08) {
                    Some(names::generate_malware_name(&mut rng))
                } else {
                    None
                };
                cves.push(CveProfile {
                    id,
                    affects: rng.below(software.len()),
                    nickname,
                });
            }
        }

        // Actors.
        let mut rng = root.derive("actors");
        let mut actors = Vec::with_capacity(config.actor_count);
        let mut used_names: std::collections::HashSet<String> = std::collections::HashSet::new();
        for i in 0..config.actor_count {
            let name = if i < names::SEED_ACTORS.len() {
                names::SEED_ACTORS[i].to_owned()
            } else {
                loop {
                    let n = names::generate_actor_name(&mut rng);
                    if !used_names.contains(&n) {
                        break n;
                    }
                }
            };
            used_names.insert(name.clone());
            let aliases = alias_group(&name, names::ACTOR_ALIASES);
            let technique_count = rng.range(2, 5);
            let techniques_v = rng.sample_indices(techniques.len(), technique_count);
            let tool_n = rng.range(1, 3);
            let tools_v = rng.sample_indices(tools.len(), tool_n);
            let campaigns_v = if campaigns.is_empty() {
                Vec::new()
            } else {
                let camp_n = rng.range(0, 2);
                rng.sample_indices(campaigns.len(), camp_n)
            };
            let target_n = rng.range(1, 3);
            let targets = rng.sample_indices(software.len(), target_n);
            actors.push(ActorProfile {
                name,
                aliases,
                techniques: techniques_v,
                tools: tools_v,
                campaigns: campaigns_v,
                target_software: targets,
            });
        }
        // Demo scenario 2: another actor shares cozyduke's technique set, so
        // "check if there are other threat actors that use the same set of
        // techniques" has a positive answer.
        if actors.len() >= 2 {
            let cozy_techniques = actors
                .iter()
                .find(|a| a.name == "cozyduke")
                .map(|a| a.techniques.clone());
            if let Some(t) = cozy_techniques {
                let idx = actors.iter().position(|a| a.name != "cozyduke").unwrap();
                actors[idx].techniques = t;
            }
        }

        // Malware.
        let mut rng = root.derive("malware");
        let mut malware = Vec::with_capacity(config.malware_count);
        for i in 0..config.malware_count {
            let name = if i < names::SEED_MALWARE.len() {
                names::SEED_MALWARE[i].to_owned()
            } else {
                loop {
                    let n = names::generate_malware_name(&mut rng);
                    if !used_names.contains(&n) {
                        break n;
                    }
                }
            };
            used_names.insert(name.clone());
            let aliases = alias_group(&name, names::MALWARE_ALIASES);
            let mut profile = MalwareProfile {
                name: name.clone(),
                aliases,
                dropped_files: gen_n(&mut rng, 1, 3, names::generate_file_name),
                file_paths: gen_n(&mut rng, 0, 2, names::generate_file_path),
                domains: gen_n(&mut rng, 1, 3, names::generate_domain),
                ips: gen_n(&mut rng, 1, 3, names::generate_ip),
                urls: gen_n(&mut rng, 0, 2, names::generate_url),
                emails: gen_n(&mut rng, 0, 1, names::generate_email),
                registry_keys: gen_n(&mut rng, 0, 2, names::generate_registry_key),
                hashes: {
                    let mut hs = vec![(EntityKind::HashSha256, names::generate_hash(&mut rng, 64))];
                    if rng.chance(0.6) {
                        hs.push((EntityKind::HashMd5, names::generate_hash(&mut rng, 32)));
                    }
                    if rng.chance(0.3) {
                        hs.push((EntityKind::HashSha1, names::generate_hash(&mut rng, 40)));
                    }
                    hs
                },
                cves: {
                    let n = rng.range(0, 2);
                    rng.sample_indices(cves.len(), n)
                },
                techniques: {
                    let n = rng.range(1, 4);
                    rng.sample_indices(techniques.len(), n)
                },
                tools: {
                    let n = rng.range(0, 2);
                    rng.sample_indices(tools.len(), n)
                },
                target_software: {
                    let n = rng.range(1, 2);
                    rng.sample_indices(software.len(), n)
                },
                actor: if rng.chance(0.7) && !actors.is_empty() {
                    Some(rng.below(actors.len()))
                } else {
                    None
                },
                campaign: if rng.chance(0.4) && !campaigns.is_empty() {
                    Some(rng.below(campaigns.len()))
                } else {
                    None
                },
                is_ransomware: rng.chance(0.3),
            };
            if name == "wannacry" {
                enrich_wannacry(&mut profile, &techniques, &actors);
            }
            malware.push(profile);
        }

        World {
            config,
            malware,
            actors,
            cves,
            techniques,
            tools,
            software,
            campaigns,
            vendors,
        }
    }

    /// Look up a malware profile by name or alias.
    pub fn malware_by_name(&self, name: &str) -> Option<&MalwareProfile> {
        self.malware
            .iter()
            .find(|m| m.name == name || m.aliases.iter().any(|a| a == name))
    }

    /// Look up an actor profile by name or alias.
    pub fn actor_by_name(&self, name: &str) -> Option<&ActorProfile> {
        self.actors
            .iter()
            .find(|a| a.name == name || a.aliases.iter().any(|al| al == name))
    }

    /// Extract curated entity-name lists covering a deterministic fraction of
    /// the world's names (the labeling-function knowledge base of E3).
    pub fn curated_lists(&self, coverage: f64, seed: u64) -> CuratedLists {
        let mut rng = Rng::new(seed ^ 0xBADC_0DE5);
        let take = |items: Vec<String>, rng: &mut Rng| -> Vec<String> {
            items.into_iter().filter(|_| rng.chance(coverage)).collect()
        };
        CuratedLists {
            malware: take(
                self.malware
                    .iter()
                    .flat_map(|m| m.aliases.clone())
                    .collect(),
                &mut rng,
            ),
            actors: take(
                self.actors.iter().flat_map(|a| a.aliases.clone()).collect(),
                &mut rng,
            ),
            techniques: take(self.techniques.clone(), &mut rng),
            tools: take(self.tools.clone(), &mut rng),
            software: take(self.software.clone(), &mut rng),
        }
    }
}

/// Expand a name into its alias group (name first), or a singleton.
fn alias_group(name: &str, groups: &[&[&str]]) -> Vec<String> {
    for group in groups {
        if group[0] == name {
            return group.iter().map(|s| (*s).to_owned()).collect();
        }
    }
    vec![name.to_owned()]
}

fn gen_n(rng: &mut Rng, lo: usize, hi: usize, f: impl Fn(&mut Rng) -> String) -> Vec<String> {
    let n = rng.range(lo, hi);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let v = f(rng);
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

/// Pin the demo facts for wannacry (paper §3 scenario 1).
fn enrich_wannacry(profile: &mut MalwareProfile, techniques: &[String], actors: &[ActorProfile]) {
    profile.dropped_files = vec!["tasksche.exe".into(), "mssecsvc.exe".into()];
    profile.file_paths = vec!["C:\\Windows\\mssecsvc.exe".into()];
    profile.domains = vec!["iuqerfsodp9ifjaposdfjhgosurijfaewrwergwea.com".into()];
    profile.cves = vec![0]; // CVE-2017-0144 is always index 0
    profile.is_ransomware = true;
    if let Some(t) = techniques.iter().position(|t| t == "smb exploitation") {
        profile.techniques = vec![t];
        if let Some(t2) = techniques
            .iter()
            .position(|t| t == "data encrypted for impact")
        {
            profile.techniques.push(t2);
        }
    }
    if let Some(a) = actors.iter().position(|a| a.name == "lazarus group") {
        profile.actor = Some(a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(WorldConfig::default());
        let b = World::generate(WorldConfig::default());
        assert_eq!(a.malware.len(), b.malware.len());
        for (x, y) in a.malware.iter().zip(&b.malware) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.domains, y.domains);
            assert_eq!(x.hashes, y.hashes);
        }
    }

    #[test]
    fn world_contains_demo_entities() {
        let w = World::generate(WorldConfig::default());
        let wannacry = w.malware_by_name("wannacry").expect("wannacry exists");
        assert!(wannacry.dropped_files.contains(&"tasksche.exe".to_owned()));
        assert!(wannacry.is_ransomware);
        assert_eq!(w.cves[wannacry.cves[0]].id, "CVE-2017-0144");
        let cozy = w.actor_by_name("cozyduke").expect("cozyduke exists");
        assert!(!cozy.techniques.is_empty());
        // Alias lookup works.
        assert!(w.actor_by_name("apt29").is_some());
        assert!(w.malware_by_name("wcry").is_some());
    }

    #[test]
    fn another_actor_shares_cozyduke_techniques() {
        let w = World::generate(WorldConfig::default());
        let cozy = w.actor_by_name("cozyduke").unwrap();
        let twin = w
            .actors
            .iter()
            .filter(|a| a.name != "cozyduke")
            .find(|a| a.techniques == cozy.techniques);
        assert!(twin.is_some(), "demo scenario 2 needs a technique twin");
    }

    #[test]
    fn names_are_unique_across_malware_and_actors() {
        let w = World::generate(WorldConfig::default());
        let mut all: Vec<&str> = w.malware.iter().map(|m| m.name.as_str()).collect();
        all.extend(w.actors.iter().map(|a| a.name.as_str()));
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn curated_lists_respect_coverage() {
        let w = World::generate(WorldConfig::default());
        let full = w.curated_lists(1.0, 1);
        let half = w.curated_lists(0.5, 1);
        let none = w.curated_lists(0.0, 1);
        assert!(full.malware.len() >= w.malware.len());
        assert!(half.malware.len() < full.malware.len());
        assert!(none.malware.is_empty());
        // Deterministic for a seed.
        assert_eq!(half.malware, w.curated_lists(0.5, 1).malware);
    }

    #[test]
    fn profiles_reference_valid_indices() {
        let w = World::generate(WorldConfig::tiny(9));
        for m in &w.malware {
            for &c in &m.cves {
                assert!(c < w.cves.len());
            }
            for &t in &m.techniques {
                assert!(t < w.techniques.len());
            }
            if let Some(a) = m.actor {
                assert!(a < w.actors.len());
            }
        }
        for a in &w.actors {
            for &t in &a.techniques {
                assert!(t < w.techniques.len());
            }
        }
    }
}
