//! Verb inflection for the article generator.
//!
//! The generator writes sentences in varied tense and voice; the gold
//! relation keeps the lemma. These rules are the inverse of the lemmatizer in
//! `kg-nlp`, and a cross-crate test (in `tests/`) checks round-tripping.

/// Irregular (lemma, past, participle) triples used by the generator.
const IRREGULAR: &[(&str, &str, &str)] = &[
    ("send", "sent", "sent"),
    ("steal", "stole", "stolen"),
    ("write", "wrote", "written"),
    ("spread", "spread", "spread"),
    ("hide", "hid", "hidden"),
    ("begin", "began", "begun"),
    ("take", "took", "taken"),
    ("make", "made", "made"),
    ("see", "saw", "seen"),
    ("find", "found", "found"),
    ("become", "became", "become"),
    ("run", "ran", "run"),
];

fn ends_with_doubling_consonant(lemma: &str) -> bool {
    // CVC pattern with a final consonant that doubles: drop → dropped.
    let b = lemma.as_bytes();
    if b.len() < 3 {
        return false;
    }
    let last = b[b.len() - 1];
    let mid = b[b.len() - 2];
    let before = b[b.len() - 3];
    let vowel = |c: u8| b"aeiou".contains(&c);
    !vowel(last)
        && vowel(mid)
        && !vowel(before)
        && !b"wxy".contains(&last)
        // Heuristic: only short (stressed-final) stems double — drop, plan,
        // log, scan; longer stems like "beacon"/"target" do not.
        && lemma.len() <= 4
}

/// Third-person singular present: drop → drops, reach → reaches, copy → copies.
pub fn third_singular(lemma: &str) -> String {
    if let Some(stripped) = lemma.strip_suffix('y') {
        let b = lemma.as_bytes();
        if b.len() >= 2 && !b"aeiou".contains(&b[b.len() - 2]) {
            return format!("{stripped}ies");
        }
    }
    if ["s", "sh", "ch", "x", "z", "o"]
        .iter()
        .any(|s| lemma.ends_with(s))
    {
        return format!("{lemma}es");
    }
    format!("{lemma}s")
}

/// Simple past: drop → dropped, use → used, copy → copied, send → sent.
pub fn past(lemma: &str) -> String {
    if let Some(&(_, p, _)) = IRREGULAR.iter().find(|(l, _, _)| *l == lemma) {
        return p.to_owned();
    }
    if lemma.ends_with('e') {
        return format!("{lemma}d");
    }
    if let Some(stripped) = lemma.strip_suffix('y') {
        let b = lemma.as_bytes();
        if b.len() >= 2 && !b"aeiou".contains(&b[b.len() - 2]) {
            return format!("{stripped}ied");
        }
    }
    if ends_with_doubling_consonant(lemma) {
        let last = lemma.chars().last().unwrap();
        return format!("{lemma}{last}ed");
    }
    format!("{lemma}ed")
}

/// Past participle (for passives): drop → dropped, steal → stolen.
pub fn participle(lemma: &str) -> String {
    if let Some(&(_, _, pp)) = IRREGULAR.iter().find(|(l, _, _)| *l == lemma) {
        return pp.to_owned();
    }
    past(lemma)
}

/// Present participle: drop → dropping, use → using.
pub fn gerund(lemma: &str) -> String {
    if let Some(stem) = lemma.strip_suffix("ie") {
        return format!("{stem}ying");
    }
    if lemma.ends_with('e') && !lemma.ends_with("ee") {
        return format!("{}ing", &lemma[..lemma.len() - 1]);
    }
    if ends_with_doubling_consonant(lemma) {
        let last = lemma.chars().last().unwrap();
        return format!("{lemma}{last}ing");
    }
    format!("{lemma}ing")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn third_singular_forms() {
        assert_eq!(third_singular("drop"), "drops");
        assert_eq!(third_singular("reach"), "reaches");
        assert_eq!(third_singular("copy"), "copies");
        assert_eq!(third_singular("deploy"), "deploys");
        assert_eq!(third_singular("use"), "uses");
    }

    #[test]
    fn past_forms() {
        assert_eq!(past("drop"), "dropped");
        assert_eq!(past("use"), "used");
        assert_eq!(past("copy"), "copied");
        assert_eq!(past("encrypt"), "encrypted");
        assert_eq!(past("send"), "sent");
        assert_eq!(past("beacon"), "beaconed");
        assert_eq!(past("connect"), "connected");
    }

    #[test]
    fn participle_forms() {
        assert_eq!(participle("steal"), "stolen");
        assert_eq!(participle("drop"), "dropped");
        assert_eq!(participle("hide"), "hidden");
    }

    #[test]
    fn gerund_forms() {
        assert_eq!(gerund("drop"), "dropping");
        assert_eq!(gerund("use"), "using");
        assert_eq!(gerund("see"), "seeing");
        assert_eq!(gerund("encrypt"), "encrypting");
    }

    #[test]
    fn inflections_lemmatize_back() {
        use kg_nlp::pos::PosTag;
        for lemma in [
            "drop", "use", "encrypt", "target", "exploit", "download", "steal",
        ] {
            for form in [third_singular(lemma), past(lemma), gerund(lemma)] {
                let back = kg_nlp::lemma::lemmatize_validated(&form, PosTag::Verb, |c| c == lemma);
                assert_eq!(back, lemma, "form {form}");
            }
        }
    }
}
