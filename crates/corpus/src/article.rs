//! The article generator: turns world facts into OSCTI report prose with
//! exact ground-truth annotations.
//!
//! Every sentence that states a relation between two *named* entities records
//! a [`crate::truth::GoldRelation`]; sentences using pronouns or generic
//! subjects ("the operators", "the sample") deliberately carry no relation
//! gold — a relation extractor working from explicit entity pairs can neither
//! find nor be penalised for them. Surface variety (active / passive /
//! coordinated objects, varied verbs per relation kind) is what makes the
//! CRF + SVO extraction task non-trivial.

use crate::inflect::{past, third_singular};
use crate::rng::Rng;
use crate::source::SourceSpec;
use crate::truth::{GoldReport, TextBuilder};
use crate::world::World;
use kg_ontology::{EntityKind, Ontology, RelationKind, ReportCategory};

/// Filler sentences with no entity content.
const FILLERS: &[&str] = &[
    "Organizations are advised to apply the latest security updates.",
    "The attack chain begins with a carefully crafted phishing email.",
    "Victims reported significant disruption to daily operations.",
    "Our telemetry shows a steady increase in detections this quarter.",
    "Incident responders isolated the affected machines within hours.",
    "The operators rotate infrastructure frequently to evade blocklists.",
    "Defenders should monitor outbound traffic for unusual patterns.",
    "A full list of indicators appears at the end of this report.",
    "The loader is heavily obfuscated and resists static analysis.",
    "Network segmentation limited the spread in several environments.",
    "Security teams should review authentication logs for anomalies.",
    "The campaign remains active at the time of writing.",
    "Patches were released shortly after responsible disclosure.",
    "Attribution remains tentative pending further evidence.",
    "Backups stored offline proved essential for recovery.",
    "Detection rules have been shared with the community.",
];

/// One world fact scheduled for rendering as a sentence.
#[derive(Debug, Clone)]
enum Fact {
    Drop {
        mal: String,
        file: String,
    },
    CreatePath {
        mal: String,
        path: String,
    },
    PersistReg {
        mal: String,
        reg: String,
    },
    Connect {
        mal: String,
        target: (EntityKind, String),
    },
    Download {
        mal: String,
        url: String,
    },
    Exploit {
        subj: (EntityKind, String),
        cve: String,
    },
    Attributed {
        subj: (EntityKind, String),
        actor: String,
    },
    UseThing {
        subj: (EntityKind, String),
        obj: (EntityKind, String),
    },
    UsePair {
        subj: (EntityKind, String),
        a: (EntityKind, String),
        b: (EntityKind, String),
    },
    Target {
        subj: (EntityKind, String),
        soft: String,
    },
    Affects {
        cve: String,
        soft: String,
    },
    Conducts {
        actor: String,
        camp: String,
    },
    IdentifiedBy {
        hash: (EntityKind, String),
        file: String,
    },
    Resolve {
        mal: String,
        dom: String,
    },
    Send {
        mal: String,
        email: String,
    },
    Encrypt {
        mal: String,
    },
    MentionHashes {
        hashes: Vec<(EntityKind, String)>,
    },
}

/// Generates articles (with gold labels) for sources, lazily and
/// deterministically: `generate(spec, i)` never depends on other articles.
#[derive(Debug, Clone)]
pub struct ArticleGenerator<'w> {
    world: &'w World,
    ontology: Ontology,
    seed: u64,
}

impl<'w> ArticleGenerator<'w> {
    /// Create a generator over a world.
    pub fn new(world: &'w World, seed: u64) -> Self {
        ArticleGenerator {
            world,
            ontology: Ontology::standard(),
            seed,
        }
    }

    /// The world this generator draws facts from.
    pub fn world(&self) -> &World {
        self.world
    }

    /// Generate article `index` of `spec`, with full gold annotations.
    pub fn generate(&self, spec: &SourceSpec, index: usize) -> GoldReport {
        let mut rng = Rng::new(self.seed)
            .derive(&spec.name)
            .derive_idx("article", index as u64);
        let category = pick_category(&mut rng, spec.category_mix);
        match category {
            ReportCategory::Malware => self.malware_report(spec, index, &mut rng),
            ReportCategory::Vulnerability => self.vuln_report(spec, index, &mut rng),
            ReportCategory::Attack => self.attack_report(spec, index, &mut rng),
        }
    }

    /// The source-consistent alias for an alias group: vendors disagree on
    /// names, but each vendor is internally consistent.
    fn alias_for(spec: &SourceSpec, aliases: &[String]) -> String {
        aliases[spec.id.0 as usize % aliases.len()].clone()
    }

    fn malware_report(&self, spec: &SourceSpec, index: usize, rng: &mut Rng) -> GoldReport {
        let m = &self.world.malware[rng.below(self.world.malware.len())];
        let mal = Self::alias_for(spec, &m.aliases);
        let mal_e = (EntityKind::Malware, mal.clone());

        let mut facts: Vec<Fact> = Vec::new();
        for f in &m.dropped_files {
            facts.push(Fact::Drop {
                mal: mal.clone(),
                file: f.clone(),
            });
        }
        for p in &m.file_paths {
            facts.push(Fact::CreatePath {
                mal: mal.clone(),
                path: p.clone(),
            });
        }
        for r in &m.registry_keys {
            facts.push(Fact::PersistReg {
                mal: mal.clone(),
                reg: r.clone(),
            });
        }
        for d in &m.domains {
            if rng.chance(0.3) {
                facts.push(Fact::Resolve {
                    mal: mal.clone(),
                    dom: d.clone(),
                });
            } else {
                facts.push(Fact::Connect {
                    mal: mal.clone(),
                    target: (EntityKind::Domain, d.clone()),
                });
            }
        }
        for ip in &m.ips {
            facts.push(Fact::Connect {
                mal: mal.clone(),
                target: (EntityKind::IpAddress, ip.clone()),
            });
        }
        for u in &m.urls {
            facts.push(Fact::Download {
                mal: mal.clone(),
                url: u.clone(),
            });
        }
        for e in &m.emails {
            facts.push(Fact::Send {
                mal: mal.clone(),
                email: e.clone(),
            });
        }
        for &c in &m.cves {
            facts.push(Fact::Exploit {
                subj: mal_e.clone(),
                cve: self.world.cves[c].id.clone(),
            });
        }
        for &t in &m.techniques {
            facts.push(Fact::UseThing {
                subj: mal_e.clone(),
                obj: (EntityKind::Technique, self.world.techniques[t].clone()),
            });
        }
        for &t in &m.tools {
            facts.push(Fact::UseThing {
                subj: mal_e.clone(),
                obj: (EntityKind::Tool, self.world.tools[t].clone()),
            });
        }
        for &s in &m.target_software {
            facts.push(Fact::Target {
                subj: mal_e.clone(),
                soft: self.world.software[s].clone(),
            });
        }
        if let Some(a) = m.actor {
            let actor = Self::alias_for(spec, &self.world.actors[a].aliases);
            facts.push(Fact::Attributed {
                subj: mal_e.clone(),
                actor,
            });
        }
        if m.is_ransomware {
            facts.push(Fact::Encrypt { mal: mal.clone() });
        }
        if let Some((kind, hash)) = m.hashes.first() {
            if let Some(file) = m.dropped_files.first() {
                facts.push(Fact::IdentifiedBy {
                    hash: (*kind, hash.clone()),
                    file: file.clone(),
                });
            }
        }
        if m.hashes.len() > 1 {
            facts.push(Fact::MentionHashes {
                hashes: m.hashes[1..].to_vec(),
            });
        }

        let title = match rng.below(3) {
            0 => format!("Analysis of the {mal} malware family"),
            1 => format!("{mal}: technical deep dive"),
            _ => format!("New {mal} activity observed in the wild"),
        };

        let mut structured = vec![("family".to_owned(), mal.clone(), Some(EntityKind::Malware))];
        if let Some((kind, hash)) = m.hashes.first() {
            let key = match kind {
                EntityKind::HashMd5 => "md5",
                EntityKind::HashSha1 => "sha1",
                _ => "sha256",
            };
            structured.push((key.to_owned(), hash.clone(), Some(*kind)));
        }
        if let Some(d) = m.domains.first() {
            structured.push(("c2 server".to_owned(), d.clone(), Some(EntityKind::Domain)));
        }
        structured.push(("severity".to_owned(), "high".to_owned(), None));

        self.assemble(
            spec,
            index,
            ReportCategory::Malware,
            title,
            structured,
            facts,
            rng,
            Some(IntroSpec::Malware { mal }),
        )
    }

    fn vuln_report(&self, spec: &SourceSpec, index: usize, rng: &mut Rng) -> GoldReport {
        let ci = rng.below(self.world.cves.len());
        let cve = &self.world.cves[ci];
        let soft = self.world.software[cve.affects].clone();

        let mut facts = vec![Fact::Affects {
            cve: cve.id.clone(),
            soft: soft.clone(),
        }];
        // Malware exploiting this CVE, if any.
        for m in &self.world.malware {
            if m.cves.contains(&ci) {
                let mal = Self::alias_for(spec, &m.aliases);
                facts.push(Fact::Exploit {
                    subj: (EntityKind::Malware, mal),
                    cve: cve.id.clone(),
                });
                break;
            }
        }
        if rng.chance(0.5) && !self.world.actors.is_empty() {
            let a = &self.world.actors[rng.below(self.world.actors.len())];
            facts.push(Fact::Exploit {
                subj: (EntityKind::ThreatActor, Self::alias_for(spec, &a.aliases)),
                cve: cve.id.clone(),
            });
        }

        let title = match rng.below(2) {
            0 => format!("{} in {} under active exploitation", cve.id, soft),
            _ => format!("Advisory: {} patched in {}", cve.id, soft),
        };
        let structured = vec![
            (
                "cve id".to_owned(),
                cve.id.clone(),
                Some(EntityKind::Vulnerability),
            ),
            (
                "affected product".to_owned(),
                soft.clone(),
                Some(EntityKind::Software),
            ),
            (
                "cvss score".to_owned(),
                format!("{}.{}", rng.range(6, 9), rng.below(10)),
                None,
            ),
        ];

        self.assemble(
            spec,
            index,
            ReportCategory::Vulnerability,
            title,
            structured,
            facts,
            rng,
            Some(IntroSpec::Vuln {
                cve: cve.id.clone(),
                soft,
            }),
        )
    }

    fn attack_report(&self, spec: &SourceSpec, index: usize, rng: &mut Rng) -> GoldReport {
        let a = &self.world.actors[rng.below(self.world.actors.len())];
        let actor = Self::alias_for(spec, &a.aliases);
        let actor_e = (EntityKind::ThreatActor, actor.clone());

        let mut facts: Vec<Fact> = Vec::new();
        let camp = a
            .campaigns
            .first()
            .map(|&c| self.world.campaigns[c].clone());
        if let Some(camp) = &camp {
            facts.push(Fact::Conducts {
                actor: actor.clone(),
                camp: camp.clone(),
            });
            if rng.chance(0.5) {
                facts.push(Fact::Attributed {
                    subj: (EntityKind::Campaign, camp.clone()),
                    actor: actor.clone(),
                });
            }
        }
        // Coordinated tool+technique sentence when both available.
        if let (Some(&t0), Some(&tech0)) = (a.tools.first(), a.techniques.first()) {
            facts.push(Fact::UsePair {
                subj: actor_e.clone(),
                a: (EntityKind::Tool, self.world.tools[t0].clone()),
                b: (EntityKind::Technique, self.world.techniques[tech0].clone()),
            });
        }
        for &t in a.techniques.iter().skip(1) {
            facts.push(Fact::UseThing {
                subj: actor_e.clone(),
                obj: (EntityKind::Technique, self.world.techniques[t].clone()),
            });
        }
        for &t in a.tools.iter().skip(1) {
            facts.push(Fact::UseThing {
                subj: actor_e.clone(),
                obj: (EntityKind::Tool, self.world.tools[t].clone()),
            });
        }
        for &s in &a.target_software {
            facts.push(Fact::Target {
                subj: actor_e.clone(),
                soft: self.world.software[s].clone(),
            });
        }
        // A malware deployed by this actor, if the world links one.
        if let Some(m) = self.world.malware.iter().find(|m| {
            m.actor
                .is_some_and(|ai| self.world.actors[ai].name == a.name)
        }) {
            facts.push(Fact::UseThing {
                subj: actor_e.clone(),
                obj: (EntityKind::Malware, Self::alias_for(spec, &m.aliases)),
            });
        }

        let title = match (rng.below(2), &camp) {
            (0, Some(c)) => format!("Inside {c}: the {actor} playbook"),
            _ => format!("{actor} expands espionage operations"),
        };
        let mut structured = vec![(
            "threat actor".to_owned(),
            actor.clone(),
            Some(EntityKind::ThreatActor),
        )];
        if let Some(c) = &camp {
            structured.push(("campaign".to_owned(), c.clone(), Some(EntityKind::Campaign)));
        }

        self.assemble(
            spec,
            index,
            ReportCategory::Attack,
            title,
            structured,
            facts,
            rng,
            Some(IntroSpec::Attack { actor }),
        )
    }

    /// Assemble paragraphs: intro sentence, then facts (shuffled, capped)
    /// interleaved with fillers.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        &self,
        _spec: &SourceSpec,
        index: usize,
        category: ReportCategory,
        title: String,
        structured: Vec<(String, String, Option<EntityKind>)>,
        facts: Vec<Fact>,
        rng: &mut Rng,
        intro: Option<IntroSpec>,
    ) -> GoldReport {
        let mut b = TextBuilder::new();
        if let Some(intro) = intro {
            self.emit_intro(&mut b, rng, intro);
        }

        let max_facts = rng.range(3, 8).min(facts.len());
        let chosen = rng.sample_indices(facts.len(), max_facts);
        let mut sentences_in_para = 1usize;
        for fi in chosen {
            if rng.chance(0.35) {
                b.lit(" ");
                #[allow(clippy::explicit_auto_deref)]
                b.lit(*rng.pick(FILLERS));
            }
            let para_break = sentences_in_para >= rng.range(2, 4);
            if para_break {
                b.end_paragraph();
                sentences_in_para = 0;
            } else {
                b.lit(" ");
            }
            self.emit_fact(&mut b, rng, &facts[fi]);
            sentences_in_para += 1;
        }
        b.lit(" ");
        #[allow(clippy::explicit_auto_deref)]
        b.lit(*rng.pick(FILLERS));

        let (text, mentions, relations) = b.finish();
        GoldReport {
            key: format!("r{index}"),
            category,
            title,
            text,
            mentions,
            relations,
            structured,
        }
    }

    fn emit_intro(&self, b: &mut TextBuilder, rng: &mut Rng, intro: IntroSpec) {
        match intro {
            IntroSpec::Malware { mal } => match rng.below(3) {
                0 => {
                    b.lit("Researchers have identified a new wave of ");
                    b.entity(EntityKind::Malware, &mal);
                    b.lit(" activity across several regions.");
                }
                1 => {
                    b.lit("This report examines recent samples of ");
                    b.entity(EntityKind::Malware, &mal);
                    b.lit(" collected by our sensors.");
                }
                _ => {
                    b.lit("The ");
                    b.entity(EntityKind::Malware, &mal);
                    b.lit(" family continues to evolve at a rapid pace.");
                }
            },
            IntroSpec::Vuln { cve, soft } => match rng.below(2) {
                0 => {
                    b.lit("A critical vulnerability tracked as ");
                    let c = b.entity(EntityKind::Vulnerability, &cve);
                    b.lit(" affects ");
                    let s = b.entity(EntityKind::Software, &soft);
                    b.lit(" deployments worldwide.");
                    b.relation(c, "affect", s, RelationKind::Affects);
                }
                _ => {
                    b.lit("Administrators of ");
                    b.entity(EntityKind::Software, &soft);
                    b.lit(" should review the advisory for ");
                    b.entity(EntityKind::Vulnerability, &cve);
                    b.lit(" without delay.");
                }
            },
            IntroSpec::Attack { actor } => match rng.below(2) {
                0 => {
                    b.lit("The threat actor ");
                    b.entity(EntityKind::ThreatActor, &actor);
                    b.lit(" has intensified operations in recent weeks.");
                }
                _ => {
                    b.lit("New activity linked to ");
                    b.entity(EntityKind::ThreatActor, &actor);
                    b.lit(" came to light this month.");
                }
            },
        }
    }

    /// Render one fact as a sentence, recording gold mentions and relations.
    fn emit_fact(&self, b: &mut TextBuilder, rng: &mut Rng, fact: &Fact) {
        match fact {
            Fact::Drop { mal, file } => {
                self.svo_sentence(
                    b,
                    rng,
                    (EntityKind::Malware, mal),
                    "drop",
                    (EntityKind::FileName, file),
                    &[
                        "on the infected host.",
                        "shortly after execution.",
                        "to disk.",
                    ],
                );
            }
            Fact::CreatePath { mal, path } => {
                self.svo_sentence(
                    b,
                    rng,
                    (EntityKind::Malware, mal),
                    "create",
                    (EntityKind::FilePath, path),
                    &["during installation.", "in the staging phase."],
                );
            }
            Fact::PersistReg { mal, reg } => match rng.below(2) {
                0 => {
                    let m = b.entity(EntityKind::Malware, mal);
                    b.lit(" ");
                    b.lit(&third_singular("persist"));
                    b.lit(" via ");
                    let r = b.entity(EntityKind::RegistryKey, reg);
                    b.lit(" across reboots.");
                    b.relation(m, "persist", r, RelationKind::PersistsVia);
                }
                _ => {
                    b.lit("To survive reboots, ");
                    let m = b.entity(EntityKind::Malware, mal);
                    b.lit(" ");
                    b.lit(&third_singular("add"));
                    b.lit(" ");
                    let r = b.entity(EntityKind::RegistryKey, reg);
                    b.lit(".");
                    b.relation(m, "add", r, RelationKind::Creates);
                }
            },
            Fact::Connect { mal, target } => {
                let verb = *rng.pick(&["connect", "beacon", "communicate", "reach"]);
                let _ = &verb;
                let tails: &[&str] = &[
                    "for command and control.",
                    "over port 443.",
                    "at regular intervals.",
                ];
                // "connect"/"beacon" take "to"; handled inside svo via prep.
                self.svo_prep_sentence(
                    b,
                    rng,
                    (EntityKind::Malware, mal),
                    verb,
                    "to",
                    (target.0, &target.1),
                    tails,
                    RelationKind::ConnectsTo,
                );
            }
            Fact::Download { mal, url } => {
                let verb = *rng.pick(&["download", "fetch", "retrieve"]);
                self.svo_prep_sentence(
                    b,
                    rng,
                    (EntityKind::Malware, mal),
                    verb,
                    "from",
                    (EntityKind::Url, url),
                    &["as a second stage.", "after initial infection."],
                    RelationKind::Downloads,
                );
            }
            Fact::Exploit { subj, cve } => {
                let verb = *rng.pick(&["exploit", "weaponize"]);
                self.svo_sentence(
                    b,
                    rng,
                    (subj.0, &subj.1),
                    verb,
                    (EntityKind::Vulnerability, cve),
                    &[
                        "to gain initial access.",
                        "in the wild.",
                        "for lateral movement.",
                    ],
                );
            }
            Fact::Attributed { subj, actor } => match rng.below(2) {
                0 => {
                    let s = b.entity(subj.0, &subj.1);
                    b.lit(" has been attributed to ");
                    let a = b.entity(EntityKind::ThreatActor, actor);
                    b.lit(" with high confidence.");
                    b.relation(s, "attribute", a, RelationKind::AttributedTo);
                }
                _ => {
                    b.lit("Analysts have linked ");
                    let s = b.entity(subj.0, &subj.1);
                    b.lit(" to ");
                    let a = b.entity(EntityKind::ThreatActor, actor);
                    b.lit(".");
                    b.relation(s, "link", a, RelationKind::AttributedTo);
                }
            },
            Fact::UseThing { subj, obj } => {
                let verb = *rng.pick(&["use", "leverage", "employ", "deploy"]);
                self.svo_sentence(
                    b,
                    rng,
                    (subj.0, &subj.1),
                    verb,
                    (obj.0, &obj.1),
                    &[
                        "during the intrusion.",
                        "to great effect.",
                        "in recent incidents.",
                    ],
                );
            }
            Fact::UsePair { subj, a, b: second } => {
                let verb = *rng.pick(&["use", "deploy"]);
                let s = b.entity(subj.0, &subj.1);
                b.lit(" ");
                b.lit(&past(verb));
                b.lit(" ");
                let o1 = b.entity(a.0, &a.1);
                b.lit(" and ");
                let o2 = b.entity(second.0, &second.1);
                b.lit(" during the operation.");
                let kind1 = self.resolve(subj.0, verb, a.0);
                let kind2 = self.resolve(subj.0, verb, second.0);
                b.relation(s, verb, o1, kind1);
                b.relation(s, verb, o2, kind2);
            }
            Fact::Target { subj, soft } => {
                let verb = *rng.pick(&["target", "attack", "compromise"]);
                self.svo_sentence(
                    b,
                    rng,
                    (subj.0, &subj.1),
                    verb,
                    (EntityKind::Software, soft),
                    &[
                        "installations.",
                        "deployments across multiple sectors.",
                        "users.",
                    ],
                );
            }
            Fact::Affects { cve, soft } => {
                self.svo_sentence(
                    b,
                    rng,
                    (EntityKind::Vulnerability, cve),
                    "affect",
                    (EntityKind::Software, soft),
                    &["when left unpatched.", "in default configurations."],
                );
            }
            Fact::Conducts { actor, camp } => {
                let verb = *rng.pick(&["conduct", "orchestrate", "run"]);
                self.svo_sentence(
                    b,
                    rng,
                    (EntityKind::ThreatActor, actor),
                    verb,
                    (EntityKind::Campaign, camp),
                    &["over several months.", "against high-value targets."],
                );
            }
            Fact::IdentifiedBy { hash, file } => {
                let h = b.entity(hash.0, &hash.1);
                b.lit(" ");
                b.lit(&third_singular("identify"));
                b.lit(" the dropper ");
                let f = b.entity(EntityKind::FileName, file);
                b.lit(".");
                b.relation(h, "identify", f, RelationKind::Identifies);
            }
            Fact::Resolve { mal, dom } => {
                let verb = *rng.pick(&["resolve", "query"]);
                self.svo_sentence(
                    b,
                    rng,
                    (EntityKind::Malware, mal),
                    verb,
                    (EntityKind::Domain, dom),
                    &["before detonation.", "as a kill switch."],
                );
            }
            Fact::Send { mal, email } => {
                self.svo_prep_sentence(
                    b,
                    rng,
                    (EntityKind::Malware, mal),
                    "send",
                    "from",
                    (EntityKind::Email, email),
                    &["in large volumes."],
                    RelationKind::Sends,
                );
            }
            Fact::Encrypt { mal } => {
                let m = b.entity(EntityKind::Malware, mal);
                b.lit(" ");
                b.lit(&third_singular("encrypt"));
                b.lit(" documents across the network and demands payment.");
                let _ = m;
            }
            Fact::MentionHashes { hashes } => {
                b.lit("Related indicators include ");
                for (i, (kind, h)) in hashes.iter().enumerate() {
                    if i > 0 {
                        b.lit(" and ");
                    }
                    b.entity(*kind, h);
                }
                b.lit(".");
            }
        }
    }

    fn resolve(&self, subj: EntityKind, verb: &str, obj: EntityKind) -> RelationKind {
        self.ontology
            .resolve_extracted(subj, verb, obj)
            .unwrap_or(RelationKind::RelatedTo)
    }

    /// Emit "<S> <verb> <O> <tail>" with active/passive variation.
    fn svo_sentence(
        &self,
        b: &mut TextBuilder,
        rng: &mut Rng,
        subj: (EntityKind, &str),
        verb: &'static str,
        obj: (EntityKind, &str),
        tails: &[&str],
    ) {
        let kind = self.resolve(subj.0, verb, obj.0);
        let tail = *rng.pick(tails);
        match rng.below(3) {
            // Active, present: "X drops Y ..."
            0 => {
                let s = b.entity(subj.0, subj.1);
                b.lit(" ");
                b.lit(&third_singular(verb));
                b.lit(" ");
                let o = b.entity(obj.0, obj.1);
                b.lit(" ");
                b.lit(tail);
                b.relation(s, verb, o, kind);
            }
            // Active, past with optional fronting: "Upon execution, X dropped Y ..."
            1 => {
                if rng.chance(0.4) {
                    b.lit("Upon execution, ");
                }
                let s = b.entity(subj.0, subj.1);
                b.lit(" ");
                b.lit(&past(verb));
                b.lit(" ");
                let o = b.entity(obj.0, obj.1);
                b.lit(" ");
                b.lit(tail);
                b.relation(s, verb, o, kind);
            }
            // Passive: "Y was dropped by X ..."
            _ => {
                let o = b.entity(obj.0, obj.1);
                b.lit(" was ");
                b.lit(&crate::inflect::participle(verb));
                b.lit(" by ");
                let s = b.entity(subj.0, subj.1);
                b.lit(" ");
                b.lit(tail);
                b.relation(s, verb, o, kind);
            }
        }
    }

    /// Emit "<S> <verb> <extra> <prep> <O> <tail>" (e.g. "X connects to Y").
    #[allow(clippy::too_many_arguments)]
    fn svo_prep_sentence(
        &self,
        b: &mut TextBuilder,
        rng: &mut Rng,
        subj: (EntityKind, &str),
        verb: &'static str,
        prep: &str,
        obj: (EntityKind, &str),
        tails: &[&str],
        kind: RelationKind,
    ) {
        let tail = *rng.pick(tails);
        let s = b.entity(subj.0, subj.1);
        b.lit(" ");
        if rng.chance(0.5) {
            b.lit(&third_singular(verb));
        } else {
            b.lit(&past(verb));
        }
        if verb == "send" {
            b.lit(" phishing messages");
        } else if verb == "download" || verb == "fetch" || verb == "retrieve" {
            b.lit(" additional payloads");
        }
        b.lit(" ");
        b.lit(prep);
        b.lit(" ");
        let o = b.entity(obj.0, obj.1);
        b.lit(" ");
        b.lit(tail);
        b.relation(s, verb, o, kind);
    }
}

/// Which intro sentence family to use.
enum IntroSpec {
    Malware { mal: String },
    Vuln { cve: String, soft: String },
    Attack { actor: String },
}

fn pick_category(rng: &mut Rng, mix: [f64; 3]) -> ReportCategory {
    let total: f64 = mix.iter().sum();
    let mut x = rng.unit() * total;
    for (i, w) in mix.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return ReportCategory::ALL[i];
        }
    }
    ReportCategory::Attack
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::standard_sources;
    use crate::world::{World, WorldConfig};

    fn setup() -> (World, Vec<crate::source::SourceSpec>) {
        (World::generate(WorldConfig::tiny(5)), standard_sources(50))
    }

    #[test]
    fn generated_reports_are_consistent() {
        let (world, sources) = setup();
        let generator = ArticleGenerator::new(&world, 99);
        for spec in sources.iter().take(8) {
            for i in 0..20 {
                let r = generator.generate(spec, i);
                assert!(
                    r.is_consistent(),
                    "source {} article {i}:\n{}",
                    spec.name,
                    r.text
                );
                assert!(!r.title.is_empty());
                assert!(!r.text.is_empty());
            }
        }
    }

    #[test]
    fn generation_is_lazy_deterministic() {
        let (world, sources) = setup();
        let g1 = ArticleGenerator::new(&world, 99);
        let g2 = ArticleGenerator::new(&world, 99);
        // Generating article 7 directly matches generating 0..=7 in order.
        let direct = g1.generate(&sources[0], 7);
        for i in 0..7 {
            let _ = g2.generate(&sources[0], i);
        }
        let sequential = g2.generate(&sources[0], 7);
        assert_eq!(direct, sequential);
    }

    #[test]
    fn different_seeds_differ() {
        let (world, sources) = setup();
        let a = ArticleGenerator::new(&world, 1).generate(&sources[0], 0);
        let b = ArticleGenerator::new(&world, 2).generate(&sources[0], 0);
        assert_ne!(a.text, b.text);
    }

    #[test]
    fn reports_contain_relations_and_mentions() {
        let (world, sources) = setup();
        let generator = ArticleGenerator::new(&world, 99);
        let mut total_mentions = 0;
        let mut total_relations = 0;
        for i in 0..30 {
            let r = generator.generate(&sources[0], i);
            total_mentions += r.mentions.len();
            total_relations += r.relations.len();
        }
        assert!(total_mentions > 60, "mentions {total_mentions}");
        assert!(total_relations > 20, "relations {total_relations}");
    }

    #[test]
    fn relations_obey_the_ontology() {
        let (world, sources) = setup();
        let generator = ArticleGenerator::new(&world, 99);
        let ontology = Ontology::standard();
        for i in 0..30 {
            let r = generator.generate(&sources[3], i);
            for rel in &r.relations {
                let s = r.mentions[rel.subject].kind;
                let o = r.mentions[rel.object].kind;
                assert!(
                    ontology.allows(s, rel.kind, o),
                    "<{s}, {}, {o}> in: {}",
                    rel.kind,
                    r.text
                );
            }
        }
    }

    #[test]
    fn vendor_alias_is_source_consistent() {
        let (world, sources) = setup();
        let generator = ArticleGenerator::new(&world, 99);
        // Find two reports from the same source about the same alias group;
        // the surface name must match.
        let wannacry_aliases = &world.malware_by_name("wannacry").unwrap().aliases;
        let mut seen: Option<String> = None;
        for i in 0..200 {
            let r = generator.generate(&sources[1], i);
            for m in &r.mentions {
                if m.kind == EntityKind::Malware && wannacry_aliases.contains(&m.text) {
                    match &seen {
                        None => seen = Some(m.text.clone()),
                        Some(prev) => assert_eq!(prev, &m.text),
                    }
                }
            }
        }
    }

    #[test]
    fn category_mix_is_respected() {
        let (world, _) = setup();
        let generator = ArticleGenerator::new(&world, 99);
        // An advisory-feed style mix should be dominated by vuln reports.
        let mut spec = standard_sources(50)[3].clone();
        spec.category_mix = [0.0, 1.0, 0.0];
        for i in 0..10 {
            let r = generator.generate(&spec, i);
            assert_eq!(r.category, ReportCategory::Vulnerability);
        }
    }
}
