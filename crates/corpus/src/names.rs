//! Name pools for the threat universe.
//!
//! Two tiers:
//!
//! - **Seed names** — embedded lists of well-known malware families, threat
//!   actors, techniques, tools and software (the MITRE-ATT&CK-style curated
//!   lists the paper builds its labeling functions from). The demo scenarios
//!   ("wannacry", "cozyduke") come from here.
//! - **Generated names** — syllable-based fabrications for the long tail, so
//!   the corpus contains entities *not* on any curated list; this is what
//!   lets experiment E3 measure generalisation to unseen entities.

use crate::rng::Rng;

/// Well-known malware family names (with alias groups for fusion tests).
pub const SEED_MALWARE: &[&str] = &[
    "wannacry",
    "emotet",
    "notpetya",
    "trickbot",
    "ryuk",
    "dridex",
    "qakbot",
    "locky",
    "gandcrab",
    "maze",
    "conti",
    "revil",
    "zeus",
    "mirai",
    "stuxnet",
    "duqu",
    "flame",
    "shamoon",
    "carbanak",
    "ursnif",
    "icedid",
    "raccoon",
    "agenttesla",
    "formbook",
    "nanocore",
    "remcos",
    "darkcomet",
    "njrat",
    "plugx",
    "sunburst",
    "teardrop",
    "cobaltkitty",
];

/// Alias groups: names in a group refer to the same malware under different
/// vendor naming conventions. Used to seed the knowledge-fusion experiment.
pub const MALWARE_ALIASES: &[&[&str]] = &[
    &["wannacry", "wcry", "wanna decryptor", "wannacrypt"],
    &["notpetya", "expetr", "nyetya", "petrwrap"],
    &["emotet", "geodo", "heodo"],
    &["trickbot", "trickloader", "thetrick"],
    &["revil", "sodinokibi", "sodin"],
    &["qakbot", "qbot", "pinkslipbot"],
];

/// Well-known threat actor names.
pub const SEED_ACTORS: &[&str] = &[
    "cozyduke",
    "lazarus group",
    "fancy bear",
    "equation group",
    "sandworm",
    "turla",
    "carbon spider",
    "wizard spider",
    "ocean lotus",
    "kimsuky",
    "mustang panda",
    "winnti group",
    "gallium",
    "hafnium",
    "nobelium",
    "charming kitten",
    "muddywater",
    "gamaredon",
    "sidewinder",
    "transparent tribe",
];

/// Actor alias groups (vendor naming conventions differ wildly for actors).
pub const ACTOR_ALIASES: &[&[&str]] = &[
    &["cozyduke", "apt29", "cozy bear", "the dukes"],
    &["fancy bear", "apt28", "sofacy", "strontium"],
    &["lazarus group", "hidden cobra", "zinc"],
    &["sandworm", "voodoo bear", "telebots"],
];

/// ATT&CK-style technique names (lowercase).
pub const SEED_TECHNIQUES: &[&str] = &[
    "spearphishing attachment",
    "spearphishing link",
    "credential dumping",
    "process injection",
    "scheduled task",
    "registry run keys",
    "powershell execution",
    "lateral movement",
    "pass the hash",
    "dll side-loading",
    "masquerading",
    "obfuscated files",
    "remote desktop protocol",
    "brute force",
    "data encrypted for impact",
    "exfiltration over c2 channel",
    "supply chain compromise",
    "drive-by compromise",
    "command and scripting interpreter",
    "valid accounts",
    "web shell",
    "keylogging",
    "screen capture",
    "domain generation algorithms",
    "smb exploitation",
    "kerberoasting",
    "living off the land",
    "token impersonation",
];

/// Attack tool names.
pub const SEED_TOOLS: &[&str] = &[
    "mimikatz",
    "cobalt strike",
    "psexec",
    "metasploit",
    "empire",
    "bloodhound",
    "powersploit",
    "lazagne",
    "procdump",
    "netcat",
    "nmap",
    "responder",
    "rubeus",
    "sharphound",
    "impacket",
    "plink",
    "advanced port scanner",
    "anydesk",
];

/// Targeted / abused software names.
pub const SEED_SOFTWARE: &[&str] = &[
    "windows",
    "microsoft office",
    "internet explorer",
    "microsoft exchange",
    "outlook",
    "apache struts",
    "apache tomcat",
    "oracle weblogic",
    "adobe flash player",
    "adobe reader",
    "java runtime",
    "openssl",
    "vmware vcenter",
    "citrix gateway",
    "fortinet vpn",
    "pulse secure",
    "jenkins",
    "drupal",
    "wordpress",
    "smb protocol",
];

/// Campaign name fragments.
pub const CAMPAIGN_ADJECTIVES: &[&str] = &[
    "silent",
    "hidden",
    "crimson",
    "frozen",
    "burning",
    "twisted",
    "shattered",
    "phantom",
    "midnight",
    "emerald",
    "iron",
    "velvet",
    "broken",
    "silver",
    "obsidian",
    "scarlet",
];

pub const CAMPAIGN_NOUNS: &[&str] = &[
    "serpent",
    "falcon",
    "tempest",
    "cascade",
    "harvest",
    "eclipse",
    "lantern",
    "anvil",
    "compass",
    "monsoon",
    "aurora",
    "labyrinth",
    "sickle",
    "mirage",
    "citadel",
    "vortex",
];

/// Syllables for fabricated malware names.
const MAL_SYLLABLES: &[&str] = &[
    "zar", "vex", "kro", "lum", "dra", "mok", "tri", "bal", "rex", "nox", "pyr", "gla", "shi",
    "vor", "qua", "zen", "hek", "tor", "fen", "bru", "cin", "dul", "eri", "fro",
];

const MAL_SUFFIXES: &[&str] = &[
    "bot", "locker", "crypt", "loader", "stealer", "rat", "worm", "kit", "spy", "miner",
];

/// Fabricate a malware family name not present in the seed list.
pub fn generate_malware_name(rng: &mut Rng) -> String {
    let a = rng.pick(MAL_SYLLABLES);
    let b = rng.pick(MAL_SYLLABLES);
    let suffix = rng.pick(MAL_SUFFIXES);
    format!("{a}{b}{suffix}")
}

/// Fabricate a threat actor name not present in the seed list.
pub fn generate_actor_name(rng: &mut Rng) -> String {
    const ANIMALS: &[&str] = &[
        "jackal", "viper", "mantis", "heron", "lynx", "badger", "osprey", "weasel", "cobra",
        "raven", "hornet", "ocelot", "ferret", "condor", "stoat", "gecko",
    ];
    // Two naming conventions, like real vendor taxonomies.
    if rng.chance(0.5) {
        format!("apt{}", rng.range(41, 99))
    } else {
        format!("{} {}", rng.pick(CAMPAIGN_ADJECTIVES), rng.pick(ANIMALS))
    }
}

/// Fabricate a campaign / operation name.
pub fn generate_campaign_name(rng: &mut Rng) -> String {
    format!(
        "operation {} {}",
        rng.pick(CAMPAIGN_ADJECTIVES),
        rng.pick(CAMPAIGN_NOUNS)
    )
}

/// Fabricate a CVE identifier.
pub fn generate_cve(rng: &mut Rng) -> String {
    format!("CVE-{}-{}", rng.range(2014, 2021), rng.range(1000, 42_999))
}

/// Fabricate a file name IOC.
pub fn generate_file_name(rng: &mut Rng) -> String {
    const STEMS: &[&str] = &[
        "svchost",
        "update",
        "taskmgr",
        "winlogon",
        "installer",
        "setup",
        "payload",
        "loader",
        "service",
        "helper",
        "config",
        "sync",
        "backup",
        "report",
        "invoice",
        "document",
        "readme",
        "temp",
        "cache",
        "driver",
    ];
    const EXTS: &[&str] = &["exe", "dll", "bat", "ps1", "vbs", "scr", "tmp", "dat", "js"];
    format!("{}{}.{}", rng.pick(STEMS), rng.range(1, 99), rng.pick(EXTS))
}

/// Fabricate a Windows file path IOC.
pub fn generate_file_path(rng: &mut Rng) -> String {
    const DIRS: &[&str] = &[
        "C:\\Windows\\System32",
        "C:\\Windows\\Temp",
        "C:\\ProgramData",
        "C:\\Users\\Public",
        "C:\\Windows\\SysWOW64",
        "C:\\Temp",
    ];
    format!("{}\\{}", rng.pick(DIRS), generate_file_name(rng))
}

/// Fabricate a registry key IOC.
pub fn generate_registry_key(rng: &mut Rng) -> String {
    const HIVES: &[&str] = &["HKLM", "HKCU"];
    const PATHS: &[&str] = &[
        "Software\\Microsoft\\Windows\\CurrentVersion\\Run",
        "Software\\Microsoft\\Windows\\CurrentVersion\\RunOnce",
        "System\\CurrentControlSet\\Services",
        "Software\\Classes\\CLSID",
    ];
    const NAMES: &[&str] = &[
        "Updater",
        "WinHelper",
        "SysCheck",
        "NetMon",
        "Loader",
        "Backup",
        "Sync",
    ];
    format!(
        "{}\\{}\\{}",
        rng.pick(HIVES),
        rng.pick(PATHS),
        rng.pick(NAMES)
    )
}

/// Fabricate a domain IOC.
pub fn generate_domain(rng: &mut Rng) -> String {
    const WORDS: &[&str] = &[
        "update", "cdn", "static", "api", "mail", "secure", "portal", "cloud", "files", "sync",
        "news", "img", "data", "auth", "panel", "gate",
    ];
    const SLDS: &[&str] = &[
        "checkerr",
        "fastpath",
        "zonetrack",
        "webstat",
        "hostline",
        "netpulse",
        "linkcore",
        "datahub",
        "sysboard",
        "infozone",
        "driftlane",
        "coldriver",
    ];
    const TLDS: &[&str] = &[
        "com", "net", "org", "ru", "cn", "info", "biz", "xyz", "top", "su",
    ];
    format!("{}.{}.{}", rng.pick(WORDS), rng.pick(SLDS), rng.pick(TLDS))
}

/// Fabricate an IPv4 IOC (avoids reserved 0/255 endpoints).
pub fn generate_ip(rng: &mut Rng) -> String {
    format!(
        "{}.{}.{}.{}",
        rng.range(1, 223),
        rng.range(0, 255),
        rng.range(0, 255),
        rng.range(1, 254)
    )
}

/// Fabricate a URL IOC.
pub fn generate_url(rng: &mut Rng) -> String {
    const PATHS: &[&str] = &[
        "gate.php",
        "panel/login",
        "upload",
        "dl/payload.bin",
        "api/v1/report",
        "cfg.dat",
    ];
    format!("http://{}/{}", generate_domain(rng), rng.pick(PATHS))
}

/// Fabricate an email IOC.
pub fn generate_email(rng: &mut Rng) -> String {
    const LOCALS: &[&str] = &[
        "billing", "invoice", "support", "admin", "hr", "noreply", "security", "alerts",
    ];
    format!("{}@{}", rng.pick(LOCALS), generate_domain(rng))
}

/// Fabricate a hex digest of `len` nybbles.
pub fn generate_hash(rng: &mut Rng, len: usize) -> String {
    const HEX: &[u8] = b"0123456789abcdef";
    let mut s = String::with_capacity(len);
    let mut has_letter = false;
    for i in 0..len {
        let mut c = HEX[rng.below(16)];
        // Guarantee at least one letter so the IOC scanner accepts it.
        if i == len - 1 && !has_letter {
            c = b'a' + (rng.below(6) as u8);
        }
        if c.is_ascii_alphabetic() {
            has_letter = true;
        }
        s.push(c as char);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_names_are_wellformed() {
        let mut rng = Rng::new(42);
        for _ in 0..50 {
            let m = generate_malware_name(&mut rng);
            assert!(m.chars().all(|c| c.is_ascii_lowercase()), "{m}");
            let cve = generate_cve(&mut rng);
            assert!(cve.starts_with("CVE-"), "{cve}");
            let ip = generate_ip(&mut rng);
            assert_eq!(ip.split('.').count(), 4);
            let h = generate_hash(&mut rng, 64);
            assert_eq!(h.len(), 64);
            assert!(h.bytes().all(|b| b.is_ascii_hexdigit()));
            assert!(h.bytes().any(|b| b.is_ascii_alphabetic()));
        }
    }

    #[test]
    fn alias_groups_lead_with_seed_names() {
        for group in MALWARE_ALIASES {
            assert!(SEED_MALWARE.contains(&group[0]), "{:?}", group);
        }
        for group in ACTOR_ALIASES {
            assert!(SEED_ACTORS.contains(&group[0]), "{:?}", group);
        }
    }

    #[test]
    fn seed_lists_are_duplicate_free() {
        for list in [
            SEED_MALWARE,
            SEED_ACTORS,
            SEED_TECHNIQUES,
            SEED_TOOLS,
            SEED_SOFTWARE,
        ] {
            let set: std::collections::HashSet<_> = list.iter().collect();
            assert_eq!(set.len(), list.len());
        }
    }

    #[test]
    fn generated_iocs_classify_correctly() {
        use kg_nlp::IocMatcher;
        let m = IocMatcher::standard();
        let mut rng = Rng::new(7);
        for _ in 0..30 {
            assert!(m.classify(&generate_file_name(&mut rng)).is_some());
            assert!(m.classify(&generate_file_path(&mut rng)).is_some());
            assert!(m.classify(&generate_registry_key(&mut rng)).is_some());
            assert!(m.classify(&generate_domain(&mut rng)).is_some());
            assert!(m.classify(&generate_ip(&mut rng)).is_some());
            assert!(m.classify(&generate_url(&mut rng)).is_some());
            assert!(m.classify(&generate_email(&mut rng)).is_some());
            assert!(m.classify(&generate_cve(&mut rng)).is_some());
            assert!(m.classify(&generate_hash(&mut rng, 32)).is_some());
        }
    }
}
