//! Ground-truth annotations for generated reports.
//!
//! The real OSCTI web offers no labels; the synthetic substrate produces them
//! as a by-product of generation, which is what lets experiment E3 measure
//! extraction F1 honestly. A [`GoldReport`] carries the canonical plain text
//! of the article plus exact entity spans and relations.

use kg_ontology::{EntityKind, RelationKind, ReportCategory};
use serde::{Deserialize, Serialize};

/// A labelled entity span in a report's canonical text.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldMention {
    pub kind: EntityKind,
    /// Byte offset of span start in [`GoldReport::text`].
    pub start: usize,
    /// Byte offset one past span end.
    pub end: usize,
    /// The span text (redundant with offsets; kept for readability).
    pub text: String,
}

/// A labelled relation between two mentions of the same report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldRelation {
    /// Index into [`GoldReport::mentions`].
    pub subject: usize,
    /// Index into [`GoldReport::mentions`].
    pub object: usize,
    /// The verb lemma connecting them.
    pub verb: String,
    /// The ontology relation kind.
    pub kind: RelationKind,
}

/// Full ground truth for one generated report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldReport {
    /// Source-local report key (matches the crawled URL).
    pub key: String,
    pub category: ReportCategory,
    pub title: String,
    /// Canonical plain text: paragraphs joined by `\n`.
    pub text: String,
    pub mentions: Vec<GoldMention>,
    pub relations: Vec<GoldRelation>,
    /// Structured metadata fields (key, value, value's entity kind if any).
    pub structured: Vec<(String, String, Option<EntityKind>)>,
}

impl GoldReport {
    /// Check internal consistency: spans in bounds, span text matches,
    /// relation indices valid.
    pub fn is_consistent(&self) -> bool {
        self.mentions.iter().all(|m| {
            m.end <= self.text.len()
                && m.start < m.end
                && self.text.get(m.start..m.end) == Some(m.text.as_str())
        }) && self
            .relations
            .iter()
            .all(|r| r.subject < self.mentions.len() && r.object < self.mentions.len())
    }

    /// Mentions of a given kind.
    pub fn mentions_of(&self, kind: EntityKind) -> impl Iterator<Item = &GoldMention> {
        self.mentions.iter().filter(move |m| m.kind == kind)
    }
}

/// Incremental builder that keeps text and annotations aligned.
///
/// Generators append literal text with [`TextBuilder::lit`] and entity names
/// with [`TextBuilder::entity`]; spans are computed at append time, so they
/// are correct by construction.
#[derive(Debug, Default)]
pub struct TextBuilder {
    text: String,
    mentions: Vec<GoldMention>,
    relations: Vec<GoldRelation>,
}

impl TextBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append literal text.
    pub fn lit(&mut self, s: &str) -> &mut Self {
        self.text.push_str(s);
        self
    }

    /// Append an entity name and record its span; returns the mention index.
    pub fn entity(&mut self, kind: EntityKind, name: &str) -> usize {
        let start = self.text.len();
        self.text.push_str(name);
        self.mentions.push(GoldMention {
            kind,
            start,
            end: self.text.len(),
            text: name.into(),
        });
        self.mentions.len() - 1
    }

    /// Record a relation between two previously appended mentions.
    pub fn relation(&mut self, subject: usize, verb: &str, object: usize, kind: RelationKind) {
        debug_assert!(subject < self.mentions.len() && object < self.mentions.len());
        self.relations.push(GoldRelation {
            subject,
            object,
            verb: verb.into(),
            kind,
        });
    }

    /// End the current paragraph (canonical separator is a single `\n`).
    pub fn end_paragraph(&mut self) {
        if !self.text.is_empty() && !self.text.ends_with('\n') {
            self.text.push('\n');
        }
    }

    /// Current text length (for span assertions in tests).
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Number of mentions so far.
    pub fn mention_count(&self) -> usize {
        self.mentions.len()
    }

    /// Finish, producing the text and annotations.
    pub fn finish(mut self) -> (String, Vec<GoldMention>, Vec<GoldRelation>) {
        // Canonical text has no trailing newline.
        while self.text.ends_with('\n') {
            self.text.pop();
        }
        (self.text, self.mentions, self.relations)
    }
}

/// Render BIO tags for a tokenised sentence against gold mentions.
///
/// A token whose span lies inside a gold mention gets `B-<stem>` (first
/// token) or `I-<stem>`; all others get `"O"`. Tokens partially overlapping a
/// mention boundary count as outside — the tokenizer's IOC protection should
/// prevent that case, and the strictness surfaces misalignment bugs in tests.
pub fn bio_tags(mentions: &[GoldMention], token_spans: &[(usize, usize)]) -> Vec<String> {
    let mut tags = vec!["O".to_owned(); token_spans.len()];
    for mention in mentions {
        let mut first = true;
        for (i, &(start, end)) in token_spans.iter().enumerate() {
            if start >= mention.start && end <= mention.end {
                let stem = mention.kind.tag_stem();
                tags[i] = format!("{}-{}", if first { "B" } else { "I" }, stem);
                first = false;
            }
        }
    }
    tags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_spans() {
        let mut b = TextBuilder::new();
        b.lit("The ");
        let m = b.entity(EntityKind::Malware, "wannacry");
        b.lit(" ransomware dropped ");
        let f = b.entity(EntityKind::FileName, "tasksche.exe");
        b.lit(".");
        b.relation(m, "drop", f, RelationKind::Drop);
        b.end_paragraph();
        let (text, mentions, relations) = b.finish();
        assert_eq!(text, "The wannacry ransomware dropped tasksche.exe.");
        assert_eq!(&text[mentions[0].start..mentions[0].end], "wannacry");
        assert_eq!(&text[mentions[1].start..mentions[1].end], "tasksche.exe");
        assert_eq!(relations[0].kind, RelationKind::Drop);
    }

    #[test]
    fn gold_report_consistency() {
        let mut b = TextBuilder::new();
        b.lit("x ");
        b.entity(EntityKind::Tool, "mimikatz");
        let (text, mentions, relations) = b.finish();
        let report = GoldReport {
            key: "k".into(),
            category: ReportCategory::Attack,
            title: "t".into(),
            text,
            mentions,
            relations,
            structured: Vec::new(),
        };
        assert!(report.is_consistent());

        let mut broken = report.clone();
        broken.mentions[0].end += 5;
        assert!(!broken.is_consistent());
    }

    #[test]
    fn bio_tagging_marks_first_and_inside() {
        let mentions = vec![GoldMention {
            kind: EntityKind::ThreatActor,
            start: 0,
            end: 13,
            text: "lazarus group".into(),
        }];
        // Tokens: "lazarus" [0,7), "group" [8,13), "struck" [14,20)
        let spans = vec![(0, 7), (8, 13), (14, 20)];
        assert_eq!(bio_tags(&mentions, &spans), vec!["B-ACT", "I-ACT", "O"]);
    }

    #[test]
    fn bio_tagging_ignores_partial_overlap() {
        let mentions = vec![GoldMention {
            kind: EntityKind::Malware,
            start: 2,
            end: 8,
            text: "motet?".into(),
        }];
        let spans = vec![(0, 6), (7, 12)];
        assert_eq!(bio_tags(&mentions, &spans), vec!["O", "O"]);
    }
}
