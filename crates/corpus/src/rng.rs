//! Deterministic RNG for corpus generation.
//!
//! SplitMix64: tiny, fast, excellent statistical quality for generation
//! purposes, and — critically — stable across platforms and releases, so a
//! seed fully determines the synthetic web. Every generator in this crate
//! derives child seeds by hashing a context string into the parent seed,
//! which makes generation *lazy*: page N of source S can be produced without
//! generating pages 0..N-1.

/// SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seed a generator.
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// Derive a child generator from a context label (lazy generation key).
    pub fn derive(&self, label: &str) -> Rng {
        let mut h = self.0 ^ 0x9E37_79B9_7F4A_7C15;
        for &b in label.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01B3);
            h = h.rotate_left(23);
        }
        Rng(h)
    }

    /// Derive a child generator from an index.
    pub fn derive_idx(&self, label: &str, idx: u64) -> Rng {
        let mut child = self.derive(label);
        child.0 ^= idx.wrapping_mul(0xA24B_AED4_963E_E407);
        child.0 = child.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        child
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Pick a uniform element of a nonempty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Sample `k` distinct indices from `0..n` (k clamped to n), in random
    /// order (partial Fisher–Yates).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derive_isolates_streams() {
        let root = Rng::new(7);
        let mut a = root.derive("alpha");
        let mut b = root.derive("beta");
        assert_ne!(a.next_u64(), b.next_u64());
        // Re-derivation reproduces the stream.
        let mut a2 = root.derive("alpha");
        let mut a3 = root.derive("alpha");
        assert_eq!(a2.next_u64(), a3.next_u64());
    }

    #[test]
    fn derive_idx_differs_by_index() {
        let root = Rng::new(7);
        let mut x = root.derive_idx("page", 0);
        let mut y = root.derive_idx("page", 1);
        assert_ne!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn below_and_range_stay_in_bounds() {
        let mut r = Rng::new(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range(5, 9);
            assert!((5..=9).contains(&v));
        }
    }

    #[test]
    fn unit_is_uniformish() {
        let mut r = Rng::new(11);
        let mean: f64 = (0..10_000).map(|_| r.unit()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn sample_indices_distinct_and_clamped() {
        let mut r = Rng::new(5);
        let s = r.sample_indices(10, 4);
        assert_eq!(s.len(), 4);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 4);
        assert_eq!(r.sample_indices(3, 10).len(), 3);
    }
}
