//! Synthetic OSCTI web substrate (the substitute for the paper's 40+ live
//! security websites — see DESIGN.md's substitution table).
//!
//! The crate provides, bottom-up:
//!
//! - [`rng`] — deterministic SplitMix64 randomness with derivable streams.
//! - [`names`] — seed entity names (the curated-list material) plus
//!   generators for the fabricated long tail.
//! - [`world`] — a consistent threat universe: malware behaviours, actor
//!   tradecraft, vulnerabilities.
//! - [`truth`] — gold annotations and the span-safe [`truth::TextBuilder`].
//! - [`inflect`] — verb inflection for the prose generator.
//! - [`article`] — report prose generation with exact gold labels.
//! - [`source`] — the 42-source registry and per-source HTML dialects.
//! - [`web`] — the fetchable web: latency, failures, pagination, ads, and
//!   time-gated publication for incremental-crawl experiments.
//!
//! Everything is a pure function of a `u64` seed: tests, benches and the
//! 120K-report scale run are exactly reproducible.

pub mod article;
pub mod inflect;
pub mod names;
pub mod rng;
pub mod source;
pub mod truth;
pub mod web;
pub mod world;

pub use article::ArticleGenerator;
pub use rng::Rng;
pub use source::{standard_sources, SourceKind, SourceSpec, TemplateStyle};
pub use truth::{bio_tags, GoldMention, GoldRelation, GoldReport, TextBuilder};
pub use web::{FaultProfile, FetchResponse, SimulatedWeb, BODY_TERMINATOR};
pub use world::{ActorProfile, CuratedLists, MalwareProfile, World, WorldConfig};

/// Convenience constructor: a complete simulated web with the standard 42
/// sources, `articles_per_source` scale and a single seed.
pub fn standard_web(articles_per_source: usize, seed: u64) -> SimulatedWeb {
    let world = World::generate(WorldConfig {
        seed,
        ..WorldConfig::default()
    });
    SimulatedWeb::new(world, standard_sources(articles_per_source), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_web_serves_the_demo_entities() {
        let web = standard_web(20, 42);
        assert_eq!(web.sources().len(), 42);
        assert!(web.world().malware_by_name("wannacry").is_some());
        assert!(web.world().actor_by_name("cozyduke").is_some());
    }
}
