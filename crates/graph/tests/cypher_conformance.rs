//! Broader Cypher-subset conformance tests: edge variables, literals,
//! pagination edges, error paths and write statistics.

use kg_graph::{GraphStore, Value};

fn graph() -> GraphStore {
    let mut g = GraphStore::new();
    let a = g.create_node(
        "Malware",
        [("name", Value::from("alpha")), ("score", Value::Int(9))],
    );
    let b = g.create_node(
        "Malware",
        [("name", Value::from("beta")), ("score", Value::Int(3))],
    );
    let c = g.create_node("Tool", [("name", Value::from("gamma"))]);
    g.create_edge(a, "USES", c, [("confidence", Value::Float(0.8))])
        .unwrap();
    g.create_edge(b, "USES", c, [("confidence", Value::Float(0.2))])
        .unwrap();
    g
}

#[test]
fn edge_variables_bind_and_expose_properties() {
    let mut g = graph();
    let r = g
        .query("MATCH (m)-[r:USES]->(t) WHERE r.confidence > 0.5 RETURN m.name, r.confidence")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::from("alpha"));
    assert_eq!(r.rows[0][1], Value::Float(0.8));
}

#[test]
fn returning_edges_and_literals() {
    let mut g = graph();
    let r = g
        .query("MATCH (m)-[r]->(t) RETURN r, 42, 'label' LIMIT 1")
        .unwrap();
    assert!(matches!(r.rows[0][0], Value::Edge(_)));
    assert_eq!(r.rows[0][1], Value::Int(42));
    assert_eq!(r.rows[0][2], Value::from("label"));
    assert_eq!(r.columns.len(), 3);
}

#[test]
fn skip_beyond_end_and_limit_zero() {
    let mut g = graph();
    let r = g.query("MATCH (n) RETURN n SKIP 99").unwrap();
    assert!(r.rows.is_empty());
    let r = g.query("MATCH (n) RETURN n LIMIT 0").unwrap();
    assert!(r.rows.is_empty());
}

#[test]
fn order_by_numeric_descending() {
    let mut g = graph();
    let r = g
        .query("MATCH (m:Malware) RETURN m.name ORDER BY m.score DESC")
        .unwrap();
    let names: Vec<&str> = r.rows.iter().map(|row| row[0].as_text().unwrap()).collect();
    assert_eq!(names, vec!["alpha", "beta"]);
}

#[test]
fn string_ops_on_non_text_are_null_not_error() {
    let mut g = graph();
    // score is an Int; CONTAINS on it evaluates to NULL → filtered out.
    let r = g
        .query("MATCH (m:Malware) WHERE m.score CONTAINS '9' RETURN m")
        .unwrap();
    assert!(r.rows.is_empty());
}

#[test]
fn aliases_name_columns() {
    let mut g = graph();
    let r = g
        .query("MATCH (m:Malware) RETURN m.name AS malware LIMIT 1")
        .unwrap();
    assert_eq!(r.columns, vec!["malware"]);
}

#[test]
fn count_of_property_skips_nulls() {
    let mut g = graph();
    // Tools have no score; count(n.score) counts only malware.
    let r = g.query("MATCH (n) RETURN count(n.score)").unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
    let r = g.query("MATCH (n) RETURN count(*)").unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(3)]]);
}

#[test]
fn merge_requires_label_and_name() {
    let mut g = graph();
    assert!(g.query("MERGE (x {name: 'nolabel'})").is_err());
    assert!(g.query("MERGE (x:Malware {score: 5})").is_err());
}

#[test]
fn delete_edge_variable() {
    let mut g = graph();
    let r = g.query("MATCH (m)-[r:USES]->(t) DELETE r").unwrap();
    assert_eq!(r.stats.edges_deleted, 2);
    assert_eq!(g.edge_count(), 0);
    assert_eq!(g.node_count(), 3, "nodes survive edge deletion");
}

#[test]
fn create_reuses_bound_variables_within_statement() {
    let mut g = GraphStore::new();
    let r = g
        .query("CREATE (a:Malware {name: 'x'})-[:USES]->(t:Tool {name: 'y'}), (a)-[:TARGETS]->(s:Software {name: 'z'})")
        .unwrap();
    assert_eq!(r.stats.nodes_created, 3);
    assert_eq!(r.stats.edges_created, 2);
    let a = g.node_by_name("Malware", "x").unwrap();
    assert_eq!(g.outgoing(a).len(), 2);
}

#[test]
fn incoming_direction_in_create() {
    let mut g = GraphStore::new();
    g.query("CREATE (f:FileName {name: 'a.exe'})<-[:DROP]-(m:Malware {name: 'm'})")
        .unwrap();
    let m = g.node_by_name("Malware", "m").unwrap();
    let f = g.node_by_name("FileName", "a.exe").unwrap();
    let edge = g.outgoing(m);
    assert_eq!(edge.len(), 1);
    assert_eq!(edge[0].to, f);
}

#[test]
fn read_only_path_rejects_all_writes() {
    let g = graph();
    for q in [
        "CREATE (x:Malware {name: 'w'})",
        "MERGE (x:Malware {name: 'w'})",
        "MATCH (n) DETACH DELETE n",
    ] {
        assert!(g.query_readonly(q).is_err(), "{q}");
    }
    assert!(g.query_readonly("MATCH (n) RETURN count(*)").is_ok());
}

#[test]
fn boolean_precedence_not_binds_tighter_than_and() {
    let mut g = graph();
    // NOT m.score > 5 AND m.name = 'beta'  ≡  (NOT (m.score > 5)) AND (...).
    let r = g
        .query("MATCH (m:Malware) WHERE NOT m.score > 5 AND m.name = 'beta' RETURN m.name")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::from("beta")]]);
}

#[test]
fn self_loops_match_once_per_edge() {
    let mut g = GraphStore::new();
    let n = g.create_node("Malware", [("name", Value::from("ouroboros"))]);
    g.create_edge(n, "RELATED_TO", n, [] as [(&str, Value); 0])
        .unwrap();
    let r = g
        .query("MATCH (a)-[:RELATED_TO]->(b) RETURN a.name, b.name")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    // Undirected match visits the self-loop from both directions but the
    // relationship-uniqueness rule prevents reuse within a path.
    let r = g
        .query("MATCH (a)-[:RELATED_TO]-(b)-[:RELATED_TO]-(c) RETURN a")
        .unwrap();
    assert!(r.rows.is_empty());
}

#[test]
fn long_chain_pattern() {
    let mut g = GraphStore::new();
    let ids: Vec<_> = (0..5)
        .map(|i| g.create_node("N", [("name", Value::from(format!("n{i}")))]))
        .collect();
    for w in ids.windows(2) {
        g.create_edge(w[0], "NEXT", w[1], [] as [(&str, Value); 0])
            .unwrap();
    }
    let r = g
        .query(
            "MATCH (a)-[:NEXT]->(b)-[:NEXT]->(c)-[:NEXT]->(d)-[:NEXT]->(e) RETURN a.name, e.name",
        )
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::from("n0"), Value::from("n4")]]);
}

#[test]
fn distinct_on_projected_values() {
    let mut g = graph();
    let r = g
        .query("MATCH (m:Malware)-[:USES]->(t) RETURN DISTINCT t.name")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
}

// --- adversarial inputs: hostile queries must come back as errors, ---
// --- never stack overflows or panics ---------------------------------

#[test]
fn deeply_nested_parens_error_instead_of_overflowing() {
    let mut g = graph();
    let depth = 50_000;
    let q = format!(
        "MATCH (m) WHERE {}m.score > 1{} RETURN m",
        "(".repeat(depth),
        ")".repeat(depth)
    );
    let err = g.query(&q).unwrap_err();
    assert!(err.to_string().contains("nest"), "{err}");
    // Within the limit the same shape parses and runs fine.
    let ok_depth = kg_graph::cypher::MAX_EXPR_DEPTH - 10;
    let q = format!(
        "MATCH (m:Malware) WHERE {}m.score > 1{} RETURN count(*)",
        "(".repeat(ok_depth),
        ")".repeat(ok_depth)
    );
    assert_eq!(g.query(&q).unwrap().rows, vec![vec![Value::Int(2)]]);
}

#[test]
fn long_not_chains_error_instead_of_overflowing() {
    let mut g = graph();
    let q = format!(
        "MATCH (m) WHERE {} m.score > 1 RETURN m",
        "NOT ".repeat(50_000)
    );
    assert!(g.query(&q).is_err());
    let q = format!(
        "MATCH (m:Malware) WHERE {} m.score > 100 RETURN count(*)",
        "NOT ".repeat(7)
    );
    // Odd number of NOTs over a false comparison → true for both rows.
    assert_eq!(g.query(&q).unwrap().rows, vec![vec![Value::Int(2)]]);
}

#[test]
fn over_long_patterns_error_instead_of_exploding() {
    let mut g = graph();
    let hops = kg_graph::cypher::MAX_PATTERN_HOPS + 1;
    let q = format!("MATCH (a){} RETURN a", "-[:NEXT]->()".repeat(hops));
    let err = g.query(&q).unwrap_err();
    assert!(err.to_string().contains("hops"), "{err}");
}

#[test]
fn aggregates_in_row_contexts_are_clean_errors() {
    let mut g = graph();
    // count(...) is only meaningful in RETURN; in WHERE (or nested inside
    // another count) it must fail as a query error, not a panic.
    for q in [
        "MATCH (m) WHERE count(*) > 1 RETURN m",
        "MATCH (m) WHERE count(m) = 2 RETURN m",
        "MATCH (m) RETURN count(count(*))",
    ] {
        assert!(g.query(q).is_err(), "{q}");
    }
}

#[test]
fn parameters_bind_in_where_and_return() {
    let g = graph();
    let mut params = kg_graph::Params::new();
    params.insert("who".into(), Value::from("alpha"));
    params.insert("floor".into(), Value::Int(5));
    let r = g
        .query_readonly_with_params(
            "MATCH (m:Malware) WHERE m.name = $who RETURN m.name, m.score",
            &params,
        )
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::from("alpha"), Value::Int(9)]]);
    let r = g
        .query_readonly_with_params(
            "MATCH (m:Malware) WHERE m.score > $floor RETURN m.name, $who",
            &params,
        )
        .unwrap();
    assert_eq!(
        r.rows,
        vec![vec![Value::from("alpha"), Value::from("alpha")]]
    );
}

#[test]
fn unknown_parameters_are_clean_bind_errors_never_panics() {
    let g = graph();
    let empty = kg_graph::Params::new();
    for q in [
        "MATCH (m) WHERE m.name = $missing RETURN m",
        "MATCH (m) RETURN $missing",
        "MATCH (m) RETURN m ORDER BY $missing",
        "MATCH (m) WHERE $a = $b RETURN m",
        "MATCH (m) WHERE m.name = 'alpha' AND m.score = $late RETURN m",
    ] {
        let err = g.query_readonly_with_params(q, &empty).unwrap_err();
        assert!(
            matches!(err, kg_graph::cypher::CypherError::Bind(_)),
            "{q}: {err}"
        );
        assert!(err.to_string().contains("unbound parameter"), "{q}: {err}");
    }
    // A bound parameter elsewhere doesn't excuse the unbound one.
    let mut partial = kg_graph::Params::new();
    partial.insert("a".into(), Value::Int(1));
    let err = g
        .query_readonly_with_params("MATCH (m) WHERE $a = $b RETURN m", &partial)
        .unwrap_err();
    assert!(err.to_string().contains("$b"), "{err}");
}

#[test]
fn hostile_parameter_spellings_never_panic() {
    let g = graph();
    let empty = kg_graph::Params::new();
    for q in [
        "MATCH (m) WHERE m.name = $ RETURN m",
        "MATCH (m) WHERE m.name = $1name RETURN m",
        "MATCH (m) WHERE m.name = $$x RETURN m",
        "MATCH (m) RETURN $",
        "MATCH (m {name: $who-}) RETURN m",
        "$param",
    ] {
        assert!(g.query_readonly_with_params(q, &empty).is_err(), "{q:?}");
    }
}

#[test]
fn hop_limits_hold_after_planning() {
    let g = graph();
    // Var-length ranges past the parser cap are rejected before any plan
    // exists; in-range ones execute through the planner without blowup.
    let over = kg_graph::cypher::MAX_PATTERN_HOPS + 1;
    let err = g
        .query_readonly(&format!("MATCH (a)-[*1..{over}]->(b) RETURN b"))
        .unwrap_err();
    assert!(err.to_string().contains("hops"), "{err}");
    let r = g
        .query_readonly("MATCH (a:Malware)-[*1..2]->(b) RETURN a.name, b.name ORDER BY a.name")
        .unwrap();
    assert_eq!(r.rows.len(), 2, "{:?}", r.rows);
}

#[test]
fn hostile_garbage_inputs_never_panic() {
    let mut g = graph();
    for q in [
        "",
        "   ",
        "MATCH",
        "MATCH (",
        "MATCH (a RETURN a",
        "MATCH (a)-[->(b) RETURN a",
        "MATCH (a) WHERE RETURN a",
        "MATCH (a) RETURN",
        "MATCH (a) RETURN a ORDER BY",
        "MATCH (a) RETURN a LIMIT x",
        "MATCH (a) RETURN a SKIP -1",
        "RETURN 1",
        "MATCH (a) WHERE a. RETURN a",
        "MATCH (a) WHERE 'unterminated RETURN a",
        "MERGE",
        "CREATE ()-[:X]->",
        "DELETE a",
        "MATCH (a) DELETE",
        "\u{0}\u{1}\u{2}",
    ] {
        assert!(g.query(q).is_err(), "{q:?} should be an error");
    }
}
