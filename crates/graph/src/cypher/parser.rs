//! Recursive-descent parser for the Cypher subset.

use super::lexer::{lex, Tok};
use super::{
    CmpOp, CypherError, Direction, Expr, NodePattern, Pattern, Query, RelPattern, Return,
    ReturnItem,
};
use crate::value::Value;

/// Maximum expression nesting depth (parens, `NOT` chains, `count(...)`).
/// Unbounded nesting would recurse the parser off the stack — an abort, not
/// an error — on adversarial input; past this limit parsing fails cleanly.
pub const MAX_EXPR_DEPTH: usize = 128;

/// Maximum relationship hops in a single path pattern. Execution recurses
/// once per hop, so a pathological million-hop pattern must be rejected at
/// parse time instead of overflowing the stack at match time.
pub const MAX_PATTERN_HOPS: usize = 256;

/// Parse a query string into an AST.
pub fn parse(text: &str) -> Result<Query, CypherError> {
    let toks = lex(text)?;
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    let q = p.query()?;
    p.expect_end()?;
    Ok(q)
}

/// Parse a standalone WHERE-style predicate expression (no MATCH/RETURN
/// framing) — the compiled-predicate form standing queries share with the
/// Cypher `WHERE` evaluator.
pub fn parse_predicate(text: &str) -> Result<Expr, CypherError> {
    let toks = lex(text)?;
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    let expr = p.expr()?;
    p.expect_end()?;
    Ok(expr)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    /// Current expression nesting depth (see [`MAX_EXPR_DEPTH`]).
    depth: usize,
}

impl Parser {
    fn expect_end(&self) -> Result<(), CypherError> {
        if self.pos != self.toks.len() {
            return Err(CypherError::Parse(format!(
                "trailing input at token {}: {:?}",
                self.pos,
                self.toks.get(self.pos)
            )));
        }
        Ok(())
    }

    fn descend(&mut self) -> Result<(), CypherError> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            return Err(CypherError::Parse(format!(
                "expression nesting exceeds {MAX_EXPR_DEPTH} levels"
            )));
        }
        Ok(())
    }

    fn ascend(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), CypherError> {
        match self.next() {
            Some(t) if &t == tok => Ok(()),
            other => Err(CypherError::Parse(format!(
                "expected {tok:?}, found {other:?}"
            ))),
        }
    }

    /// Case-insensitive keyword check without consuming.
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, CypherError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(CypherError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn query(&mut self) -> Result<Query, CypherError> {
        if self.eat_keyword("create") {
            let patterns = self.patterns()?;
            return Ok(Query::Create { patterns });
        }
        if self.eat_keyword("merge") {
            let pattern = self.pattern()?;
            let ret = if self.eat_keyword("return") {
                Some(self.return_clause()?)
            } else {
                None
            };
            return Ok(Query::Merge { pattern, ret });
        }
        if !self.eat_keyword("match") {
            return Err(CypherError::Parse(
                "query must start with MATCH, CREATE or MERGE".into(),
            ));
        }
        let patterns = self.patterns()?;
        let filter = if self.eat_keyword("where") {
            Some(self.expr()?)
        } else {
            None
        };
        if self.eat_keyword("detach") {
            if !self.eat_keyword("delete") {
                return Err(CypherError::Parse(
                    "DETACH must be followed by DELETE".into(),
                ));
            }
            let vars = self.var_list()?;
            return Ok(Query::Delete {
                patterns,
                filter,
                vars,
                detach: true,
            });
        }
        if self.eat_keyword("delete") {
            let vars = self.var_list()?;
            return Ok(Query::Delete {
                patterns,
                filter,
                vars,
                detach: false,
            });
        }
        if !self.eat_keyword("return") {
            return Err(CypherError::Parse("expected RETURN or DELETE".into()));
        }
        let ret = self.return_clause()?;
        Ok(Query::Read {
            patterns,
            filter,
            ret,
        })
    }

    fn var_list(&mut self) -> Result<Vec<String>, CypherError> {
        let mut vars = vec![self.ident()?];
        while matches!(self.peek(), Some(Tok::Comma)) {
            self.next();
            vars.push(self.ident()?);
        }
        Ok(vars)
    }

    fn patterns(&mut self) -> Result<Vec<Pattern>, CypherError> {
        let mut patterns = vec![self.pattern()?];
        while matches!(self.peek(), Some(Tok::Comma)) {
            self.next();
            patterns.push(self.pattern()?);
        }
        Ok(patterns)
    }

    fn pattern(&mut self) -> Result<Pattern, CypherError> {
        let mut pattern = Pattern {
            nodes: vec![self.node_pattern()?],
            rels: Vec::new(),
        };
        while let Some(Tok::Dash) | Some(Tok::BackArrow) = self.peek() {
            if pattern.rels.len() >= MAX_PATTERN_HOPS {
                return Err(CypherError::Parse(format!(
                    "pattern exceeds {MAX_PATTERN_HOPS} relationship hops"
                )));
            }
            let rel = self.rel_pattern()?;
            let node = self.node_pattern()?;
            pattern.rels.push(rel);
            pattern.nodes.push(node);
        }
        Ok(pattern)
    }

    fn node_pattern(&mut self) -> Result<NodePattern, CypherError> {
        self.expect(&Tok::LParen)?;
        let mut node = NodePattern {
            var: None,
            label: None,
            props: Vec::new(),
        };
        if let Some(Tok::Ident(_)) = self.peek() {
            node.var = Some(self.ident()?);
        }
        if matches!(self.peek(), Some(Tok::Colon)) {
            self.next();
            node.label = Some(self.ident()?);
        }
        if matches!(self.peek(), Some(Tok::LBrace)) {
            node.props = self.prop_map()?;
        }
        self.expect(&Tok::RParen)?;
        Ok(node)
    }

    /// `-[v:TYPE]->`, `<-[v:TYPE]-`, `-[v:TYPE]-`, or the var-length forms
    /// `-[*n]->` / `-[:TYPE*lo..hi]->`.
    fn rel_pattern(&mut self) -> Result<RelPattern, CypherError> {
        let leading_back = matches!(self.peek(), Some(Tok::BackArrow));
        if leading_back {
            self.next();
        } else {
            self.expect(&Tok::Dash)?;
        }
        let mut rel = RelPattern {
            var: None,
            rel_type: None,
            direction: Direction::Either,
            hops: None,
        };
        if matches!(self.peek(), Some(Tok::LBracket)) {
            self.next();
            if let Some(Tok::Ident(_)) = self.peek() {
                rel.var = Some(self.ident()?);
            }
            if matches!(self.peek(), Some(Tok::Colon)) {
                self.next();
                rel.rel_type = Some(self.ident()?);
            }
            if matches!(self.peek(), Some(Tok::Star)) {
                self.next();
                rel.hops = Some(self.hop_range()?);
                if rel.var.is_some() {
                    return Err(CypherError::Parse(
                        "a var-length relationship cannot bind an edge variable".into(),
                    ));
                }
            }
            self.expect(&Tok::RBracket)?;
        }
        match self.next() {
            Some(Tok::Arrow) => {
                if leading_back {
                    return Err(CypherError::Parse("<-[..]-> is not a valid pattern".into()));
                }
                rel.direction = Direction::Out;
            }
            Some(Tok::Dash) => {
                rel.direction = if leading_back {
                    Direction::In
                } else {
                    Direction::Either
                };
            }
            other => {
                return Err(CypherError::Parse(format!(
                    "expected -> or -, found {other:?}"
                )))
            }
        }
        Ok(rel)
    }

    /// The `lo..hi` (or bare `n`) bounds after `*` in a var-length pattern.
    fn hop_range(&mut self) -> Result<(usize, usize), CypherError> {
        let lo = self.usize_literal()?;
        let hi = if matches!(self.peek(), Some(Tok::Dot)) {
            self.expect(&Tok::Dot)?;
            self.expect(&Tok::Dot)?;
            self.usize_literal()?
        } else {
            lo
        };
        if lo == 0 {
            return Err(CypherError::Parse(
                "var-length patterns require at least one hop (*0 is not supported)".into(),
            ));
        }
        if hi < lo {
            return Err(CypherError::Parse(format!(
                "var-length range *{lo}..{hi} is empty"
            )));
        }
        if hi > MAX_PATTERN_HOPS {
            return Err(CypherError::Parse(format!(
                "var-length range exceeds {MAX_PATTERN_HOPS} hops"
            )));
        }
        Ok((lo, hi))
    }

    fn prop_map(&mut self) -> Result<Vec<(String, Value)>, CypherError> {
        self.expect(&Tok::LBrace)?;
        let mut props = Vec::new();
        loop {
            if matches!(self.peek(), Some(Tok::RBrace)) {
                self.next();
                break;
            }
            let key = self.ident()?;
            self.expect(&Tok::Colon)?;
            let value = self.literal()?;
            props.push((key, value));
            match self.peek() {
                Some(Tok::Comma) => {
                    self.next();
                }
                Some(Tok::RBrace) => {}
                other => {
                    return Err(CypherError::Parse(format!(
                        "expected , or }} in property map, found {other:?}"
                    )))
                }
            }
        }
        Ok(props)
    }

    fn literal(&mut self) -> Result<Value, CypherError> {
        match self.next() {
            Some(Tok::Str(s)) => Ok(Value::Text(s)),
            Some(Tok::Int(i)) => Ok(Value::Int(i)),
            Some(Tok::Float(f)) => Ok(Value::Float(f)),
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("null") => Ok(Value::Null),
            other => Err(CypherError::Parse(format!(
                "expected literal, found {other:?}"
            ))),
        }
    }

    // ---- expressions (precedence: OR < AND < NOT < comparison < atom) -----

    fn expr(&mut self) -> Result<Expr, CypherError> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("or") {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, CypherError> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("and") {
            let right = self.not_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, CypherError> {
        if self.eat_keyword("not") {
            self.descend()?;
            let inner = self.not_expr()?;
            self.ascend();
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, CypherError> {
        let left = self.atom()?;
        let op = match self.peek() {
            Some(Tok::Eq) => Some(CmpOp::Eq),
            Some(Tok::Ne) => Some(CmpOp::Ne),
            Some(Tok::Lt) => Some(CmpOp::Lt),
            Some(Tok::Le) => Some(CmpOp::Le),
            Some(Tok::Gt) => Some(CmpOp::Gt),
            Some(Tok::Ge) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.next();
            let right = self.atom()?;
            return Ok(Expr::Compare(Box::new(left), op, Box::new(right)));
        }
        if self.at_keyword("contains") {
            self.next();
            let right = self.atom()?;
            return Ok(Expr::Contains(Box::new(left), Box::new(right)));
        }
        if self.at_keyword("starts") {
            self.next();
            if !self.eat_keyword("with") {
                return Err(CypherError::Parse("STARTS must be followed by WITH".into()));
            }
            let right = self.atom()?;
            return Ok(Expr::StartsWith(Box::new(left), Box::new(right)));
        }
        if self.at_keyword("ends") {
            self.next();
            if !self.eat_keyword("with") {
                return Err(CypherError::Parse("ENDS must be followed by WITH".into()));
            }
            let right = self.atom()?;
            return Ok(Expr::EndsWith(Box::new(left), Box::new(right)));
        }
        Ok(left)
    }

    fn atom(&mut self) -> Result<Expr, CypherError> {
        match self.peek().cloned() {
            Some(Tok::LParen) => {
                self.next();
                self.descend()?;
                let e = self.expr()?;
                self.ascend();
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Str(_)) | Some(Tok::Int(_)) | Some(Tok::Float(_)) => {
                Ok(Expr::Literal(self.literal()?))
            }
            Some(Tok::Param(name)) => {
                self.next();
                Ok(Expr::Param(name))
            }
            Some(Tok::Ident(name)) => {
                if name.eq_ignore_ascii_case("count") {
                    self.next();
                    self.expect(&Tok::LParen)?;
                    if matches!(self.peek(), Some(Tok::Star)) {
                        self.next();
                        self.expect(&Tok::RParen)?;
                        return Ok(Expr::CountStar);
                    }
                    self.descend()?;
                    let inner = self.atom()?;
                    self.ascend();
                    self.expect(&Tok::RParen)?;
                    return Ok(Expr::Count(Box::new(inner)));
                }
                if name.eq_ignore_ascii_case("true")
                    || name.eq_ignore_ascii_case("false")
                    || name.eq_ignore_ascii_case("null")
                {
                    return Ok(Expr::Literal(self.literal()?));
                }
                self.next();
                if matches!(self.peek(), Some(Tok::Dot)) {
                    self.next();
                    let prop = self.ident()?;
                    return Ok(Expr::Prop(name, prop));
                }
                Ok(Expr::Var(name))
            }
            other => Err(CypherError::Parse(format!(
                "expected expression, found {other:?}"
            ))),
        }
    }

    fn return_clause(&mut self) -> Result<Return, CypherError> {
        let mut ret = Return {
            distinct: self.eat_keyword("distinct"),
            ..Return::default()
        };
        loop {
            let start = self.pos;
            let expr = self.expr()?;
            let text = self.render_tokens(start, self.pos);
            let alias = if self.eat_keyword("as") {
                Some(self.ident()?)
            } else {
                None
            };
            ret.items.push(ReturnItem { expr, alias, text });
            if matches!(self.peek(), Some(Tok::Comma)) {
                self.next();
            } else {
                break;
            }
        }
        if self.eat_keyword("order") {
            if !self.eat_keyword("by") {
                return Err(CypherError::Parse("ORDER must be followed by BY".into()));
            }
            let expr = self.expr()?;
            let asc = if self.eat_keyword("desc") {
                false
            } else {
                self.eat_keyword("asc");
                true
            };
            ret.order_by = Some((expr, asc));
        }
        if self.eat_keyword("skip") {
            ret.skip = Some(self.usize_literal()?);
        }
        if self.eat_keyword("limit") {
            ret.limit = Some(self.usize_literal()?);
        }
        Ok(ret)
    }

    fn usize_literal(&mut self) -> Result<usize, CypherError> {
        match self.next() {
            Some(Tok::Int(i)) if i >= 0 => Ok(i as usize),
            other => Err(CypherError::Parse(format!(
                "expected non-negative integer, found {other:?}"
            ))),
        }
    }

    fn render_tokens(&self, from: usize, to: usize) -> String {
        let mut s = String::new();
        for t in &self.toks[from..to] {
            match t {
                Tok::Ident(x) => s.push_str(x),
                Tok::Str(x) => {
                    s.push('"');
                    s.push_str(x);
                    s.push('"');
                }
                Tok::Int(i) => s.push_str(&i.to_string()),
                Tok::Float(f) => s.push_str(&f.to_string()),
                Tok::Param(x) => {
                    s.push('$');
                    s.push_str(x);
                }
                Tok::Dot => s.push('.'),
                Tok::Star => s.push('*'),
                Tok::LParen => s.push('('),
                Tok::RParen => s.push(')'),
                _ => s.push(' '),
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_demo_query() {
        let q = parse("match (n) where n.name = \"wannacry\" return n").unwrap();
        match q {
            Query::Read {
                patterns,
                filter,
                ret,
            } => {
                assert_eq!(patterns.len(), 1);
                assert_eq!(patterns[0].nodes[0].var.as_deref(), Some("n"));
                assert!(matches!(filter, Some(Expr::Compare(..))));
                assert_eq!(ret.items.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_path_pattern_with_types() {
        let q = parse("MATCH (m:Malware)-[r:DROP]->(f:FileName) RETURN m.name, f.name").unwrap();
        match q {
            Query::Read { patterns, .. } => {
                let p = &patterns[0];
                assert_eq!(p.nodes.len(), 2);
                assert_eq!(p.rels.len(), 1);
                assert_eq!(p.rels[0].rel_type.as_deref(), Some("DROP"));
                assert_eq!(p.rels[0].direction, Direction::Out);
                assert_eq!(p.nodes[1].label.as_deref(), Some("FileName"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_incoming_and_undirected() {
        let q = parse("MATCH (a)<-[:USES]-(b) RETURN a").unwrap();
        if let Query::Read { patterns, .. } = q {
            assert_eq!(patterns[0].rels[0].direction, Direction::In);
        } else {
            panic!();
        }
        let q = parse("MATCH (a)-[]-(b) RETURN a").unwrap();
        if let Query::Read { patterns, .. } = q {
            assert_eq!(patterns[0].rels[0].direction, Direction::Either);
        } else {
            panic!();
        }
    }

    #[test]
    fn parses_property_map_and_literals() {
        let q = parse("MATCH (n:Malware {name: 'wannacry', score: 3.5}) RETURN n").unwrap();
        if let Query::Read { patterns, .. } = q {
            let props = &patterns[0].nodes[0].props;
            assert_eq!(props[0], ("name".into(), Value::from("wannacry")));
            assert_eq!(props[1], ("score".into(), Value::Float(3.5)));
        } else {
            panic!();
        }
    }

    #[test]
    fn parses_boolean_where() {
        let q = parse(
            "MATCH (n) WHERE n.name STARTS WITH 'wanna' AND NOT n.score > 3 OR n.x = true RETURN n",
        )
        .unwrap();
        if let Query::Read {
            filter: Some(e), ..
        } = q
        {
            assert!(matches!(e, Expr::Or(..)));
        } else {
            panic!();
        }
    }

    #[test]
    fn parses_aggregates_order_limit() {
        let q = parse(
            "MATCH (a:ThreatActor)-[:USES]->(t) RETURN a.name, count(t) AS uses ORDER BY count(t) DESC SKIP 1 LIMIT 5",
        )
        .unwrap();
        if let Query::Read { ret, .. } = q {
            assert_eq!(ret.items.len(), 2);
            assert!(ret.items[1].expr.is_aggregate());
            assert_eq!(ret.items[1].alias.as_deref(), Some("uses"));
            assert_eq!(ret.limit, Some(5));
            assert_eq!(ret.skip, Some(1));
            let (_, asc) = ret.order_by.unwrap();
            assert!(!asc);
        } else {
            panic!();
        }
    }

    #[test]
    fn parses_create_merge_delete() {
        assert!(matches!(
            parse("CREATE (m:Malware {name: 'x'})-[:DROP]->(f:FileName {name: 'y.exe'})"),
            Ok(Query::Create { .. })
        ));
        assert!(matches!(
            parse("MERGE (m:Malware {name: 'x'})"),
            Ok(Query::Merge { .. })
        ));
        assert!(matches!(
            parse("MATCH (m:Malware) WHERE m.name = 'x' DETACH DELETE m"),
            Ok(Query::Delete { detach: true, .. })
        ));
    }

    #[test]
    fn parse_predicate_accepts_where_expressions_only() {
        let e = parse_predicate("n.label = 'Technique' AND n.name CONTAINS 'T1486'").unwrap();
        assert!(matches!(e, Expr::And(..)));
        // Full query framing is trailing input for a predicate.
        assert!(parse_predicate("MATCH (n) RETURN n").is_err());
        assert!(parse_predicate("n.name = 'x' RETURN n").is_err());
        assert!(parse_predicate("").is_err());
    }

    #[test]
    fn nesting_depth_is_bounded_not_a_stack_overflow() {
        // Deep-but-legal nesting parses.
        let ok = format!("{}n.x = 1{}", "(".repeat(100), ")".repeat(100));
        assert!(parse_predicate(&ok).is_ok());
        // Past the limit: a clean parse error, even at depths that would
        // otherwise blow the stack.
        let deep = format!("{}n.x = 1{}", "(".repeat(50_000), ")".repeat(50_000));
        assert!(matches!(parse_predicate(&deep), Err(CypherError::Parse(_))));
        let nots = format!("{} n.x = 1", "NOT ".repeat(50_000));
        assert!(matches!(parse_predicate(&nots), Err(CypherError::Parse(_))));
    }

    #[test]
    fn pattern_hop_count_is_bounded() {
        let hops = "-[:R]->(n)".repeat(MAX_PATTERN_HOPS + 1);
        let q = format!("MATCH (a){hops} RETURN a");
        assert!(matches!(parse(&q), Err(CypherError::Parse(_))));
        // At the limit it still parses.
        let hops = "-[:R]->(n)".repeat(MAX_PATTERN_HOPS);
        let q = format!("MATCH (a){hops} RETURN a");
        assert!(parse(&q).is_ok());
    }

    #[test]
    fn parses_var_length_patterns() {
        let q = parse("MATCH (a)-[:USES*1..3]->(b) RETURN b").unwrap();
        if let Query::Read { patterns, .. } = q {
            let rel = &patterns[0].rels[0];
            assert_eq!(rel.hops, Some((1, 3)));
            assert_eq!(rel.rel_type.as_deref(), Some("USES"));
            assert_eq!(rel.direction, Direction::Out);
        } else {
            panic!();
        }
        let q = parse("MATCH (a)-[*2]-(b) RETURN b").unwrap();
        if let Query::Read { patterns, .. } = q {
            assert_eq!(patterns[0].rels[0].hops, Some((2, 2)));
            assert_eq!(patterns[0].rels[0].direction, Direction::Either);
        } else {
            panic!();
        }
        // Zero hops, inverted/oversized ranges, and edge vars are clean errors.
        assert!(matches!(
            parse("MATCH (a)-[*0..2]->(b) RETURN b"),
            Err(CypherError::Parse(_))
        ));
        assert!(matches!(
            parse("MATCH (a)-[*3..2]->(b) RETURN b"),
            Err(CypherError::Parse(_))
        ));
        assert!(matches!(
            parse(&format!(
                "MATCH (a)-[*1..{}]->(b) RETURN b",
                MAX_PATTERN_HOPS + 1
            )),
            Err(CypherError::Parse(_))
        ));
        assert!(matches!(
            parse("MATCH (a)-[r*1..2]->(b) RETURN b"),
            Err(CypherError::Parse(_))
        ));
    }

    #[test]
    fn parses_parameters_as_expression_atoms_only() {
        let q = parse("MATCH (n) WHERE n.name = $who RETURN n").unwrap();
        if let Query::Read {
            filter: Some(Expr::Compare(_, _, rhs)),
            ..
        } = q
        {
            assert_eq!(*rhs, Expr::Param("who".into()));
        } else {
            panic!();
        }
        // RETURN column text renders the parameter reference.
        let q = parse("MATCH (n) RETURN $who").unwrap();
        if let Query::Read { ret, .. } = q {
            assert_eq!(ret.items[0].text, "$who");
        } else {
            panic!();
        }
        // Parameters are not literals: prop maps reject them cleanly.
        assert!(matches!(
            parse("MATCH (n {name: $who}) RETURN n"),
            Err(CypherError::Parse(_))
        ));
        assert!(matches!(
            parse("MATCH (n) RETURN n LIMIT $k"),
            Err(CypherError::Parse(_))
        ));
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse("RETURN 1").is_err());
        assert!(parse("MATCH (n RETURN n").is_err());
        assert!(parse("MATCH (n) RETURN").is_err());
        assert!(parse("MATCH (a)<-[:X]->(b) RETURN a").is_err());
        assert!(parse("MATCH (n) WHERE n.name STARTS 'x' RETURN n").is_err());
        assert!(parse("MATCH (n) RETURN n LIMIT x").is_err());
        assert!(parse("MATCH (n) RETURN n extra").is_err());
    }
}
