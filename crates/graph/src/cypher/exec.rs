//! Query execution: backtracking pattern matching + expression evaluation.
//!
//! This is the *interpreted* executor. The compiled planner
//! ([`super::planner`]) is the production read path; this module remains the
//! semantics reference — the differential test battery asserts the compiled
//! engine byte-matches it on arbitrary graphs and queries.

use super::{CmpOp, CypherError, Direction, Expr, NodePattern, Params, Pattern, Query, Return};
use crate::store::{EdgeId, GraphStore, NodeId};
use crate::value::Value;
use std::collections::HashMap;

/// A variable binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Binding {
    Node(NodeId),
    Edge(EdgeId),
}

type Row = HashMap<String, Binding>;

/// Write-statistics of a query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteStats {
    pub nodes_created: usize,
    pub edges_created: usize,
    pub nodes_deleted: usize,
    pub edges_deleted: usize,
}

/// The result of a query.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
    pub stats: WriteStats,
}

impl QueryResult {
    /// Node ids in the result (any column projecting whole nodes).
    pub fn node_ids(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        for row in &self.rows {
            for v in row {
                if let Value::Node(id) = v {
                    if !out.contains(id) {
                        out.push(*id);
                    }
                }
            }
        }
        out
    }
}

/// Execute a read-only query against an immutable store; write queries are
/// rejected. This is the path UI sessions use, so exploration never needs a
/// write lock on the knowledge graph.
pub fn execute_read(store: &GraphStore, query: &Query) -> Result<QueryResult, CypherError> {
    execute_read_with_params(store, query, &Params::new())
}

/// [`execute_read`] with `$param` bindings.
pub fn execute_read_with_params(
    store: &GraphStore,
    query: &Query,
    params: &Params,
) -> Result<QueryResult, CypherError> {
    match query {
        Query::Read {
            patterns,
            filter,
            ret,
        } => {
            let rows = match_patterns(store, patterns)?;
            let rows = apply_filter(store, rows, filter, params)?;
            project(store, rows, ret, params)
        }
        _ => Err(CypherError::Exec(
            "write query on the read-only path".into(),
        )),
    }
}

/// Execute a parsed query.
pub fn execute(store: &mut GraphStore, query: &Query) -> Result<QueryResult, CypherError> {
    execute_with_params(store, query, &Params::new())
}

/// [`execute`] with `$param` bindings.
pub fn execute_with_params(
    store: &mut GraphStore,
    query: &Query,
    params: &Params,
) -> Result<QueryResult, CypherError> {
    match query {
        Query::Read {
            patterns,
            filter,
            ret,
        } => {
            let rows = match_patterns(store, patterns)?;
            let rows = apply_filter(store, rows, filter, params)?;
            project(store, rows, ret, params)
        }
        Query::Create { patterns } => {
            let mut stats = WriteStats::default();
            let mut bound: Row = HashMap::new();
            for pattern in patterns {
                create_pattern(store, pattern, &mut bound, &mut stats)?;
            }
            Ok(QueryResult {
                stats,
                ..QueryResult::default()
            })
        }
        Query::Merge { pattern, ret } => {
            let mut stats = WriteStats::default();
            let row = merge_pattern(store, pattern, &mut stats)?;
            let result = match ret {
                Some(ret) => {
                    let mut r = project(store, vec![row], ret, params)?;
                    r.stats = stats;
                    r
                }
                None => QueryResult {
                    stats,
                    ..QueryResult::default()
                },
            };
            Ok(result)
        }
        Query::Delete {
            patterns,
            filter,
            vars,
            detach,
        } => {
            let rows = match_patterns(store, patterns)?;
            let rows = apply_filter(store, rows, filter, params)?;
            let mut stats = WriteStats::default();
            let mut nodes: Vec<NodeId> = Vec::new();
            let mut edges: Vec<EdgeId> = Vec::new();
            for row in &rows {
                for var in vars {
                    match row.get(var) {
                        Some(Binding::Node(id)) if !nodes.contains(id) => nodes.push(*id),
                        Some(Binding::Edge(id)) if !edges.contains(id) => edges.push(*id),
                        Some(_) => {}
                        None => return Err(CypherError::Exec(format!("unbound variable {var}"))),
                    }
                }
            }
            for e in edges {
                if store.delete_edge(e).is_ok() {
                    stats.edges_deleted += 1;
                }
            }
            for n in nodes {
                if store.node(n).is_none() {
                    continue;
                }
                let degree = store.degree(n);
                if degree > 0 && !detach {
                    return Err(CypherError::Exec(
                        "cannot DELETE a node with relationships; use DETACH DELETE".into(),
                    ));
                }
                stats.edges_deleted += degree;
                store
                    .delete_node(n)
                    .map_err(|e| CypherError::Exec(e.to_string()))?;
                stats.nodes_deleted += 1;
            }
            Ok(QueryResult {
                stats,
                ..QueryResult::default()
            })
        }
    }
}

// ---- pattern matching ------------------------------------------------------

fn match_patterns(store: &GraphStore, patterns: &[Pattern]) -> Result<Vec<Row>, CypherError> {
    let mut rows = vec![Row::new()];
    for pattern in patterns {
        let mut next = Vec::new();
        for row in rows {
            match_pattern(store, pattern, row, &mut next);
        }
        rows = next;
    }
    Ok(rows)
}

fn node_matches(store: &GraphStore, id: NodeId, np: &NodePattern) -> bool {
    let Some(node) = store.node(id) else {
        return false;
    };
    if let Some(label) = &np.label {
        if &node.label != label {
            return false;
        }
    }
    np.props
        .iter()
        .all(|(k, v)| node.props.get(k).is_some_and(|pv| pv.eq_cypher(v)))
}

fn candidates(store: &GraphStore, np: &NodePattern, row: &Row) -> Vec<NodeId> {
    if let Some(var) = &np.var {
        if let Some(binding) = row.get(var) {
            return match binding {
                Binding::Node(id) if node_matches(store, *id, np) => vec![*id],
                _ => Vec::new(),
            };
        }
    }
    // (label, name) fast path.
    if let Some(label) = &np.label {
        if let Some((_, Value::Text(name))) = np.props.iter().find(|(k, _)| k == "name") {
            return store
                .node_by_name(label, name)
                .into_iter()
                .filter(|&id| node_matches(store, id, np))
                .collect();
        }
        return store
            .nodes_with_label(label)
            .into_iter()
            .filter(|&id| node_matches(store, id, np))
            .collect();
    }
    store
        .all_nodes()
        .map(|n| n.id)
        .filter(|&id| node_matches(store, id, np))
        .collect()
}

fn match_pattern(store: &GraphStore, pattern: &Pattern, row: Row, out: &mut Vec<Row>) {
    for start in candidates(store, &pattern.nodes[0], &row) {
        let mut row = row.clone();
        if let Some(var) = &pattern.nodes[0].var {
            row.insert(var.clone(), Binding::Node(start));
        }
        extend(store, pattern, 0, start, row, &mut Vec::new(), out);
    }
}

/// Extend a partial path match from `pattern.nodes[step]` bound to `at`.
fn extend(
    store: &GraphStore,
    pattern: &Pattern,
    step: usize,
    at: NodeId,
    row: Row,
    used_edges: &mut Vec<EdgeId>,
    out: &mut Vec<Row>,
) {
    if step == pattern.rels.len() {
        out.push(row);
        return;
    }
    let rel = &pattern.rels[step];
    let next_np = &pattern.nodes[step + 1];

    if let Some((lo, hi)) = rel.hops {
        // Var-length: the far node binds each distinct endpoint reachable
        // via lo..=hi typed/directed hops (walk semantics — level sets, so
        // revisits are allowed and relationship uniqueness is not tracked
        // across the expansion). Ascending-id order keeps candidate
        // enumeration deterministic for the scatter (anchor, seq) contract.
        for other in var_length_endpoints(store, at, rel.rel_type.as_deref(), rel.direction, lo, hi)
        {
            if let Some(var) = &next_np.var {
                if let Some(Binding::Node(bound)) = row.get(var) {
                    if *bound != other {
                        continue;
                    }
                } else if row.contains_key(var) {
                    continue;
                }
            }
            if !node_matches(store, other, next_np) {
                continue;
            }
            let mut next_row = row.clone();
            if let Some(var) = &next_np.var {
                next_row.insert(var.clone(), Binding::Node(other));
            }
            extend(store, pattern, step + 1, other, next_row, used_edges, out);
        }
        return;
    }

    let try_edge =
        |edge_id: EdgeId, other: NodeId, used_edges: &mut Vec<EdgeId>, out: &mut Vec<Row>| {
            if used_edges.contains(&edge_id) {
                return;
            }
            let edge = match store.edge(edge_id) {
                Some(e) => e,
                None => return,
            };
            if let Some(t) = &rel.rel_type {
                if &edge.rel_type != t {
                    return;
                }
            }
            // Edge-variable consistency.
            if let Some(var) = &rel.var {
                if let Some(existing) = row.get(var) {
                    if *existing != Binding::Edge(edge_id) {
                        return;
                    }
                }
            }
            // Node-pattern check including variable consistency.
            if let Some(var) = &next_np.var {
                if let Some(Binding::Node(bound)) = row.get(var) {
                    if *bound != other {
                        return;
                    }
                } else if row.contains_key(var) {
                    return;
                }
            }
            if !node_matches(store, other, next_np) {
                return;
            }
            let mut next_row = row.clone();
            if let Some(var) = &rel.var {
                next_row.insert(var.clone(), Binding::Edge(edge_id));
            }
            if let Some(var) = &next_np.var {
                next_row.insert(var.clone(), Binding::Node(other));
            }
            used_edges.push(edge_id);
            extend(store, pattern, step + 1, other, next_row, used_edges, out);
            used_edges.pop();
        };

    if matches!(rel.direction, Direction::Out | Direction::Either) {
        for edge in store.outgoing(at) {
            try_edge(edge.id, edge.to, used_edges, out);
        }
    }
    if matches!(rel.direction, Direction::In | Direction::Either) {
        for edge in store.incoming(at) {
            try_edge(edge.id, edge.from, used_edges, out);
        }
    }
}

/// Distinct endpoints reachable from `at` via `lo..=hi` hops along edges
/// matching `rel_type`/`direction` — level-set iteration (walk semantics):
/// `S_0 = {at}`, `S_{l+1} = step(S_l)`, result = `S_lo ∪ … ∪ S_hi`, sorted
/// ascending by id. The compiled planner implements the identical expansion
/// (optionally over a snapshot's frozen adjacency), so the two engines agree
/// endpoint-for-endpoint.
fn var_length_endpoints(
    store: &GraphStore,
    at: NodeId,
    rel_type: Option<&str>,
    direction: Direction,
    lo: usize,
    hi: usize,
) -> Vec<NodeId> {
    use std::collections::HashSet;
    let mut result: HashSet<NodeId> = HashSet::new();
    let mut frontier: HashSet<NodeId> = HashSet::new();
    frontier.insert(at);
    for level in 1..=hi {
        let mut next: HashSet<NodeId> = HashSet::new();
        for &node in &frontier {
            if matches!(direction, Direction::Out | Direction::Either) {
                for edge in store.outgoing_iter(node) {
                    if rel_type.is_none_or(|t| edge.rel_type == t) {
                        next.insert(edge.to);
                    }
                }
            }
            if matches!(direction, Direction::In | Direction::Either) {
                for edge in store.incoming_iter(node) {
                    if rel_type.is_none_or(|t| edge.rel_type == t) {
                        next.insert(edge.from);
                    }
                }
            }
        }
        if level >= lo {
            result.extend(next.iter().copied());
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    let mut out: Vec<NodeId> = result.into_iter().collect();
    out.sort();
    out
}

// ---- expression evaluation --------------------------------------------------

/// Evaluate a WHERE-style predicate against a single node bound to `var` —
/// the standing-query entry point into the exact evaluator `WHERE` uses
/// (same truthiness, same NULL propagation). Aggregates are execution
/// errors here just as they are in `WHERE`.
pub fn node_satisfies(
    store: &GraphStore,
    id: NodeId,
    var: &str,
    expr: &Expr,
) -> Result<bool, CypherError> {
    let mut row = Row::new();
    row.insert(var.to_owned(), Binding::Node(id));
    Ok(eval(store, &row, expr, &Params::new())?.truthy())
}

fn eval(store: &GraphStore, row: &Row, expr: &Expr, params: &Params) -> Result<Value, CypherError> {
    Ok(match expr {
        Expr::Literal(v) => v.clone(),
        Expr::Param(name) => match params.get(name) {
            Some(v) => v.clone(),
            None => return Err(CypherError::Bind(format!("unbound parameter ${name}"))),
        },
        Expr::Var(name) => match row.get(name) {
            Some(Binding::Node(id)) => Value::Node(*id),
            Some(Binding::Edge(id)) => Value::Edge(*id),
            None => Value::Null,
        },
        Expr::Prop(var, key) => match row.get(var) {
            Some(Binding::Node(id)) => store
                .node(*id)
                .and_then(|n| n.props.get(key))
                .cloned()
                .unwrap_or(Value::Null),
            Some(Binding::Edge(id)) => store
                .edge(*id)
                .and_then(|e| e.props.get(key))
                .cloned()
                .unwrap_or(Value::Null),
            None => Value::Null,
        },
        Expr::Compare(l, op, r) => {
            let (a, b) = (eval(store, row, l, params)?, eval(store, row, r, params)?);
            if matches!(a, Value::Null) || matches!(b, Value::Null) {
                return Ok(Value::Null);
            }
            let result = match op {
                CmpOp::Eq => a.eq_cypher(&b),
                CmpOp::Ne => !a.eq_cypher(&b),
                CmpOp::Lt => a.cmp_order(&b) == std::cmp::Ordering::Less,
                CmpOp::Le => a.cmp_order(&b) != std::cmp::Ordering::Greater,
                CmpOp::Gt => a.cmp_order(&b) == std::cmp::Ordering::Greater,
                CmpOp::Ge => a.cmp_order(&b) != std::cmp::Ordering::Less,
            };
            Value::Bool(result)
        }
        Expr::And(l, r) => Value::Bool(
            eval(store, row, l, params)?.truthy() && eval(store, row, r, params)?.truthy(),
        ),
        Expr::Or(l, r) => Value::Bool(
            eval(store, row, l, params)?.truthy() || eval(store, row, r, params)?.truthy(),
        ),
        Expr::Not(e) => Value::Bool(!eval(store, row, e, params)?.truthy()),
        Expr::Contains(l, r) => string_op(store, row, l, r, params, |a, b| a.contains(b))?,
        Expr::StartsWith(l, r) => string_op(store, row, l, r, params, |a, b| a.starts_with(b))?,
        Expr::EndsWith(l, r) => string_op(store, row, l, r, params, |a, b| a.ends_with(b))?,
        Expr::CountStar | Expr::Count(_) => {
            return Err(CypherError::Exec("aggregate outside RETURN".into()))
        }
    })
}

fn string_op(
    store: &GraphStore,
    row: &Row,
    l: &Expr,
    r: &Expr,
    params: &Params,
    f: impl Fn(&str, &str) -> bool,
) -> Result<Value, CypherError> {
    let (a, b) = (eval(store, row, l, params)?, eval(store, row, r, params)?);
    match (a.as_text(), b.as_text()) {
        (Some(x), Some(y)) => Ok(Value::Bool(f(x, y))),
        _ => Ok(Value::Null),
    }
}

fn apply_filter(
    store: &GraphStore,
    rows: Vec<Row>,
    filter: &Option<Expr>,
    params: &Params,
) -> Result<Vec<Row>, CypherError> {
    match filter {
        None => Ok(rows),
        Some(expr) => {
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                if eval(store, &row, expr, params)?.truthy() {
                    out.push(row);
                }
            }
            Ok(out)
        }
    }
}

// ---- projection --------------------------------------------------------------

fn project(
    store: &GraphStore,
    rows: Vec<Row>,
    ret: &Return,
    params: &Params,
) -> Result<QueryResult, CypherError> {
    let columns: Vec<String> = ret
        .items
        .iter()
        .map(|i| i.alias.clone().unwrap_or_else(|| i.text.trim().to_owned()))
        .collect();
    let has_aggregate = ret.items.iter().any(|i| i.expr.is_aggregate());

    let mut out_rows: Vec<Vec<Value>> = Vec::new();
    if has_aggregate {
        // Implicit grouping by the non-aggregate items (Cypher semantics).
        let mut groups: Vec<(Vec<Value>, Vec<Row>)> = Vec::new();
        for row in rows {
            let key: Vec<Value> = ret
                .items
                .iter()
                .filter(|i| !i.expr.is_aggregate())
                .map(|i| eval(store, &row, &i.expr, params))
                .collect::<Result<_, _>>()?;
            match groups
                .iter_mut()
                .find(|(k, _)| k.len() == key.len() && k.iter().zip(&key).all(|(a, b)| a == b))
            {
                Some((_, members)) => members.push(row),
                None => groups.push((key, vec![row])),
            }
        }
        for (key, members) in groups {
            let mut row_out = Vec::with_capacity(ret.items.len());
            let mut key_iter = key.into_iter();
            for item in &ret.items {
                match &item.expr {
                    Expr::CountStar => row_out.push(Value::Int(members.len() as i64)),
                    Expr::Count(inner) => {
                        let mut n = 0i64;
                        for m in &members {
                            if !matches!(eval(store, m, inner, params)?, Value::Null) {
                                n += 1;
                            }
                        }
                        row_out.push(Value::Int(n));
                    }
                    _ => row_out.push(key_iter.next().unwrap_or(Value::Null)),
                }
            }
            out_rows.push(row_out);
        }
    } else {
        for row in &rows {
            let projected: Vec<Value> = ret
                .items
                .iter()
                .map(|i| eval(store, row, &i.expr, params))
                .collect::<Result<_, _>>()?;
            out_rows.push(projected);
        }
        // ORDER BY evaluates against the source rows.
        if let Some((expr, asc)) = &ret.order_by {
            let mut keyed: Vec<(Value, Vec<Value>)> = rows
                .iter()
                .zip(out_rows)
                .map(|(row, out)| Ok((eval(store, row, expr, params)?, out)))
                .collect::<Result<_, CypherError>>()?;
            keyed.sort_by(|a, b| {
                let o = a.0.cmp_order(&b.0);
                if *asc {
                    o
                } else {
                    o.reverse()
                }
            });
            out_rows = keyed.into_iter().map(|(_, o)| o).collect();
        }
    }

    if has_aggregate {
        if let Some((expr, asc)) = &ret.order_by {
            // For aggregated results, ORDER BY may reference an aggregate or
            // a projected column; sort on the matching column when possible.
            if let Some(col) = ret.items.iter().position(|i| &i.expr == expr) {
                out_rows.sort_by(|a, b| {
                    let o = a[col].cmp_order(&b[col]);
                    if *asc {
                        o
                    } else {
                        o.reverse()
                    }
                });
            }
        }
    }

    if ret.distinct {
        let mut seen: Vec<Vec<Value>> = Vec::new();
        out_rows.retain(|row| {
            if seen.iter().any(|s| s == row) {
                false
            } else {
                seen.push(row.clone());
                true
            }
        });
    }
    let skip = ret.skip.unwrap_or(0);
    if skip > 0 {
        out_rows.drain(..skip.min(out_rows.len()));
    }
    if let Some(limit) = ret.limit {
        out_rows.truncate(limit);
    }

    Ok(QueryResult {
        columns,
        rows: out_rows,
        stats: WriteStats::default(),
    })
}

// ---- sharded scatter-gather ---------------------------------------------------

/// One materialized row produced by [`scatter_match`] on the shard owning
/// its anchor node. Values are evaluated shard-side (each shard holds a
/// full replica, so property lookups resolve locally); the gather side
/// re-orders by `(anchor, seq)` and re-runs the projection pipeline over
/// the materialized values.
#[derive(Debug, Clone, PartialEq)]
pub struct ScatterRow {
    /// The first pattern's first-node binding — the row's routing anchor.
    pub anchor: NodeId,
    /// Per-shard running row number; for a fixed anchor, local generation
    /// order equals global generation order.
    pub seq: u32,
    /// Per RETURN item: the evaluated expression, except aggregates —
    /// `count(expr)` stores the evaluated inner expression (so gather can
    /// count non-NULLs) and `count(*)` stores a NULL placeholder.
    pub items: Vec<Value>,
    /// The ORDER BY expression evaluated against the source row; only
    /// populated on the non-aggregate path, where ordering is per-row.
    pub order: Option<Value>,
}

/// Shard-side half of a scatter-gather read: run the match/filter pipeline
/// restricted to rows whose *anchor* — the first pattern's first-node
/// candidate — satisfies `owns`, and materialize each surviving row's
/// RETURN-item and ORDER BY values.
///
/// Every global row has exactly one anchor, so running this on each shard
/// of a partition (with `owns` = that shard's ownership test) produces
/// every row of [`execute_read`] exactly once across the fleet. Candidate
/// enumeration is ascending-id on every path (ids are dense and never
/// reused; the label and name indexes preserve creation order), so sorting
/// the union by `(anchor, seq)` reproduces the single-store row order
/// exactly — later patterns and path extensions run against the shard's
/// full replica and are anchor-local.
pub fn scatter_match(
    store: &GraphStore,
    query: &Query,
    owns: &dyn Fn(NodeId) -> bool,
) -> Result<Vec<ScatterRow>, CypherError> {
    scatter_match_with_params(store, query, &Params::new(), owns)
}

/// [`scatter_match`] with `$param` bindings.
pub fn scatter_match_with_params(
    store: &GraphStore,
    query: &Query,
    params: &Params,
    owns: &dyn Fn(NodeId) -> bool,
) -> Result<Vec<ScatterRow>, CypherError> {
    let Query::Read {
        patterns,
        filter,
        ret,
    } = query
    else {
        return Err(CypherError::Exec(
            "write query on the read-only path".into(),
        ));
    };
    // First pattern: enumerate anchors, keep only owned ones.
    let first = &patterns[0];
    let empty = Row::new();
    let mut anchored: Vec<(NodeId, Row)> = Vec::new();
    for start in candidates(store, &first.nodes[0], &empty) {
        if !owns(start) {
            continue;
        }
        let mut row = Row::new();
        if let Some(var) = &first.nodes[0].var {
            row.insert(var.clone(), Binding::Node(start));
        }
        let mut out = Vec::new();
        extend(store, first, 0, start, row, &mut Vec::new(), &mut out);
        anchored.extend(out.into_iter().map(|r| (start, r)));
    }
    // Remaining patterns join against the full replica, anchor unchanged.
    for pattern in &patterns[1..] {
        let mut next = Vec::new();
        for (anchor, row) in anchored {
            let mut out = Vec::new();
            match_pattern(store, pattern, row, &mut out);
            next.extend(out.into_iter().map(|r| (anchor, r)));
        }
        anchored = next;
    }
    // WHERE.
    let mut filtered = Vec::with_capacity(anchored.len());
    for (anchor, row) in anchored {
        match filter {
            None => filtered.push((anchor, row)),
            Some(expr) => {
                if eval(store, &row, expr, params)?.truthy() {
                    filtered.push((anchor, row));
                }
            }
        }
    }
    // Materialize RETURN items (and the ORDER BY key when it is per-row).
    let per_row_order = ret.order_by.is_some() && !ret.items.iter().any(|i| i.expr.is_aggregate());
    let mut out = Vec::with_capacity(filtered.len());
    for (seq, (anchor, row)) in filtered.into_iter().enumerate() {
        let mut items = Vec::with_capacity(ret.items.len());
        for item in &ret.items {
            items.push(match &item.expr {
                Expr::CountStar => Value::Null,
                Expr::Count(inner) => eval(store, &row, inner, params)?,
                expr => eval(store, &row, expr, params)?,
            });
        }
        let order = match &ret.order_by {
            Some((expr, _)) if per_row_order => Some(eval(store, &row, expr, params)?),
            _ => None,
        };
        out.push(ScatterRow {
            anchor,
            seq: seq as u32,
            items,
            order,
        });
    }
    Ok(out)
}

/// Gather-side half of a scatter-gather read: merge the shards'
/// [`ScatterRow`]s back into global row order and re-run the projection
/// pipeline — implicit aggregate grouping, ORDER BY, DISTINCT, SKIP,
/// LIMIT — over the materialized values. Needs no store access: every
/// value was evaluated shard-side.
pub fn gather_project(query: &Query, scatter: Vec<ScatterRow>) -> Result<QueryResult, CypherError> {
    let Query::Read { ret, .. } = query else {
        return Err(CypherError::Exec(
            "write query on the read-only path".into(),
        ));
    };
    gather_project_ret(ret, scatter)
}

/// [`gather_project`] over a bare RETURN clause — the entry point compiled
/// plans use, so interpreted and compiled scatter-gather share one merge.
pub fn gather_project_ret(
    ret: &Return,
    mut scatter: Vec<ScatterRow>,
) -> Result<QueryResult, CypherError> {
    scatter.sort_by(|a, b| a.anchor.cmp(&b.anchor).then(a.seq.cmp(&b.seq)));
    let columns: Vec<String> = ret
        .items
        .iter()
        .map(|i| i.alias.clone().unwrap_or_else(|| i.text.trim().to_owned()))
        .collect();
    let has_aggregate = ret.items.iter().any(|i| i.expr.is_aggregate());

    let mut out_rows: Vec<Vec<Value>> = Vec::new();
    if has_aggregate {
        // Implicit grouping by the non-aggregate items, first-seen order —
        // the same walk `project` does, over the materialized values.
        let mut groups: Vec<(Vec<Value>, Vec<&ScatterRow>)> = Vec::new();
        for row in &scatter {
            let key: Vec<Value> = ret
                .items
                .iter()
                .zip(&row.items)
                .filter(|(i, _)| !i.expr.is_aggregate())
                .map(|(_, v)| v.clone())
                .collect();
            match groups
                .iter_mut()
                .find(|(k, _)| k.len() == key.len() && k.iter().zip(&key).all(|(a, b)| a == b))
            {
                Some((_, members)) => members.push(row),
                None => groups.push((key, vec![row])),
            }
        }
        for (key, members) in groups {
            let mut row_out = Vec::with_capacity(ret.items.len());
            let mut key_iter = key.into_iter();
            for (col, item) in ret.items.iter().enumerate() {
                match &item.expr {
                    Expr::CountStar => row_out.push(Value::Int(members.len() as i64)),
                    Expr::Count(_) => {
                        let n = members
                            .iter()
                            .filter(|m| !matches!(m.items[col], Value::Null))
                            .count();
                        row_out.push(Value::Int(n as i64));
                    }
                    _ => row_out.push(key_iter.next().unwrap_or(Value::Null)),
                }
            }
            out_rows.push(row_out);
        }
        if let Some((expr, asc)) = &ret.order_by {
            if let Some(col) = ret.items.iter().position(|i| &i.expr == expr) {
                out_rows.sort_by(|a, b| {
                    let o = a[col].cmp_order(&b[col]);
                    if *asc {
                        o
                    } else {
                        o.reverse()
                    }
                });
            }
        }
    } else {
        let mut keyed: Vec<(Option<Value>, Vec<Value>)> =
            scatter.into_iter().map(|r| (r.order, r.items)).collect();
        if ret.order_by.is_some() {
            let asc = ret.order_by.as_ref().map(|(_, asc)| *asc).unwrap_or(true);
            keyed.sort_by(|a, b| {
                let o =
                    a.0.as_ref()
                        .unwrap_or(&Value::Null)
                        .cmp_order(b.0.as_ref().unwrap_or(&Value::Null));
                if asc {
                    o
                } else {
                    o.reverse()
                }
            });
        }
        out_rows = keyed.into_iter().map(|(_, items)| items).collect();
    }

    if ret.distinct {
        let mut seen: Vec<Vec<Value>> = Vec::new();
        out_rows.retain(|row| {
            if seen.iter().any(|s| s == row) {
                false
            } else {
                seen.push(row.clone());
                true
            }
        });
    }
    let skip = ret.skip.unwrap_or(0);
    if skip > 0 {
        out_rows.drain(..skip.min(out_rows.len()));
    }
    if let Some(limit) = ret.limit {
        out_rows.truncate(limit);
    }

    Ok(QueryResult {
        columns,
        rows: out_rows,
        stats: WriteStats::default(),
    })
}

// ---- writes -------------------------------------------------------------------

fn create_pattern(
    store: &mut GraphStore,
    pattern: &Pattern,
    bound: &mut Row,
    stats: &mut WriteStats,
) -> Result<(), CypherError> {
    let mut node_ids = Vec::with_capacity(pattern.nodes.len());
    for np in &pattern.nodes {
        // Re-use a node bound earlier in the same CREATE statement.
        if let Some(var) = &np.var {
            if let Some(Binding::Node(id)) = bound.get(var) {
                node_ids.push(*id);
                continue;
            }
        }
        let label = np.label.clone().unwrap_or_else(|| "Node".to_owned());
        let id = store.create_node(&label, np.props.clone());
        stats.nodes_created += 1;
        if let Some(var) = &np.var {
            bound.insert(var.clone(), Binding::Node(id));
        }
        node_ids.push(id);
    }
    for (i, rel) in pattern.rels.iter().enumerate() {
        if rel.hops.is_some() {
            return Err(CypherError::Exec(
                "var-length patterns cannot be created".into(),
            ));
        }
        let (from, to) = match rel.direction {
            Direction::Out | Direction::Either => (node_ids[i], node_ids[i + 1]),
            Direction::In => (node_ids[i + 1], node_ids[i]),
        };
        let rel_type = rel
            .rel_type
            .clone()
            .unwrap_or_else(|| "RELATED_TO".to_owned());
        store
            .create_edge(from, &rel_type, to, std::iter::empty::<(String, Value)>())
            .map_err(|e| CypherError::Exec(e.to_string()))?;
        stats.edges_created += 1;
    }
    Ok(())
}

fn merge_pattern(
    store: &mut GraphStore,
    pattern: &Pattern,
    stats: &mut WriteStats,
) -> Result<Row, CypherError> {
    // Every node pattern needs a label and a textual name property.
    let mut ids = Vec::with_capacity(pattern.nodes.len());
    for np in &pattern.nodes {
        let label = np
            .label
            .as_deref()
            .ok_or_else(|| CypherError::Exec("MERGE requires a label on every node".into()))?;
        let name = np
            .props
            .iter()
            .find(|(k, _)| k == "name")
            .and_then(|(_, v)| v.as_text())
            .ok_or_else(|| CypherError::Exec("MERGE requires a textual name property".into()))?;
        let before = store.node_count();
        let extra: Vec<(String, Value)> = np
            .props
            .iter()
            .filter(|(k, _)| k != "name")
            .cloned()
            .collect();
        let id = store.merge_node(label, name, extra);
        if store.node_count() > before {
            stats.nodes_created += 1;
        }
        ids.push(id);
    }
    for (i, rel) in pattern.rels.iter().enumerate() {
        if rel.hops.is_some() {
            return Err(CypherError::Exec(
                "var-length patterns cannot be merged".into(),
            ));
        }
        let (from, to) = match rel.direction {
            Direction::Out | Direction::Either => (ids[i], ids[i + 1]),
            Direction::In => (ids[i + 1], ids[i]),
        };
        let rel_type = rel
            .rel_type
            .clone()
            .unwrap_or_else(|| "RELATED_TO".to_owned());
        let before = store.edge_count();
        store
            .merge_edge(from, &rel_type, to)
            .map_err(|e| CypherError::Exec(e.to_string()))?;
        if store.edge_count() > before {
            stats.edges_created += 1;
        }
    }
    let mut row = Row::new();
    for (np, id) in pattern.nodes.iter().zip(&ids) {
        if let Some(var) = &np.var {
            row.insert(var.clone(), Binding::Node(*id));
        }
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_store() -> GraphStore {
        let mut g = GraphStore::new();
        let wannacry = g.create_node("Malware", [("name", Value::from("wannacry"))]);
        let emotet = g.create_node("Malware", [("name", Value::from("emotet"))]);
        let file = g.create_node("FileName", [("name", Value::from("tasksche.exe"))]);
        let cve = g.create_node("Vulnerability", [("name", Value::from("CVE-2017-0144"))]);
        let actor = g.create_node("ThreatActor", [("name", Value::from("lazarus group"))]);
        let t1 = g.create_node("Technique", [("name", Value::from("smb exploitation"))]);
        let t2 = g.create_node("Technique", [("name", Value::from("keylogging"))]);
        g.create_edge(wannacry, "DROP", file, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(wannacry, "EXPLOITS", cve, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(wannacry, "ATTRIBUTED_TO", actor, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(actor, "USES", t1, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(actor, "USES", t2, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(emotet, "USES", t2, [] as [(&str, Value); 0])
            .unwrap();
        g
    }

    #[test]
    fn the_paper_demo_query_returns_the_wannacry_node() {
        let mut g = demo_store();
        let r = g
            .query("match (n) where n.name = \"wannacry\" return n")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        let id = match r.rows[0][0] {
            Value::Node(id) => id,
            ref other => panic!("unexpected {other:?}"),
        };
        assert_eq!(g.node(id).unwrap().name(), Some("wannacry"));
    }

    #[test]
    fn path_patterns_with_direction() {
        let mut g = demo_store();
        let r = g
            .query("MATCH (m:Malware)-[:DROP]->(f:FileName) RETURN m.name, f.name")
            .unwrap();
        assert_eq!(
            r.rows,
            vec![vec![Value::from("wannacry"), Value::from("tasksche.exe")]]
        );
        // Reverse direction finds nothing.
        let r = g
            .query("MATCH (m:Malware)<-[:DROP]-(f:FileName) RETURN m.name")
            .unwrap();
        assert!(r.rows.is_empty());
        // Undirected finds it from either side.
        let r = g
            .query("MATCH (f:FileName)-[:DROP]-(m:Malware) RETURN m.name")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn two_hop_pattern() {
        let mut g = demo_store();
        let r = g
            .query(
                "MATCH (m:Malware)-[:ATTRIBUTED_TO]->(a)-[:USES]->(t:Technique) \
                 RETURN t.name ORDER BY t.name",
            )
            .unwrap();
        let names: Vec<&str> = r.rows.iter().map(|row| row[0].as_text().unwrap()).collect();
        assert_eq!(names, vec!["keylogging", "smb exploitation"]);
    }

    #[test]
    fn where_filters_and_string_ops() {
        let mut g = demo_store();
        let r = g
            .query("MATCH (n) WHERE n.name STARTS WITH 'wanna' RETURN n.name")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::from("wannacry")]]);
        let r = g
            .query("MATCH (n) WHERE n.name CONTAINS 'o' AND NOT n.name = 'emotet' RETURN n.name ORDER BY n.name")
            .unwrap();
        let names: Vec<&str> = r.rows.iter().map(|row| row[0].as_text().unwrap()).collect();
        assert_eq!(
            names,
            vec!["keylogging", "lazarus group", "smb exploitation"]
        );
    }

    #[test]
    fn count_with_implicit_grouping() {
        let mut g = demo_store();
        let r = g
            .query(
                "MATCH (a)-[:USES]->(t:Technique) RETURN a.name, count(t) AS uses ORDER BY count(t) DESC",
            )
            .unwrap();
        assert_eq!(r.columns, vec!["a.name", "uses"]);
        assert_eq!(r.rows[0], vec![Value::from("lazarus group"), Value::Int(2)]);
        assert_eq!(r.rows[1], vec![Value::from("emotet"), Value::Int(1)]);
    }

    #[test]
    fn count_star_without_grouping() {
        let mut g = demo_store();
        let r = g.query("MATCH (n:Technique) RETURN count(*)").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn order_skip_limit_distinct() {
        let mut g = demo_store();
        let r = g
            .query("MATCH (n:Malware) RETURN n.name ORDER BY n.name ASC SKIP 1 LIMIT 1")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::from("wannacry")]]);
        let r = g
            .query("MATCH (a)-[:USES]->(t) RETURN DISTINCT t.name ORDER BY t.name")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn create_and_merge_write_stats() {
        let mut g = GraphStore::new();
        let r = g
            .query("CREATE (m:Malware {name: 'x'})-[:DROP]->(f:FileName {name: 'y.exe'})")
            .unwrap();
        assert_eq!(r.stats.nodes_created, 2);
        assert_eq!(r.stats.edges_created, 1);
        // MERGE of the same node is a no-op.
        let r = g.query("MERGE (m:Malware {name: 'x'})").unwrap();
        assert_eq!(r.stats.nodes_created, 0);
        let r = g
            .query("MERGE (m:Malware {name: 'z'}) RETURN m.name")
            .unwrap();
        assert_eq!(r.stats.nodes_created, 1);
        assert_eq!(r.rows, vec![vec![Value::from("z")]]);
        // MERGE of a path merges endpoints and edge.
        let r = g
            .query("MERGE (m:Malware {name: 'x'})-[:DROP]->(f:FileName {name: 'y.exe'})")
            .unwrap();
        assert_eq!(r.stats.nodes_created, 0);
        assert_eq!(r.stats.edges_created, 0);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn delete_requires_detach_when_connected() {
        let mut g = demo_store();
        let err = g.query("MATCH (m:Malware) WHERE m.name = 'wannacry' DELETE m");
        assert!(err.is_err());
        let r = g
            .query("MATCH (m:Malware) WHERE m.name = 'wannacry' DETACH DELETE m")
            .unwrap();
        assert_eq!(r.stats.nodes_deleted, 1);
        assert_eq!(r.stats.edges_deleted, 3);
        assert_eq!(g.node_by_name("Malware", "wannacry"), None);
    }

    #[test]
    fn shared_variables_join_patterns() {
        let mut g = demo_store();
        // Actors that use a technique also used by emotet.
        let r = g
            .query(
                "MATCH (e:Malware {name: 'emotet'})-[:USES]->(t), (a:ThreatActor)-[:USES]->(t) \
                 RETURN a.name, t.name",
            )
            .unwrap();
        assert_eq!(
            r.rows,
            vec![vec![
                Value::from("lazarus group"),
                Value::from("keylogging")
            ]]
        );
    }

    #[test]
    fn null_property_comparisons_filter_out() {
        let mut g = demo_store();
        let r = g.query("MATCH (n) WHERE n.missing = 'x' RETURN n").unwrap();
        assert!(r.rows.is_empty());
        let r = g
            .query("MATCH (n) WHERE n.missing <> 'x' RETURN n")
            .unwrap();
        assert!(r.rows.is_empty(), "NULL <> x is NULL, not true");
    }

    #[test]
    fn scatter_gather_reassembles_execute_read_exactly() {
        let g = demo_store();
        for query_text in [
            "MATCH (n) WHERE n.name CONTAINS 'o' RETURN n.name ORDER BY n.name",
            "MATCH (a)-[:USES]->(t:Technique) RETURN a.name, count(t) AS uses ORDER BY count(t) DESC",
            "MATCH (m:Malware)-[:ATTRIBUTED_TO]->(a)-[:USES]->(t) RETURN t.name",
            "MATCH (n:Technique) RETURN count(*)",
            "MATCH (a)-[:USES]->(t) RETURN DISTINCT t.name ORDER BY t.name SKIP 1 LIMIT 1",
            "MATCH (e:Malware {name: 'emotet'})-[:USES]->(t), (a:ThreatActor)-[:USES]->(t) \
             RETURN a.name, t.name",
        ] {
            let query = super::super::parse(query_text).unwrap();
            let plain = execute_read(&g, &query).unwrap();
            // Fan out over 3 "shards" owning ids by residue, merge, project.
            for shards in [1u64, 2, 3] {
                let mut rows = Vec::new();
                for shard in 0..shards {
                    rows.extend(
                        scatter_match(&g, &query, &|id: NodeId| id.0 % shards == shard).unwrap(),
                    );
                }
                let merged = gather_project(&query, rows).unwrap();
                assert_eq!(plain.columns, merged.columns, "{query_text}");
                assert_eq!(plain.rows, merged.rows, "{query_text} at {shards} shards");
            }
        }
    }

    #[test]
    fn relationship_uniqueness_within_a_match() {
        let mut g = GraphStore::new();
        let a = g.create_node("N", [("name", Value::from("a"))]);
        let b = g.create_node("N", [("name", Value::from("b"))]);
        g.create_edge(a, "R", b, [] as [(&str, Value); 0]).unwrap();
        // A 2-step path a-b-a cannot reuse the single edge.
        let r = g
            .query("MATCH (x)-[:R]-(y)-[:R]-(z) RETURN x.name")
            .unwrap();
        assert!(r.rows.is_empty());
    }
}
