//! Plan-once / bind-many compilation of read queries.
//!
//! [`CompiledPlan::compile`] lowers a parsed [`Query::Read`] into a logical
//! plan: an index-backed scan choice per pattern (name index → equality
//! property index → label index → full scan, replicating the interpreter's
//! candidate precedence exactly), compiled node/edge matchers with dense
//! slot-indexed rows instead of `HashMap` bindings, compiled expressions,
//! and a projection program. Plans are snapshot-independent — they evaluate
//! against anything implementing [`GraphSnapshot`], so one artifact serves
//! the live store, frozen epochs, and per-shard replicas — and parameter
//! references (`$name`) resolve at execution time, so one plan serves many
//! bindings.
//!
//! Correctness contract: for every query and every snapshot,
//! `plan.execute_on(snap, params)` returns byte-identical results (and
//! errors) to the interpreted oracle in [`super::exec`]. The differential
//! proptest battery in `tests/plan_props.rs` enforces this. The subtle part
//! is scan selection under WHERE-conjunct lifting: narrowing candidates via
//! the property index must not skip rows whose filter evaluation would have
//! *errored* in the oracle (unbound parameter, aggregate in WHERE), so a
//! lifted conjunct is used only when every conjunct evaluated before it is
//! infallible under the current bindings — otherwise the plan degrades to
//! the interpreter's own scan at bind time.

use super::exec::{gather_project_ret, QueryResult, ScatterRow};
use super::{CmpOp, CypherError, Direction, Expr, NodePattern, Params, Query, Return};
use crate::snapshot::GraphSnapshot;
use crate::store::{EdgeId, NodeId};
use crate::value::Value;
use std::collections::HashSet;

/// A variable binding in a dense slot row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CBinding {
    Node(NodeId),
    Edge(EdgeId),
}

/// One partial match: slot index → binding. `Vec` clone + index beats the
/// interpreter's per-row `HashMap` on every hot path.
type CRow = Vec<Option<CBinding>>;

/// A literal or a parameter reference, resolved at bind time.
#[derive(Debug, Clone)]
enum CValue {
    Lit(Value),
    Param(usize),
}

/// How to enumerate candidates for a pattern's anchor node.
#[derive(Debug, Clone)]
enum Scan {
    /// The anchor variable is already bound by an earlier pattern.
    Bound(usize),
    /// `(label, name)` point lookup — latest writer wins, exactly like the
    /// interpreter's name-index fast path.
    ByName { label: String, name: String },
    /// Label index scan (may be tightened to a property-index scan at bind
    /// time, see [`CPattern::map_eq`] / [`CompiledPlan::lifted`]).
    ByLabel(String),
    /// Full node scan (same bind-time tightening applies).
    Full,
}

/// Compiled node matcher: label + literal property map, with the slot the
/// node binds (if the pattern names a variable).
#[derive(Debug, Clone)]
struct CNode {
    slot: Option<usize>,
    label: Option<String>,
    props: Vec<(String, Value)>,
}

/// One compiled relationship hop.
#[derive(Debug, Clone)]
struct CStep {
    rel_type: Option<String>,
    direction: Direction,
    /// `Some((lo, hi))` for var-length expansion.
    hops: Option<(usize, usize)>,
    edge_slot: Option<usize>,
    node: CNode,
}

/// One compiled path pattern.
#[derive(Debug, Clone)]
struct CPattern {
    scan: Scan,
    /// First `Text`-valued literal from the anchor's property map — an
    /// always-safe equality-index opportunity (the anchor matcher re-checks
    /// every constraint, so index and scan produce identical row sets).
    map_eq: Option<(String, Value)>,
    anchor: CNode,
    steps: Vec<CStep>,
}

/// Compiled expression over slot rows.
#[derive(Debug, Clone)]
enum CExpr {
    Lit(Value),
    Param(usize),
    Var(usize),
    /// Variable not bound by any pattern — NULL, like the interpreter.
    UnboundVar,
    Prop(usize, String),
    UnboundProp,
    Compare(Box<CExpr>, CmpOp, Box<CExpr>),
    And(Box<CExpr>, Box<CExpr>),
    Or(Box<CExpr>, Box<CExpr>),
    Not(Box<CExpr>),
    Contains(Box<CExpr>, Box<CExpr>),
    StartsWith(Box<CExpr>, Box<CExpr>),
    EndsWith(Box<CExpr>, Box<CExpr>),
    /// Any aggregate in an expression position — always an evaluation
    /// error ("aggregate outside RETURN"), so the inner is not kept.
    Aggregate,
}

/// One compiled RETURN item.
#[derive(Debug, Clone)]
enum CItem {
    Value(CExpr),
    CountStar,
    Count(CExpr),
}

impl CItem {
    fn is_aggregate(&self) -> bool {
        matches!(self, CItem::CountStar | CItem::Count(_))
    }
}

/// The compiled projection program.
#[derive(Debug, Clone)]
struct CReturn {
    columns: Vec<String>,
    distinct: bool,
    items: Vec<CItem>,
    order_by: Option<(CExpr, bool)>,
    /// On the aggregate path, the RETURN column whose AST expression equals
    /// the ORDER BY expression (precomputed from the ASTs).
    order_col: Option<usize>,
    has_aggregate: bool,
    skip: usize,
    limit: Option<usize>,
}

/// A `WHERE` conjunct `anchor.key = <text literal | $param>` lifted into
/// pattern 0's anchor scan, with the safety facts needed to decide at bind
/// time whether narrowing is observable-behavior-preserving.
#[derive(Debug, Clone)]
struct LiftedEq {
    key: String,
    value: CValue,
    /// Parameters referenced by conjuncts the interpreter would evaluate
    /// *before* this one; if any is unbound, the oracle may error on a row
    /// the narrowed scan would skip, so the lift is abandoned.
    prefix_params: Vec<usize>,
    /// Same reasoning for aggregates in preceding conjuncts (always an
    /// evaluation error in WHERE).
    prefix_has_aggregate: bool,
}

/// A compiled, snapshot-independent query plan. See the module docs.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    /// Slot names (node/edge variables) in first-appearance order.
    slots: Vec<String>,
    /// Parameter names in first-use order; [`CExpr::Param`] indexes this.
    params: Vec<String>,
    patterns: Vec<CPattern>,
    filter: Option<CExpr>,
    lifted: Option<LiftedEq>,
    ret: CReturn,
    /// The AST RETURN clause, kept so the gather half of scatter-gather can
    /// reuse the interpreter's merge (`gather_project`) verbatim.
    ret_ast: Return,
}

/// Bind-time state: the snapshot plus resolved parameter references.
struct Ctx<'a, S: ?Sized> {
    snap: &'a S,
    resolved: Vec<Option<&'a Value>>,
}

fn slot_of(slots: &mut Vec<String>, name: &str) -> usize {
    match slots.iter().position(|s| s == name) {
        Some(i) => i,
        None => {
            slots.push(name.to_owned());
            slots.len() - 1
        }
    }
}

fn param_of(params: &mut Vec<String>, name: &str) -> usize {
    match params.iter().position(|s| s == name) {
        Some(i) => i,
        None => {
            params.push(name.to_owned());
            params.len() - 1
        }
    }
}

fn compile_expr(expr: &Expr, slots: &[String], params: &mut Vec<String>) -> CExpr {
    let slot = |name: &str| slots.iter().position(|s| s == name);
    match expr {
        Expr::Literal(v) => CExpr::Lit(v.clone()),
        Expr::Param(name) => CExpr::Param(param_of(params, name)),
        Expr::Var(name) => match slot(name) {
            Some(i) => CExpr::Var(i),
            None => CExpr::UnboundVar,
        },
        Expr::Prop(var, key) => match slot(var) {
            Some(i) => CExpr::Prop(i, key.clone()),
            None => CExpr::UnboundProp,
        },
        Expr::Compare(l, op, r) => CExpr::Compare(
            Box::new(compile_expr(l, slots, params)),
            *op,
            Box::new(compile_expr(r, slots, params)),
        ),
        Expr::And(l, r) => CExpr::And(
            Box::new(compile_expr(l, slots, params)),
            Box::new(compile_expr(r, slots, params)),
        ),
        Expr::Or(l, r) => CExpr::Or(
            Box::new(compile_expr(l, slots, params)),
            Box::new(compile_expr(r, slots, params)),
        ),
        Expr::Not(e) => CExpr::Not(Box::new(compile_expr(e, slots, params))),
        Expr::Contains(l, r) => CExpr::Contains(
            Box::new(compile_expr(l, slots, params)),
            Box::new(compile_expr(r, slots, params)),
        ),
        Expr::StartsWith(l, r) => CExpr::StartsWith(
            Box::new(compile_expr(l, slots, params)),
            Box::new(compile_expr(r, slots, params)),
        ),
        Expr::EndsWith(l, r) => CExpr::EndsWith(
            Box::new(compile_expr(l, slots, params)),
            Box::new(compile_expr(r, slots, params)),
        ),
        Expr::CountStar | Expr::Count(_) => CExpr::Aggregate,
    }
}

/// Flatten an `AND` tree into conjuncts in the interpreter's left-to-right,
/// short-circuiting evaluation order.
fn conjuncts(expr: &Expr) -> Vec<&Expr> {
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::And(l, r) = e {
            walk(l, out);
            walk(r, out);
        } else {
            out.push(e);
        }
    }
    let mut out = Vec::new();
    walk(expr, &mut out);
    out
}

fn collect_params<'a>(expr: &'a Expr, out: &mut Vec<&'a str>) {
    match expr {
        Expr::Param(name) => out.push(name),
        Expr::Compare(l, _, r)
        | Expr::And(l, r)
        | Expr::Or(l, r)
        | Expr::Contains(l, r)
        | Expr::StartsWith(l, r)
        | Expr::EndsWith(l, r) => {
            collect_params(l, out);
            collect_params(r, out);
        }
        Expr::Not(e) | Expr::Count(e) => collect_params(e, out),
        Expr::Literal(_) | Expr::Var(_) | Expr::Prop(..) | Expr::CountStar => {}
    }
}

impl CompiledPlan {
    /// Compile a read query. Write queries are rejected with the same error
    /// the interpreted read path raises.
    pub fn compile(query: &Query) -> Result<CompiledPlan, CypherError> {
        let Query::Read {
            patterns,
            filter,
            ret,
        } = query
        else {
            return Err(CypherError::Exec(
                "write query on the read-only path".into(),
            ));
        };
        let mut slots: Vec<String> = Vec::new();
        let mut params: Vec<String> = Vec::new();
        let mut cpatterns: Vec<CPattern> = Vec::new();
        let mut bound: HashSet<usize> = HashSet::new();

        for pattern in patterns {
            let anchor_np = &pattern.nodes[0];
            let anchor_slot = anchor_np.var.as_deref().map(|v| slot_of(&mut slots, v));
            let scan = match anchor_slot {
                Some(s) if bound.contains(&s) => Scan::Bound(s),
                _ => match &anchor_np.label {
                    Some(label) => match first_name_text(anchor_np) {
                        Some(name) => Scan::ByName {
                            label: label.clone(),
                            name: name.to_owned(),
                        },
                        None => Scan::ByLabel(label.clone()),
                    },
                    None => Scan::Full,
                },
            };
            let map_eq = match scan {
                Scan::ByLabel(_) | Scan::Full => anchor_np
                    .props
                    .iter()
                    .find(|(_, v)| v.as_text().is_some())
                    .map(|(k, v)| (k.clone(), v.clone())),
                _ => None,
            };
            let anchor = CNode {
                slot: anchor_slot,
                label: anchor_np.label.clone(),
                props: anchor_np.props.clone(),
            };
            let mut steps = Vec::with_capacity(pattern.rels.len());
            for (i, rel) in pattern.rels.iter().enumerate() {
                let np = &pattern.nodes[i + 1];
                steps.push(CStep {
                    rel_type: rel.rel_type.clone(),
                    direction: rel.direction,
                    hops: rel.hops,
                    edge_slot: rel.var.as_deref().map(|v| slot_of(&mut slots, v)),
                    node: CNode {
                        slot: np.var.as_deref().map(|v| slot_of(&mut slots, v)),
                        label: np.label.clone(),
                        props: np.props.clone(),
                    },
                });
            }
            // Everything this pattern names is bound in every surviving row.
            bound.extend(anchor_slot);
            for s in &steps {
                bound.extend(s.edge_slot);
                bound.extend(s.node.slot);
            }
            cpatterns.push(CPattern {
                scan,
                map_eq,
                anchor,
                steps,
            });
        }

        let cfilter = filter
            .as_ref()
            .map(|e| compile_expr(e, &slots, &mut params));
        let lifted = filter
            .as_ref()
            .and_then(|f| analyze_lift(f, &patterns[0].nodes[0], &cpatterns[0], &mut params));

        let items: Vec<CItem> = ret
            .items
            .iter()
            .map(|i| match &i.expr {
                Expr::CountStar => CItem::CountStar,
                Expr::Count(inner) => CItem::Count(compile_expr(inner, &slots, &mut params)),
                e => CItem::Value(compile_expr(e, &slots, &mut params)),
            })
            .collect();
        let has_aggregate = items.iter().any(CItem::is_aggregate);
        let order_by = ret
            .order_by
            .as_ref()
            .map(|(e, asc)| (compile_expr(e, &slots, &mut params), *asc));
        let order_col = ret
            .order_by
            .as_ref()
            .and_then(|(e, _)| ret.items.iter().position(|i| &i.expr == e));
        let cret = CReturn {
            columns: ret
                .items
                .iter()
                .map(|i| i.alias.clone().unwrap_or_else(|| i.text.trim().to_owned()))
                .collect(),
            distinct: ret.distinct,
            items,
            order_by,
            order_col,
            has_aggregate,
            skip: ret.skip.unwrap_or(0),
            limit: ret.limit,
        };

        Ok(CompiledPlan {
            slots,
            params,
            patterns: cpatterns,
            filter: cfilter,
            lifted,
            ret: cret,
            ret_ast: ret.clone(),
        })
    }

    /// Parameter names this plan references, in first-use order.
    pub fn param_names(&self) -> &[String] {
        &self.params
    }

    /// Human-readable plan description: scan kind per pattern (and which
    /// index backs it), hop bounds, filter/projection facts.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        for (i, p) in self.patterns.iter().enumerate() {
            out.push_str(&format!("pattern {i}: "));
            match &p.scan {
                Scan::Bound(slot) => {
                    out.push_str(&format!("bound({})", self.slots[*slot]));
                }
                Scan::ByName { label, name } => {
                    out.push_str(&format!("name-index({label}, {name:?})"));
                }
                Scan::ByLabel(label) => out.push_str(&format!("label-index({label})")),
                Scan::Full => out.push_str("full-scan"),
            }
            if let Some((key, value)) = &p.map_eq {
                out.push_str(&format!(" + prop-index({key} = {value:?})"));
            }
            if i == 0 {
                if let Some(l) = &self.lifted {
                    let v = match &l.value {
                        CValue::Lit(v) => format!("{v:?}"),
                        CValue::Param(p) => format!("${}", self.params[*p]),
                    };
                    out.push_str(&format!(
                        " + prop-index({} = {v}, lifted from WHERE)",
                        l.key
                    ));
                }
            }
            for s in &p.steps {
                let arrow = match s.direction {
                    Direction::Out => "->",
                    Direction::In => "<-",
                    Direction::Either => "--",
                };
                let t = s.rel_type.as_deref().unwrap_or("*any*");
                match s.hops {
                    Some((lo, hi)) => out.push_str(&format!(" {arrow}[{t} *{lo}..{hi}]")),
                    None => out.push_str(&format!(" {arrow}[{t}]")),
                }
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "filter: {}, params: [{}], aggregate: {}, distinct: {}\n",
            if self.filter.is_some() { "yes" } else { "no" },
            self.params.join(", "),
            self.ret.has_aggregate,
            self.ret.distinct,
        ));
        out
    }

    /// Execute against any snapshot. Differentially equal to the interpreted
    /// oracle (`execute_read_with_params`) — results *and* errors.
    pub fn execute_on<S: GraphSnapshot + ?Sized>(
        &self,
        snap: &S,
        params: &Params,
    ) -> Result<QueryResult, CypherError> {
        let ctx = self.bind(snap, params);
        let mut rows: Vec<CRow> = vec![vec![None; self.slots.len()]];
        for pi in 0..self.patterns.len() {
            rows = self.expand_pattern(&ctx, pi, rows);
        }
        let rows = self.apply_filter(&ctx, rows)?;
        self.project(&ctx, rows)
    }

    /// Shard-side half of a compiled scatter-gather read: identical row set
    /// to the interpreter's `scatter_match` under the same ownership test.
    pub fn scatter_on<S: GraphSnapshot + ?Sized>(
        &self,
        snap: &S,
        params: &Params,
        owns: &dyn Fn(NodeId) -> bool,
    ) -> Result<Vec<ScatterRow>, CypherError> {
        let ctx = self.bind(snap, params);
        // Pattern 0: enumerate anchors, keep only owned ones. The anchor
        // scan is never `Bound` (a first pattern's variable cannot be bound
        // before any pattern ran).
        let first = &self.patterns[0];
        let mut anchored: Vec<(NodeId, CRow)> = Vec::new();
        for start in self.static_candidates(&ctx, 0) {
            if !owns(start) {
                continue;
            }
            let mut row: CRow = vec![None; self.slots.len()];
            if let Some(slot) = first.anchor.slot {
                row[slot] = Some(CBinding::Node(start));
            }
            let mut out = Vec::new();
            self.extend(&ctx, first, 0, start, row, &mut Vec::new(), &mut out);
            anchored.extend(out.into_iter().map(|r| (start, r)));
        }
        // Remaining patterns join against the full replica, anchor unchanged.
        for pi in 1..self.patterns.len() {
            let statics = match self.patterns[pi].scan {
                Scan::Bound(_) => None,
                _ => Some(self.static_candidates(&ctx, pi)),
            };
            let mut next = Vec::new();
            for (anchor, row) in anchored {
                let mut out = Vec::new();
                self.expand_row(&ctx, pi, row, statics.as_deref(), &mut out);
                next.extend(out.into_iter().map(|r| (anchor, r)));
            }
            anchored = next;
        }
        // WHERE.
        let mut filtered = Vec::with_capacity(anchored.len());
        for (anchor, row) in anchored {
            match &self.filter {
                None => filtered.push((anchor, row)),
                Some(expr) => {
                    if self.eval(&ctx, &row, expr)?.truthy() {
                        filtered.push((anchor, row));
                    }
                }
            }
        }
        // Materialize RETURN items (+ per-row ORDER BY key).
        let per_row_order = self.ret.order_by.is_some() && !self.ret.has_aggregate;
        let mut out = Vec::with_capacity(filtered.len());
        for (seq, (anchor, row)) in filtered.into_iter().enumerate() {
            let mut items = Vec::with_capacity(self.ret.items.len());
            for item in &self.ret.items {
                items.push(match item {
                    CItem::CountStar => Value::Null,
                    CItem::Count(inner) => self.eval(&ctx, &row, inner)?,
                    CItem::Value(expr) => self.eval(&ctx, &row, expr)?,
                });
            }
            let order = match &self.ret.order_by {
                Some((expr, _)) if per_row_order => Some(self.eval(&ctx, &row, expr)?),
                _ => None,
            };
            out.push(ScatterRow {
                anchor,
                seq: seq as u32,
                items,
                order,
            });
        }
        Ok(out)
    }

    /// Gather-side merge for rows produced by [`CompiledPlan::scatter_on`] —
    /// delegates to the interpreter's gather over the saved RETURN AST, so
    /// the merge is the proven one.
    pub fn gather(&self, scatter: Vec<ScatterRow>) -> Result<QueryResult, CypherError> {
        gather_project_ret(&self.ret_ast, scatter)
    }

    // ---- internals -------------------------------------------------------

    fn bind<'a, S: ?Sized>(&self, snap: &'a S, params: &'a Params) -> Ctx<'a, S> {
        Ctx {
            snap,
            resolved: self.params.iter().map(|n| params.get(n)).collect(),
        }
    }

    /// Candidates for a non-`Bound` anchor scan; row-independent, so callers
    /// compute this once per pattern per execution.
    fn static_candidates<S: GraphSnapshot + ?Sized>(
        &self,
        ctx: &Ctx<'_, S>,
        pi: usize,
    ) -> Vec<NodeId> {
        let pat = &self.patterns[pi];
        let matches = |id: &NodeId| cnode_matches(ctx.snap, *id, &pat.anchor);
        match &pat.scan {
            Scan::Bound(_) => Vec::new(),
            Scan::ByName { label, name } => ctx
                .snap
                .node_by_name(label, name)
                .into_iter()
                .filter(matches)
                .collect(),
            Scan::ByLabel(label) => match self.index_candidates(ctx, pi) {
                Some(ids) => ids.into_iter().filter(matches).collect(),
                None => ctx
                    .snap
                    .nodes_with_label(label)
                    .into_iter()
                    .filter(matches)
                    .collect(),
            },
            Scan::Full => match self.index_candidates(ctx, pi) {
                Some(ids) => ids.into_iter().filter(matches).collect(),
                None => ctx
                    .snap
                    .all_node_ids()
                    .into_iter()
                    .filter(matches)
                    .collect(),
            },
        }
    }

    /// Equality-property-index candidates for pattern `pi`'s anchor, if an
    /// index applies *and* narrowing is safe under the current bindings.
    /// `None` falls back to the interpreter's own scan.
    fn index_candidates<S: GraphSnapshot + ?Sized>(
        &self,
        ctx: &Ctx<'_, S>,
        pi: usize,
    ) -> Option<Vec<NodeId>> {
        let pat = &self.patterns[pi];
        if let Some((key, value)) = &pat.map_eq {
            // Prop-map constraints are re-checked by the anchor matcher, so
            // the index is always safe when the snapshot provides one.
            return ctx.snap.nodes_with_prop_eq(key, value);
        }
        if pi != 0 {
            return None;
        }
        let lifted = self.lifted.as_ref()?;
        if lifted.prefix_has_aggregate {
            return None;
        }
        if lifted
            .prefix_params
            .iter()
            .any(|&p| ctx.resolved[p].is_none())
        {
            return None;
        }
        let value: &Value = match &lifted.value {
            CValue::Lit(v) => v,
            CValue::Param(p) => ctx.resolved[*p]?,
        };
        ctx.snap.nodes_with_prop_eq(&lifted.key, value)
    }

    /// Expand every row through pattern `pi` (anchor candidates + path
    /// extension), preserving the interpreter's enumeration order.
    fn expand_pattern<S: GraphSnapshot + ?Sized>(
        &self,
        ctx: &Ctx<'_, S>,
        pi: usize,
        rows: Vec<CRow>,
    ) -> Vec<CRow> {
        let statics = match self.patterns[pi].scan {
            Scan::Bound(_) => None,
            _ => Some(self.static_candidates(ctx, pi)),
        };
        let mut next = Vec::new();
        for row in rows {
            self.expand_row(ctx, pi, row, statics.as_deref(), &mut next);
        }
        next
    }

    fn expand_row<S: GraphSnapshot + ?Sized>(
        &self,
        ctx: &Ctx<'_, S>,
        pi: usize,
        row: CRow,
        statics: Option<&[NodeId]>,
        out: &mut Vec<CRow>,
    ) {
        let pat = &self.patterns[pi];
        let bound_candidate = match pat.scan {
            Scan::Bound(slot) => match row[slot] {
                Some(CBinding::Node(id)) if cnode_matches(ctx.snap, id, &pat.anchor) => {
                    Some(vec![id])
                }
                _ => Some(Vec::new()),
            },
            _ => None,
        };
        let candidates: &[NodeId] = match &bound_candidate {
            Some(c) => c,
            None => statics.unwrap_or(&[]),
        };
        for &start in candidates {
            let mut row = row.clone();
            if let Some(slot) = pat.anchor.slot {
                row[slot] = Some(CBinding::Node(start));
            }
            self.extend(ctx, pat, 0, start, row, &mut Vec::new(), out);
        }
    }

    /// Extend a partial path match from `pat.steps[step]` bound to `at` —
    /// the compiled mirror of the interpreter's `extend`.
    #[allow(clippy::too_many_arguments)]
    fn extend<S: GraphSnapshot + ?Sized>(
        &self,
        ctx: &Ctx<'_, S>,
        pat: &CPattern,
        step: usize,
        at: NodeId,
        row: CRow,
        used_edges: &mut Vec<EdgeId>,
        out: &mut Vec<CRow>,
    ) {
        if step == pat.steps.len() {
            out.push(row);
            return;
        }
        let s = &pat.steps[step];

        if let Some((lo, hi)) = s.hops {
            for other in var_length_endpoints(ctx.snap, at, s, lo, hi) {
                if let Some(slot) = s.node.slot {
                    match row[slot] {
                        Some(CBinding::Node(bound)) if bound != other => continue,
                        Some(CBinding::Edge(_)) => continue,
                        _ => {}
                    }
                }
                if !cnode_matches(ctx.snap, other, &s.node) {
                    continue;
                }
                let mut next_row = row.clone();
                if let Some(slot) = s.node.slot {
                    next_row[slot] = Some(CBinding::Node(other));
                }
                self.extend(ctx, pat, step + 1, other, next_row, used_edges, out);
            }
            return;
        }

        let try_edge =
            |edge_id: EdgeId, other: NodeId, used_edges: &mut Vec<EdgeId>, out: &mut Vec<CRow>| {
                if used_edges.contains(&edge_id) {
                    return;
                }
                if let Some(slot) = s.edge_slot {
                    if let Some(existing) = row[slot] {
                        if existing != CBinding::Edge(edge_id) {
                            return;
                        }
                    }
                }
                if let Some(slot) = s.node.slot {
                    match row[slot] {
                        Some(CBinding::Node(bound)) if bound != other => return,
                        Some(CBinding::Edge(_)) => return,
                        _ => {}
                    }
                }
                if !cnode_matches(ctx.snap, other, &s.node) {
                    return;
                }
                let mut next_row = row.clone();
                if let Some(slot) = s.edge_slot {
                    next_row[slot] = Some(CBinding::Edge(edge_id));
                }
                if let Some(slot) = s.node.slot {
                    next_row[slot] = Some(CBinding::Node(other));
                }
                used_edges.push(edge_id);
                self.extend(ctx, pat, step + 1, other, next_row, used_edges, out);
                used_edges.pop();
            };

        if matches!(s.direction, Direction::Out | Direction::Either) {
            for &eid in ctx.snap.out_edge_ids(at) {
                let Some(edge) = ctx.snap.edge(eid) else {
                    continue;
                };
                if type_matches(s.rel_type.as_deref(), &edge.rel_type) {
                    try_edge(eid, edge.to, used_edges, out);
                }
            }
        }
        if matches!(s.direction, Direction::In | Direction::Either) {
            for &eid in ctx.snap.in_edge_ids(at) {
                let Some(edge) = ctx.snap.edge(eid) else {
                    continue;
                };
                if type_matches(s.rel_type.as_deref(), &edge.rel_type) {
                    try_edge(eid, edge.from, used_edges, out);
                }
            }
        }
    }

    fn apply_filter<S: GraphSnapshot + ?Sized>(
        &self,
        ctx: &Ctx<'_, S>,
        rows: Vec<CRow>,
    ) -> Result<Vec<CRow>, CypherError> {
        match &self.filter {
            None => Ok(rows),
            Some(expr) => {
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    if self.eval(ctx, &row, expr)?.truthy() {
                        out.push(row);
                    }
                }
                Ok(out)
            }
        }
    }

    fn eval<S: GraphSnapshot + ?Sized>(
        &self,
        ctx: &Ctx<'_, S>,
        row: &CRow,
        expr: &CExpr,
    ) -> Result<Value, CypherError> {
        eval_expr(ctx.snap, &ctx.resolved, &self.params, row, expr)
    }

    /// The compiled mirror of the interpreter's `project`.
    fn project<S: GraphSnapshot + ?Sized>(
        &self,
        ctx: &Ctx<'_, S>,
        rows: Vec<CRow>,
    ) -> Result<QueryResult, CypherError> {
        let ret = &self.ret;
        let mut out_rows: Vec<Vec<Value>> = Vec::new();
        if ret.has_aggregate {
            // Implicit grouping by the non-aggregate items, first-seen order.
            let mut groups: Vec<(Vec<Value>, Vec<CRow>)> = Vec::new();
            for row in rows {
                let mut key = Vec::new();
                for item in &ret.items {
                    if let CItem::Value(expr) = item {
                        key.push(self.eval(ctx, &row, expr)?);
                    }
                }
                match groups
                    .iter_mut()
                    .find(|(k, _)| k.len() == key.len() && k.iter().zip(&key).all(|(a, b)| a == b))
                {
                    Some((_, members)) => members.push(row),
                    None => groups.push((key, vec![row])),
                }
            }
            for (key, members) in groups {
                let mut row_out = Vec::with_capacity(ret.items.len());
                let mut key_iter = key.into_iter();
                for item in &ret.items {
                    match item {
                        CItem::CountStar => row_out.push(Value::Int(members.len() as i64)),
                        CItem::Count(inner) => {
                            let mut n = 0i64;
                            for m in &members {
                                if !matches!(self.eval(ctx, m, inner)?, Value::Null) {
                                    n += 1;
                                }
                            }
                            row_out.push(Value::Int(n));
                        }
                        CItem::Value(_) => row_out.push(key_iter.next().unwrap_or(Value::Null)),
                    }
                }
                out_rows.push(row_out);
            }
            if let Some((_, asc)) = &ret.order_by {
                if let Some(col) = ret.order_col {
                    out_rows.sort_by(|a, b| {
                        let o = a[col].cmp_order(&b[col]);
                        if *asc {
                            o
                        } else {
                            o.reverse()
                        }
                    });
                }
            }
        } else {
            for row in &rows {
                let mut projected = Vec::with_capacity(ret.items.len());
                for item in &ret.items {
                    projected.push(match item {
                        CItem::Value(expr) => self.eval(ctx, row, expr)?,
                        // Unreachable: has_aggregate is false.
                        CItem::CountStar | CItem::Count(_) => Value::Null,
                    });
                }
                out_rows.push(projected);
            }
            // ORDER BY evaluates against the source rows.
            if let Some((expr, asc)) = &ret.order_by {
                let mut keyed: Vec<(Value, Vec<Value>)> = rows
                    .iter()
                    .zip(out_rows)
                    .map(|(row, out)| Ok((self.eval(ctx, row, expr)?, out)))
                    .collect::<Result<_, CypherError>>()?;
                keyed.sort_by(|a, b| {
                    let o = a.0.cmp_order(&b.0);
                    if *asc {
                        o
                    } else {
                        o.reverse()
                    }
                });
                out_rows = keyed.into_iter().map(|(_, o)| o).collect();
            }
        }

        if ret.distinct {
            let mut seen: Vec<Vec<Value>> = Vec::new();
            out_rows.retain(|row| {
                if seen.iter().any(|s| s == row) {
                    false
                } else {
                    seen.push(row.clone());
                    true
                }
            });
        }
        if ret.skip > 0 {
            out_rows.drain(..ret.skip.min(out_rows.len()));
        }
        if let Some(limit) = ret.limit {
            out_rows.truncate(limit);
        }

        Ok(QueryResult {
            columns: ret.columns.clone(),
            rows: out_rows,
            ..QueryResult::default()
        })
    }
}

/// Compiled-expression evaluation over a slot row — shared by plan
/// execution and [`CompiledNodePredicate`]. `resolved` are the bind-time
/// parameter lookups (indexed by [`CExpr::Param`]), `names` the parameter
/// names for Bind error messages.
fn eval_expr<S: GraphSnapshot + ?Sized>(
    snap: &S,
    resolved: &[Option<&Value>],
    names: &[String],
    row: &CRow,
    expr: &CExpr,
) -> Result<Value, CypherError> {
    Ok(match expr {
        CExpr::Lit(v) => v.clone(),
        CExpr::Param(i) => match resolved[*i] {
            Some(v) => v.clone(),
            None => {
                return Err(CypherError::Bind(format!(
                    "unbound parameter ${}",
                    names[*i]
                )))
            }
        },
        CExpr::Var(slot) => match row[*slot] {
            Some(CBinding::Node(id)) => Value::Node(id),
            Some(CBinding::Edge(id)) => Value::Edge(id),
            None => Value::Null,
        },
        CExpr::UnboundVar | CExpr::UnboundProp => Value::Null,
        CExpr::Prop(slot, key) => match row[*slot] {
            Some(CBinding::Node(id)) => snap
                .node(id)
                .and_then(|n| n.props.get(key))
                .cloned()
                .unwrap_or(Value::Null),
            Some(CBinding::Edge(id)) => snap
                .edge(id)
                .and_then(|e| e.props.get(key))
                .cloned()
                .unwrap_or(Value::Null),
            None => Value::Null,
        },
        CExpr::Compare(l, op, r) => {
            let a = eval_expr(snap, resolved, names, row, l)?;
            let b = eval_expr(snap, resolved, names, row, r)?;
            if matches!(a, Value::Null) || matches!(b, Value::Null) {
                return Ok(Value::Null);
            }
            let result = match op {
                CmpOp::Eq => a.eq_cypher(&b),
                CmpOp::Ne => !a.eq_cypher(&b),
                CmpOp::Lt => a.cmp_order(&b) == std::cmp::Ordering::Less,
                CmpOp::Le => a.cmp_order(&b) != std::cmp::Ordering::Greater,
                CmpOp::Gt => a.cmp_order(&b) == std::cmp::Ordering::Greater,
                CmpOp::Ge => a.cmp_order(&b) != std::cmp::Ordering::Less,
            };
            Value::Bool(result)
        }
        CExpr::And(l, r) => Value::Bool(
            eval_expr(snap, resolved, names, row, l)?.truthy()
                && eval_expr(snap, resolved, names, row, r)?.truthy(),
        ),
        CExpr::Or(l, r) => Value::Bool(
            eval_expr(snap, resolved, names, row, l)?.truthy()
                || eval_expr(snap, resolved, names, row, r)?.truthy(),
        ),
        CExpr::Not(e) => Value::Bool(!eval_expr(snap, resolved, names, row, e)?.truthy()),
        CExpr::Contains(l, r) => string_op(snap, resolved, names, row, l, r, |a, b| a.contains(b))?,
        CExpr::StartsWith(l, r) => {
            string_op(snap, resolved, names, row, l, r, |a, b| a.starts_with(b))?
        }
        CExpr::EndsWith(l, r) => {
            string_op(snap, resolved, names, row, l, r, |a, b| a.ends_with(b))?
        }
        CExpr::Aggregate => return Err(CypherError::Exec("aggregate outside RETURN".into())),
    })
}

fn string_op<S: GraphSnapshot + ?Sized>(
    snap: &S,
    resolved: &[Option<&Value>],
    names: &[String],
    row: &CRow,
    l: &CExpr,
    r: &CExpr,
    f: impl Fn(&str, &str) -> bool,
) -> Result<Value, CypherError> {
    let a = eval_expr(snap, resolved, names, row, l)?;
    let b = eval_expr(snap, resolved, names, row, r)?;
    match (a.as_text(), b.as_text()) {
        (Some(x), Some(y)) => Ok(Value::Bool(f(x, y))),
        _ => Ok(Value::Null),
    }
}

/// A `WHERE`-style predicate over a single node variable, compiled to the
/// plan expression form — the standing-query twin of
/// [`super::exec::node_satisfies`], but snapshot-generic and with the
/// variable resolved to a slot once at compile time.
#[derive(Debug, Clone)]
pub struct CompiledNodePredicate {
    expr: CExpr,
    params: Vec<String>,
}

impl CompiledNodePredicate {
    /// Compile `expr` with `var` bound to the candidate node.
    pub fn compile(expr: &Expr, var: &str) -> CompiledNodePredicate {
        let slots = vec![var.to_owned()];
        let mut params = Vec::new();
        CompiledNodePredicate {
            expr: compile_expr(expr, &slots, &mut params),
            params,
        }
    }

    /// Whether `id` satisfies the predicate — same truthiness and NULL
    /// propagation as `WHERE`; evaluation errors (unbound `$param`,
    /// aggregates) are non-matches, exactly like the interpreted path.
    pub fn matches<S: GraphSnapshot + ?Sized>(&self, snap: &S, id: NodeId) -> bool {
        let resolved: Vec<Option<&Value>> = vec![None; self.params.len()];
        let row: CRow = vec![Some(CBinding::Node(id))];
        eval_expr(snap, &resolved, &self.params, &row, &self.expr)
            .map(|v| v.truthy())
            .unwrap_or(false)
    }
}

fn type_matches(want: Option<&str>, got: &str) -> bool {
    want.is_none_or(|t| t == got)
}

fn first_name_text(np: &NodePattern) -> Option<&str> {
    np.props
        .iter()
        .find(|(k, _)| k == "name")
        .and_then(|(_, v)| match v {
            Value::Text(s) => Some(s.as_str()),
            _ => None,
        })
}

fn cnode_matches<S: GraphSnapshot + ?Sized>(snap: &S, id: NodeId, cn: &CNode) -> bool {
    let Some(node) = snap.node(id) else {
        return false;
    };
    if let Some(label) = &cn.label {
        if &node.label != label {
            return false;
        }
    }
    cn.props
        .iter()
        .all(|(k, v)| node.props.get(k).is_some_and(|pv| pv.eq_cypher(v)))
}

/// The compiled twin of the interpreter's `var_length_endpoints` — same
/// level-set walk, same ascending-id result order, but untyped undirected
/// steps ride a snapshot's frozen k-hop adjacency when it offers one (the
/// adjacency table *is* the deduplicated undirected neighbor set, so the
/// per-level frontier is identical either way).
fn var_length_endpoints<S: GraphSnapshot + ?Sized>(
    snap: &S,
    at: NodeId,
    s: &CStep,
    lo: usize,
    hi: usize,
) -> Vec<NodeId> {
    let untyped_undirected = s.rel_type.is_none() && s.direction == Direction::Either;
    let mut result: HashSet<NodeId> = HashSet::new();
    let mut frontier: HashSet<NodeId> = HashSet::new();
    frontier.insert(at);
    for level in 1..=hi {
        let mut next: HashSet<NodeId> = HashSet::new();
        for &node in &frontier {
            if untyped_undirected {
                if let Some(adj) = snap.khop_adjacency(node) {
                    next.extend(adj.iter().copied());
                    continue;
                }
            }
            if matches!(s.direction, Direction::Out | Direction::Either) {
                for &eid in snap.out_edge_ids(node) {
                    let Some(edge) = snap.edge(eid) else { continue };
                    if type_matches(s.rel_type.as_deref(), &edge.rel_type) {
                        next.insert(edge.to);
                    }
                }
            }
            if matches!(s.direction, Direction::In | Direction::Either) {
                for &eid in snap.in_edge_ids(node) {
                    let Some(edge) = snap.edge(eid) else { continue };
                    if type_matches(s.rel_type.as_deref(), &edge.rel_type) {
                        next.insert(edge.from);
                    }
                }
            }
        }
        if level >= lo {
            result.extend(next.iter().copied());
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    let mut out: Vec<NodeId> = result.into_iter().collect();
    out.sort();
    out
}

/// Find the first `WHERE` conjunct of the form `anchor.key = <text literal>`
/// or `anchor.key = $param` (either operand order) that can tighten pattern
/// 0's anchor scan, recording the bind-time safety facts.
fn analyze_lift(
    filter: &Expr,
    anchor_np: &NodePattern,
    cpat: &CPattern,
    params: &mut Vec<String>,
) -> Option<LiftedEq> {
    if !matches!(cpat.scan, Scan::ByLabel(_) | Scan::Full) || cpat.map_eq.is_some() {
        return None;
    }
    let anchor_var = anchor_np.var.as_deref()?;
    let cs = conjuncts(filter);
    for (i, c) in cs.iter().enumerate() {
        let Expr::Compare(l, CmpOp::Eq, r) = c else {
            continue;
        };
        let eq = match (l.as_ref(), r.as_ref()) {
            (Expr::Prop(var, key), rhs) if var == anchor_var => Some((key, rhs)),
            (lhs, Expr::Prop(var, key)) if var == anchor_var => Some((key, lhs)),
            _ => None,
        };
        let Some((key, operand)) = eq else { continue };
        let value = match operand {
            Expr::Literal(v @ Value::Text(_)) => CValue::Lit(v.clone()),
            Expr::Param(name) => CValue::Param(param_of(params, name)),
            _ => continue,
        };
        let mut prefix_names: Vec<&str> = Vec::new();
        let mut prefix_has_aggregate = false;
        for p in &cs[..i] {
            collect_params(p, &mut prefix_names);
            prefix_has_aggregate |= p.contains_aggregate();
        }
        let prefix_params = prefix_names
            .into_iter()
            .map(|n| param_of(params, n))
            .collect();
        return Some(LiftedEq {
            key: key.clone(),
            value,
            prefix_params,
            prefix_has_aggregate,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::super::parse;
    use super::*;
    use crate::store::GraphStore;

    fn demo_store() -> GraphStore {
        let mut g = GraphStore::new();
        let wannacry = g.create_node("Malware", [("name", Value::from("wannacry"))]);
        let emotet = g.create_node("Malware", [("name", Value::from("emotet"))]);
        let file = g.create_node("FileName", [("name", Value::from("tasksche.exe"))]);
        let actor = g.create_node("ThreatActor", [("name", Value::from("lazarus group"))]);
        let t1 = g.create_node("Technique", [("name", Value::from("smb exploitation"))]);
        let t2 = g.create_node("Technique", [("name", Value::from("keylogging"))]);
        g.create_edge(wannacry, "DROP", file, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(wannacry, "ATTRIBUTED_TO", actor, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(actor, "USES", t1, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(actor, "USES", t2, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(emotet, "USES", t2, [] as [(&str, Value); 0])
            .unwrap();
        g
    }

    fn check(g: &GraphStore, text: &str) {
        let query = parse(text).unwrap();
        let oracle = super::super::exec::execute_read(g, &query);
        let plan = CompiledPlan::compile(&query).unwrap();
        let compiled = plan.execute_on(g, &Params::new());
        match (oracle, compiled) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.columns, b.columns, "{text}");
                assert_eq!(a.rows, b.rows, "{text}");
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "{text}"),
            (a, b) => panic!("{text}: oracle {a:?} vs compiled {b:?}"),
        }
    }

    #[test]
    fn compiled_matches_oracle_on_representative_queries() {
        let g = demo_store();
        for q in [
            "MATCH (n) RETURN n.name ORDER BY n.name",
            "MATCH (m:Malware) RETURN m.name",
            "MATCH (m:Malware {name: 'wannacry'})-[:DROP]->(f) RETURN f.name",
            "MATCH (a)-[:USES]->(t:Technique) RETURN a.name, count(t) AS uses ORDER BY count(t) DESC",
            "MATCH (n) WHERE n.name = 'emotet' RETURN n",
            "MATCH (n:Technique) RETURN count(*)",
            "MATCH (a)-[:USES]->(t) RETURN DISTINCT t.name ORDER BY t.name SKIP 1 LIMIT 1",
            "MATCH (m:Malware)-[*1..2]-(x) RETURN m.name, x.name ORDER BY x.name",
            "MATCH (m:Malware)-[:USES*1..3]->(t) RETURN t.name",
            "MATCH (e:Malware {name: 'emotet'})-[:USES]->(t), (a:ThreatActor)-[:USES]->(t) \
             RETURN a.name, t.name",
            "MATCH (n) WHERE count(*) > 1 RETURN n",
        ] {
            check(&g, q);
        }
    }

    #[test]
    fn params_bind_at_execution_time() {
        let g = demo_store();
        let query = parse("MATCH (n) WHERE n.name = $who RETURN n.name").unwrap();
        let plan = CompiledPlan::compile(&query).unwrap();
        let mut params = Params::new();
        params.insert("who".into(), Value::from("emotet"));
        let r = plan.execute_on(&g, &params).unwrap();
        assert_eq!(r.rows, vec![vec![Value::from("emotet")]]);
        // Same plan, different binding.
        params.insert("who".into(), Value::from("wannacry"));
        let r = plan.execute_on(&g, &params).unwrap();
        assert_eq!(r.rows, vec![vec![Value::from("wannacry")]]);
        // Unbound parameter: the same lazy Bind error the oracle raises.
        let err = plan.execute_on(&g, &Params::new()).unwrap_err();
        assert_eq!(err, CypherError::Bind("unbound parameter $who".into()));
        let oracle =
            super::super::exec::execute_read_with_params(&g, &query, &Params::new()).unwrap_err();
        assert_eq!(err, oracle);
    }

    #[test]
    fn explain_names_the_chosen_scan() {
        let q = parse("MATCH (m:Malware {name: 'x'})-[:USES*1..3]->(t) RETURN t").unwrap();
        let plan = CompiledPlan::compile(&q).unwrap();
        let ex = plan.explain();
        assert!(ex.contains("name-index(Malware"), "{ex}");
        assert!(ex.contains("*1..3"), "{ex}");
        let q = parse("MATCH (n) WHERE n.name = $who RETURN n").unwrap();
        let ex = CompiledPlan::compile(&q).unwrap().explain();
        assert!(ex.contains("lifted from WHERE"), "{ex}");
    }

    #[test]
    fn scatter_gather_matches_plain_execution() {
        let g = demo_store();
        for text in [
            "MATCH (n) WHERE n.name CONTAINS 'o' RETURN n.name ORDER BY n.name",
            "MATCH (a)-[:USES]->(t:Technique) RETURN a.name, count(t) AS uses ORDER BY count(t) DESC",
            "MATCH (m:Malware)-[*1..2]-(x) RETURN x.name ORDER BY x.name",
        ] {
            let query = parse(text).unwrap();
            let plan = CompiledPlan::compile(&query).unwrap();
            let plain = plan.execute_on(&g, &Params::new()).unwrap();
            for shards in [1u64, 3] {
                let mut rows = Vec::new();
                for shard in 0..shards {
                    rows.extend(
                        plan.scatter_on(&g, &Params::new(), &|id: NodeId| id.0 % shards == shard)
                            .unwrap(),
                    );
                }
                let merged = plan.gather(rows).unwrap();
                assert_eq!(plain.columns, merged.columns, "{text}");
                assert_eq!(plain.rows, merged.rows, "{text} at {shards} shards");
            }
        }
    }
}
