//! Cypher tokenizer.

use super::CypherError;

/// Lexical tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Colon,
    Comma,
    Dot,
    Dash,
    Arrow,     // ->
    BackArrow, // <-
    Eq,
    Ne, // <>
    Lt,
    Le,
    Gt,
    Ge,
    Star,
    /// `$name` — a query parameter reference.
    Param(String),
}

/// Tokenize a query string. Identifiers keep their case; keyword matching is
/// done case-insensitively by the parser.
pub fn lex(text: &str) -> Result<Vec<Tok>, CypherError> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = text[i..].chars().next().unwrap();
        match c {
            c if c.is_whitespace() => i += c.len_utf8(),
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '[' => {
                out.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Tok::RBracket);
                i += 1;
            }
            '{' => {
                out.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Tok::RBrace);
                i += 1;
            }
            ':' => {
                out.push(Tok::Colon);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '.' => {
                out.push(Tok::Dot);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '=' => {
                out.push(Tok::Eq);
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Tok::Arrow);
                    i += 2;
                } else {
                    out.push(Tok::Dash);
                    i += 1;
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'-') => {
                    out.push(Tok::BackArrow);
                    i += 2;
                }
                Some(&b'>') => {
                    out.push(Tok::Ne);
                    i += 2;
                }
                Some(&b'=') => {
                    out.push(Tok::Le);
                    i += 2;
                }
                _ => {
                    out.push(Tok::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Ge);
                    i += 2;
                } else {
                    out.push(Tok::Gt);
                    i += 1;
                }
            }
            '"' | '\'' => {
                let quote = c;
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    if j >= bytes.len() {
                        return Err(CypherError::Lex("unterminated string".into()));
                    }
                    let cj = text[j..].chars().next().unwrap();
                    if cj == quote {
                        break;
                    }
                    if cj == '\\' && j + 1 < bytes.len() {
                        let esc = text[j + 1..].chars().next().unwrap();
                        s.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            other => other,
                        });
                        j += 1 + esc.len_utf8();
                        continue;
                    }
                    s.push(cj);
                    j += cj.len_utf8();
                }
                out.push(Tok::Str(s));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                i += 1;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || (bytes[i] == b'.'
                            && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())))
                {
                    if bytes[i] == b'.' {
                        is_float = true;
                    }
                    i += 1;
                }
                let slice = &text[start..i];
                if is_float {
                    out.push(Tok::Float(slice.parse().map_err(|_| {
                        CypherError::Lex(format!("bad float literal {slice:?}"))
                    })?));
                } else {
                    out.push(Tok::Int(slice.parse().map_err(|_| {
                        CypherError::Lex(format!("bad int literal {slice:?}"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Tok::Ident(text[start..i].to_owned()));
            }
            '$' => {
                let start = i + 1;
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                if i == start {
                    return Err(CypherError::Lex("expected parameter name after '$'".into()));
                }
                out.push(Tok::Param(text[start..i].to_owned()));
            }
            other => {
                return Err(CypherError::Lex(format!("unexpected character {other:?}")));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_the_demo_query() {
        let toks = lex("match (n) where n.name = \"wannacry\" return n").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::Ident("match".into()),
                Tok::LParen,
                Tok::Ident("n".into()),
                Tok::RParen,
                Tok::Ident("where".into()),
                Tok::Ident("n".into()),
                Tok::Dot,
                Tok::Ident("name".into()),
                Tok::Eq,
                Tok::Str("wannacry".into()),
                Tok::Ident("return".into()),
                Tok::Ident("n".into()),
            ]
        );
    }

    #[test]
    fn lexes_arrows_and_comparisons() {
        let toks = lex("-[:DROP]-> <-[r]- <> <= >= < >").unwrap();
        assert!(toks.contains(&Tok::Arrow));
        assert!(toks.contains(&Tok::BackArrow));
        assert!(toks.contains(&Tok::Ne));
        assert!(toks.contains(&Tok::Le));
        assert!(toks.contains(&Tok::Ge));
    }

    #[test]
    fn lexes_numbers_and_strings() {
        let toks = lex("42 3.25 'single' \"dou\\\"ble\"").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::Int(42),
                Tok::Float(3.25),
                Tok::Str("single".into()),
                Tok::Str("dou\"ble".into()),
            ]
        );
    }

    #[test]
    fn lexes_params() {
        let toks = lex("$who $x_1").unwrap();
        assert_eq!(
            toks,
            vec![Tok::Param("who".into()), Tok::Param("x_1".into())]
        );
        assert!(lex("$").is_err());
        assert!(lex("$ name").is_err());
    }

    #[test]
    fn rejects_junk() {
        assert!(lex("match (n) where n.name = \"unterminated").is_err());
        assert!(lex("§").is_err());
    }
}
