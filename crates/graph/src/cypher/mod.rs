//! A Cypher subset: enough of the language for the paper's §3 demo and the
//! exploration UI — `MATCH` path patterns, `WHERE`, `RETURN` with implicit
//! grouping for `count(...)`, `ORDER BY` / `SKIP` / `LIMIT` / `DISTINCT`,
//! plus `CREATE`, `MERGE` and `(DETACH) DELETE`.
//!
//! Grammar (informal):
//!
//! ```text
//! query   := MATCH pattern (',' pattern)* [WHERE expr]
//!            ( RETURN items [ORDER BY expr [ASC|DESC]] [SKIP n] [LIMIT n]
//!            | [DETACH] DELETE var (',' var)* )
//!          | CREATE pattern (',' pattern)*
//!          | MERGE pattern [RETURN items]
//! pattern := node (rel node)*
//! node    := '(' [var] [':' Label] [props] ')'
//! rel     := '-' '[' [var] [':' TYPE] ']' '->' | '<-' '[' ... ']' '-'
//!          | '-' '[' ... ']' '-'
//! ```

mod exec;
mod lexer;
mod parser;
pub mod planner;

pub use exec::{
    execute, execute_read, execute_read_with_params, execute_with_params, gather_project,
    gather_project_ret, node_satisfies, scatter_match, scatter_match_with_params, QueryResult,
    ScatterRow,
};
pub use parser::{parse, parse_predicate, MAX_EXPR_DEPTH, MAX_PATTERN_HOPS};
pub use planner::{CompiledNodePredicate, CompiledPlan};

use crate::value::Value;

/// `$param` bindings supplied at execution time; one compiled plan serves
/// many bindings.
pub type Params = std::collections::HashMap<String, Value>;

/// Direction of a relationship pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `-[..]->`
    Out,
    /// `<-[..]-`
    In,
    /// `-[..]-`
    Either,
}

/// `(var:Label {prop: literal, ...})`
#[derive(Debug, Clone, PartialEq)]
pub struct NodePattern {
    pub var: Option<String>,
    pub label: Option<String>,
    pub props: Vec<(String, Value)>,
}

/// `-[var:TYPE]->`, or a var-length pattern `-[:TYPE*lo..hi]->`.
#[derive(Debug, Clone, PartialEq)]
pub struct RelPattern {
    pub var: Option<String>,
    pub rel_type: Option<String>,
    pub direction: Direction,
    /// `Some((lo, hi))` for a var-length pattern `-[*lo..hi]->`: the far node
    /// binds to every distinct endpoint reachable via `lo..=hi` hops.
    /// `None` for an ordinary single-hop relationship.
    pub hops: Option<(usize, usize)>,
}

/// A path pattern: nodes joined by relationships.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pattern {
    pub nodes: Vec<NodePattern>,
    pub rels: Vec<RelPattern>,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// WHERE / RETURN expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Value),
    /// A bound variable (node or edge).
    Var(String),
    /// `var.prop`
    Prop(String, String),
    Compare(Box<Expr>, CmpOp, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    Contains(Box<Expr>, Box<Expr>),
    StartsWith(Box<Expr>, Box<Expr>),
    EndsWith(Box<Expr>, Box<Expr>),
    /// `$name` — a query parameter, bound at execution time.
    Param(String),
    /// `count(*)`
    CountStar,
    /// `count(var)` / `count(var.prop)`
    Count(Box<Expr>),
}

impl Expr {
    /// Whether the expression contains an aggregate.
    pub fn is_aggregate(&self) -> bool {
        matches!(self, Expr::CountStar | Expr::Count(_))
    }

    /// Whether an aggregate appears *anywhere* in the tree — used to reject
    /// aggregates in contexts that evaluate row-at-a-time (standing-query
    /// predicates) before they can become runtime errors.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::CountStar | Expr::Count(_) => true,
            Expr::Compare(l, _, r)
            | Expr::And(l, r)
            | Expr::Or(l, r)
            | Expr::Contains(l, r)
            | Expr::StartsWith(l, r)
            | Expr::EndsWith(l, r) => l.contains_aggregate() || r.contains_aggregate(),
            Expr::Not(e) => e.contains_aggregate(),
            Expr::Literal(_) | Expr::Var(_) | Expr::Prop(..) | Expr::Param(_) => false,
        }
    }
}

/// One RETURN item.
#[derive(Debug, Clone, PartialEq)]
pub struct ReturnItem {
    pub expr: Expr,
    pub alias: Option<String>,
    /// Source text, used as the column name when no alias is given.
    pub text: String,
}

/// The RETURN clause.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Return {
    pub distinct: bool,
    pub items: Vec<ReturnItem>,
    pub order_by: Option<(Expr, bool)>,
    pub skip: Option<usize>,
    pub limit: Option<usize>,
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    Read {
        patterns: Vec<Pattern>,
        filter: Option<Expr>,
        ret: Return,
    },
    Create {
        patterns: Vec<Pattern>,
    },
    Merge {
        pattern: Pattern,
        ret: Option<Return>,
    },
    Delete {
        patterns: Vec<Pattern>,
        filter: Option<Expr>,
        vars: Vec<String>,
        detach: bool,
    },
}

/// Errors from parsing, parameter binding, or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum CypherError {
    Lex(String),
    Parse(String),
    /// A parameter reference could not be resolved against the supplied
    /// bindings (e.g. `$who` with no `who` binding).
    Bind(String),
    Exec(String),
}

impl std::fmt::Display for CypherError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CypherError::Lex(m) => write!(f, "lex error: {m}"),
            CypherError::Parse(m) => write!(f, "parse error: {m}"),
            CypherError::Bind(m) => write!(f, "bind error: {m}"),
            CypherError::Exec(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for CypherError {}

impl crate::store::GraphStore {
    /// Parse and execute a Cypher query against this store. Read queries
    /// run through the compiled planner; writes take the interpreted path.
    pub fn query(&mut self, text: &str) -> Result<QueryResult, CypherError> {
        let query = parse(text)?;
        if matches!(query, Query::Read { .. }) {
            let plan = CompiledPlan::compile(&query)?;
            return plan.execute_on(self, &Params::new());
        }
        execute(self, &query)
    }

    /// Parse and execute a *read-only* Cypher query; `CREATE`/`MERGE`/
    /// `DELETE` are rejected. Runs through the compiled planner.
    pub fn query_readonly(&self, text: &str) -> Result<QueryResult, CypherError> {
        self.query_readonly_with_params(text, &Params::new())
    }

    /// [`Self::query_readonly`] with `$param` bindings.
    pub fn query_readonly_with_params(
        &self,
        text: &str,
        params: &Params,
    ) -> Result<QueryResult, CypherError> {
        let query = parse(text)?;
        if !matches!(query, Query::Read { .. }) {
            return Err(CypherError::Exec(
                "write query on the read-only path".into(),
            ));
        }
        let plan = CompiledPlan::compile(&query)?;
        plan.execute_on(self, params)
    }
}
