//! The property-graph store.
//!
//! Nodes live in an arena indexed by dense [`NodeId`]s; deleted slots are
//! tombstoned (ids are never reused, so external references stay unambiguous,
//! which the fusion stage relies on when migrating edges). Secondary indexes:
//! per-label node lists and a unique `(label, name)` index implementing the
//! paper's §2.5 merge rule — "we only merge nodes with exactly the same
//! description text".

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Composite `(label, name)` index key: `label`, NUL, `name`. Labels never
/// contain NUL (they come from the ontology's label set), so the encoding is
/// unambiguous and lets the index use one `String` per entry instead of a
/// two-`String` tuple.
fn name_key(label: &str, name: &str) -> String {
    let mut key = String::with_capacity(label.len() + name.len() + 1);
    key.push_str(label);
    key.push('\u{0}');
    key.push_str(name);
    key
}

thread_local! {
    /// Scratch buffer for index probes, so the hot `merge_node`/`node_by_name`
    /// paths never allocate a key just to look it up.
    static KEY_SCRATCH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Run `f` with the composite key for `(label, name)` built in a reusable
/// thread-local buffer — zero heap allocation once the buffer has warmed up.
fn with_name_key<R>(label: &str, name: &str, f: impl FnOnce(&str) -> R) -> R {
    KEY_SCRATCH.with(|buf| {
        let mut key = buf.borrow_mut();
        key.clear();
        key.push_str(label);
        key.push('\u{0}');
        key.push_str(name);
        f(&key)
    })
}

/// Dense node identifier (never reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u64);

/// Dense edge identifier (never reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u64);

/// A stored node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    pub id: NodeId,
    pub label: String,
    pub props: BTreeMap<String, Value>,
}

impl Node {
    /// The node's `name` property, if textual.
    pub fn name(&self) -> Option<&str> {
        self.props.get("name").and_then(Value::as_text)
    }
}

/// A stored directed, typed edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    pub id: EdgeId,
    pub from: NodeId,
    pub to: NodeId,
    pub rel_type: String,
    pub props: BTreeMap<String, Value>,
}

/// Store errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    NoSuchNode(NodeId),
    NoSuchEdge(EdgeId),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoSuchNode(id) => write!(f, "no such node: {}", id.0),
            StoreError::NoSuchEdge(id) => write!(f, "no such edge: {}", id.0),
        }
    }
}

impl std::error::Error for StoreError {}

/// The graph store.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GraphStore {
    nodes: Vec<Option<Node>>,
    edges: Vec<Option<Edge>>,
    /// label → live node ids.
    #[serde(skip)]
    label_index: HashMap<String, Vec<NodeId>>,
    /// Composite `label\0name` key (see [`name_key`]) → live node ids bearing
    /// that name, in insertion order (multi-valued: `create_node`/renames may
    /// duplicate names; lookups resolve to the most recent writer,
    /// `merge_node` keeps names unique).
    #[serde(skip)]
    name_index: HashMap<String, Vec<NodeId>>,
    /// node → outgoing edge ids.
    #[serde(skip)]
    out_edges: HashMap<NodeId, Vec<EdgeId>>,
    /// node → incoming edge ids.
    #[serde(skip)]
    in_edges: HashMap<NodeId, Vec<EdgeId>>,
    live_nodes: usize,
    live_edges: usize,
}

impl GraphStore {
    /// An empty store.
    pub fn new() -> Self {
        GraphStore::default()
    }

    // ---- nodes -----------------------------------------------------------

    /// Create a node unconditionally.
    pub fn create_node<K, V>(
        &mut self,
        label: &str,
        props: impl IntoIterator<Item = (K, V)>,
    ) -> NodeId
    where
        K: Into<String>,
        V: Into<Value>,
    {
        let id = NodeId(self.nodes.len() as u64);
        let props: BTreeMap<String, Value> = props
            .into_iter()
            .map(|(k, v)| (k.into(), v.into()))
            .collect();
        let node = Node {
            id,
            label: label.to_owned(),
            props,
        };
        if let Some(name) = node.name() {
            self.name_index
                .entry(name_key(&node.label, name))
                .or_default()
                .push(id);
        }
        self.label_index
            .entry(node.label.clone())
            .or_default()
            .push(id);
        self.nodes.push(Some(node));
        self.live_nodes += 1;
        id
    }

    /// Get-or-create by `(label, name)` — the §2.5 exact-text merge. When the
    /// node exists, `extra_props` fill gaps but never overwrite.
    pub fn merge_node<K, V>(
        &mut self,
        label: &str,
        name: &str,
        extra_props: impl IntoIterator<Item = (K, V)>,
    ) -> NodeId
    where
        K: Into<String>,
        V: Into<Value>,
    {
        if let Some(id) = with_name_key(label, name, |key| {
            self.name_index.get(key).and_then(|ids| ids.last()).copied()
        }) {
            if let Some(node) = self.nodes[id.0 as usize].as_mut() {
                for (k, v) in extra_props {
                    node.props.entry(k.into()).or_insert_with(|| v.into());
                }
            }
            return id;
        }
        let mut props: Vec<(String, Value)> = extra_props
            .into_iter()
            .map(|(k, v)| (k.into(), v.into()))
            .collect();
        props.push(("name".to_owned(), Value::from(name)));
        self.create_node(label, props)
    }

    /// Fetch a node.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// Mutable property access.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut Node> {
        self.nodes.get_mut(id.0 as usize).and_then(Option::as_mut)
    }

    /// Update a node property, maintaining the name index.
    pub fn set_node_prop(&mut self, id: NodeId, key: &str, value: Value) -> Result<(), StoreError> {
        let node = self
            .nodes
            .get_mut(id.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(StoreError::NoSuchNode(id))?;
        if key == "name" {
            if let Some(old) = node.name() {
                let k = name_key(&node.label, old);
                if let Some(ids) = self.name_index.get_mut(&k) {
                    ids.retain(|&n| n != id);
                    if ids.is_empty() {
                        self.name_index.remove(&k);
                    }
                }
            }
            if let Some(new_name) = value.as_text() {
                self.name_index
                    .entry(name_key(&node.label, new_name))
                    .or_default()
                    .push(id);
            }
        }
        node.props.insert(key.to_owned(), value);
        Ok(())
    }

    /// Delete a node and (detach) all its edges.
    pub fn delete_node(&mut self, id: NodeId) -> Result<(), StoreError> {
        let node = self
            .nodes
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(StoreError::NoSuchNode(id))?;
        let label = node.label.clone();
        let name = node.name().map(str::to_owned);
        let touching: Vec<EdgeId> = self
            .out_edges
            .get(&id)
            .into_iter()
            .flatten()
            .chain(self.in_edges.get(&id).into_iter().flatten())
            .copied()
            .collect();
        for eid in touching {
            let _ = self.delete_edge(eid);
        }
        self.nodes[id.0 as usize] = None;
        self.live_nodes -= 1;
        if let Some(ids) = self.label_index.get_mut(&label) {
            ids.retain(|&n| n != id);
        }
        if let Some(name) = name {
            let key = name_key(&label, &name);
            if let Some(ids) = self.name_index.get_mut(&key) {
                ids.retain(|&n| n != id);
                if ids.is_empty() {
                    self.name_index.remove(&key);
                }
            }
        }
        self.out_edges.remove(&id);
        self.in_edges.remove(&id);
        Ok(())
    }

    /// Look up by the `(label, name)` index. With duplicate names (possible
    /// via unconstrained `create_node`/renames) the most recent writer wins;
    /// [`GraphStore::nodes_by_name`] returns all of them.
    pub fn node_by_name(&self, label: &str, name: &str) -> Option<NodeId> {
        with_name_key(label, name, |key| {
            self.name_index.get(key).and_then(|ids| ids.last()).copied()
        })
    }

    /// Every live node with this `(label, name)`, oldest first.
    pub fn nodes_by_name(&self, label: &str, name: &str) -> Vec<NodeId> {
        with_name_key(label, name, |key| {
            self.name_index.get(key).cloned().unwrap_or_default()
        })
    }

    /// Live nodes with a label, in creation order.
    pub fn nodes_with_label(&self, label: &str) -> Vec<NodeId> {
        self.label_index.get(label).cloned().unwrap_or_default()
    }

    /// All live node ids, in creation order.
    pub fn all_nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter_map(Option::as_ref)
    }

    // ---- edges -----------------------------------------------------------

    /// Create a directed edge.
    pub fn create_edge<K, V>(
        &mut self,
        from: NodeId,
        rel_type: &str,
        to: NodeId,
        props: impl IntoIterator<Item = (K, V)>,
    ) -> Result<EdgeId, StoreError>
    where
        K: Into<String>,
        V: Into<Value>,
    {
        if self.node(from).is_none() {
            return Err(StoreError::NoSuchNode(from));
        }
        if self.node(to).is_none() {
            return Err(StoreError::NoSuchNode(to));
        }
        let id = EdgeId(self.edges.len() as u64);
        let props: BTreeMap<String, Value> = props
            .into_iter()
            .map(|(k, v)| (k.into(), v.into()))
            .collect();
        self.edges.push(Some(Edge {
            id,
            from,
            to,
            rel_type: rel_type.to_owned(),
            props,
        }));
        self.out_edges.entry(from).or_default().push(id);
        self.in_edges.entry(to).or_default().push(id);
        self.live_edges += 1;
        Ok(id)
    }

    /// Get-or-create an edge with this exact `(from, rel_type, to)`.
    pub fn merge_edge(
        &mut self,
        from: NodeId,
        rel_type: &str,
        to: NodeId,
    ) -> Result<EdgeId, StoreError> {
        if let Some(existing) = self.out_edges.get(&from).into_iter().flatten().find(|&&e| {
            self.edge(e)
                .is_some_and(|edge| edge.to == to && edge.rel_type == rel_type)
        }) {
            return Ok(*existing);
        }
        self.create_edge(from, rel_type, to, std::iter::empty::<(String, Value)>())
    }

    /// Fetch an edge.
    pub fn edge(&self, id: EdgeId) -> Option<&Edge> {
        self.edges.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// Mutable edge access.
    pub fn edge_mut(&mut self, id: EdgeId) -> Option<&mut Edge> {
        self.edges.get_mut(id.0 as usize).and_then(Option::as_mut)
    }

    /// Delete an edge.
    pub fn delete_edge(&mut self, id: EdgeId) -> Result<(), StoreError> {
        let edge = self
            .edges
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(StoreError::NoSuchEdge(id))?;
        let (from, to) = (edge.from, edge.to);
        self.edges[id.0 as usize] = None;
        self.live_edges -= 1;
        if let Some(es) = self.out_edges.get_mut(&from) {
            es.retain(|&e| e != id);
        }
        if let Some(es) = self.in_edges.get_mut(&to) {
            es.retain(|&e| e != id);
        }
        Ok(())
    }

    /// Outgoing edges of a node, lazily — no per-call `Vec`.
    pub fn outgoing_iter(&self, id: NodeId) -> impl Iterator<Item = &Edge> + '_ {
        self.out_edges
            .get(&id)
            .into_iter()
            .flatten()
            .filter_map(|&e| self.edge(e))
    }

    /// Incoming edges of a node, lazily — no per-call `Vec`.
    pub fn incoming_iter(&self, id: NodeId) -> impl Iterator<Item = &Edge> + '_ {
        self.in_edges
            .get(&id)
            .into_iter()
            .flatten()
            .filter_map(|&e| self.edge(e))
    }

    /// Outgoing edges of a node.
    pub fn outgoing(&self, id: NodeId) -> Vec<&Edge> {
        self.outgoing_iter(id).collect()
    }

    /// Incoming edges of a node.
    pub fn incoming(&self, id: NodeId) -> Vec<&Edge> {
        self.incoming_iter(id).collect()
    }

    /// Distinct neighbor node ids (both directions), in edge order, lazily.
    /// Dedup state lives inside the iterator, so callers that stop early
    /// (`any`, `take`) never pay for the full adjacency list.
    pub fn neighbors_iter(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut seen: Vec<NodeId> = Vec::new();
        self.outgoing_iter(id)
            .map(|e| e.to)
            .chain(self.incoming_iter(id).map(|e| e.from))
            .filter(move |n| {
                if seen.contains(n) {
                    false
                } else {
                    seen.push(*n);
                    true
                }
            })
    }

    /// Distinct neighbor node ids (both directions), in edge order.
    pub fn neighbors(&self, id: NodeId) -> Vec<NodeId> {
        self.neighbors_iter(id).collect()
    }

    /// Total degree (in + out).
    pub fn degree(&self, id: NodeId) -> usize {
        self.out_edges.get(&id).map_or(0, Vec::len) + self.in_edges.get(&id).map_or(0, Vec::len)
    }

    /// All live edges.
    pub fn all_edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter_map(Option::as_ref)
    }

    // ---- stats & persistence ----------------------------------------------

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Node counts per label, sorted by label.
    pub fn label_histogram(&self) -> BTreeMap<String, usize> {
        self.label_index
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(k, v)| (k.clone(), v.len()))
            .collect()
    }

    /// Serialise to JSON bytes (indexes are rebuilt on load).
    pub fn to_bytes(&self) -> Result<Vec<u8>, serde_json::Error> {
        serde_json::to_vec(self)
    }

    /// Load from JSON bytes, rebuilding all indexes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, serde_json::Error> {
        let mut store: GraphStore = serde_json::from_slice(bytes)?;
        store.rebuild_indexes();
        Ok(store)
    }

    fn rebuild_indexes(&mut self) {
        self.label_index.clear();
        self.name_index.clear();
        self.out_edges.clear();
        self.in_edges.clear();
        for node in self.nodes.iter().filter_map(Option::as_ref) {
            self.label_index
                .entry(node.label.clone())
                .or_default()
                .push(node.id);
            if let Some(name) = node.name() {
                self.name_index
                    .entry(name_key(&node.label, name))
                    .or_default()
                    .push(node.id);
            }
        }
        for edge in self.edges.iter().filter_map(Option::as_ref) {
            self.out_edges.entry(edge.from).or_default().push(edge.id);
            self.in_edges.entry(edge.to).or_default().push(edge.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup() {
        let mut g = GraphStore::new();
        let a = g.create_node("Malware", [("name", Value::from("wannacry"))]);
        assert_eq!(g.node(a).unwrap().name(), Some("wannacry"));
        assert_eq!(g.node_by_name("Malware", "wannacry"), Some(a));
        assert_eq!(g.node_by_name("Tool", "wannacry"), None);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn merge_node_deduplicates_exact_name() {
        let mut g = GraphStore::new();
        let a = g.merge_node(
            "Malware",
            "wannacry",
            [("vendor", Value::from("securelist"))],
        );
        let b = g.merge_node("Malware", "wannacry", [("vendor", Value::from("talos"))]);
        assert_eq!(a, b);
        assert_eq!(g.node_count(), 1);
        // First-writer wins on existing props.
        assert_eq!(
            g.node(a).unwrap().props["vendor"],
            Value::from("securelist")
        );
        // Different label ≠ same node.
        let c = g.merge_node("Tool", "wannacry", [] as [(&str, Value); 0]);
        assert_ne!(a, c);
    }

    #[test]
    fn edges_and_adjacency() {
        let mut g = GraphStore::new();
        let m = g.create_node("Malware", [("name", Value::from("wannacry"))]);
        let f = g.create_node("FileName", [("name", Value::from("tasksche.exe"))]);
        let e = g
            .create_edge(m, "DROP", f, [("confidence", Value::from(0.9))])
            .unwrap();
        assert_eq!(g.edge(e).unwrap().rel_type, "DROP");
        assert_eq!(g.outgoing(m).len(), 1);
        assert_eq!(g.incoming(f).len(), 1);
        assert_eq!(g.neighbors(m), vec![f]);
        assert_eq!(g.neighbors(f), vec![m]);
        assert_eq!(g.degree(m), 1);
    }

    #[test]
    fn iterator_adjacency_matches_vec_variants() {
        let mut g = GraphStore::new();
        let m = g.create_node("Malware", [("name", Value::from("wannacry"))]);
        let f = g.create_node("FileName", [("name", Value::from("tasksche.exe"))]);
        let d = g.create_node("Domain", [("name", Value::from("kill.switch"))]);
        g.create_edge(m, "DROP", f, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(m, "CONNECTS_TO", d, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(d, "MENTIONS", m, [] as [(&str, Value); 0])
            .unwrap();
        assert_eq!(
            g.outgoing_iter(m).map(|e| e.id).collect::<Vec<_>>(),
            g.outgoing(m).iter().map(|e| e.id).collect::<Vec<_>>()
        );
        assert_eq!(
            g.incoming_iter(m).map(|e| e.id).collect::<Vec<_>>(),
            g.incoming(m).iter().map(|e| e.id).collect::<Vec<_>>()
        );
        // d is both an outgoing target and an incoming source of m — the
        // lazy dedup must keep it single like the Vec variant does.
        assert_eq!(g.neighbors_iter(m).collect::<Vec<_>>(), g.neighbors(m));
        assert_eq!(g.neighbors(m), vec![f, d]);
        // Early exit works without draining the adjacency.
        assert!(g.neighbors_iter(m).any(|n| n == d));
    }

    #[test]
    fn merge_edge_is_idempotent() {
        let mut g = GraphStore::new();
        let a = g.create_node("Malware", [("name", Value::from("x"))]);
        let b = g.create_node("FileName", [("name", Value::from("y.exe"))]);
        let e1 = g.merge_edge(a, "DROP", b).unwrap();
        let e2 = g.merge_edge(a, "DROP", b).unwrap();
        assert_eq!(e1, e2);
        assert_eq!(g.edge_count(), 1);
        let e3 = g.merge_edge(a, "EXECUTES", b).unwrap();
        assert_ne!(e1, e3);
    }

    #[test]
    fn delete_node_detaches() {
        let mut g = GraphStore::new();
        let a = g.create_node("Malware", [("name", Value::from("x"))]);
        let b = g.create_node("FileName", [("name", Value::from("y.exe"))]);
        g.create_edge(a, "DROP", b, [] as [(&str, Value); 0])
            .unwrap();
        g.delete_node(b).unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert!(g.outgoing(a).is_empty());
        assert_eq!(g.node_by_name("FileName", "y.exe"), None);
        assert!(g.delete_node(b).is_err());
    }

    #[test]
    fn rename_maintains_index() {
        let mut g = GraphStore::new();
        let a = g.create_node("Malware", [("name", Value::from("wcry"))]);
        g.set_node_prop(a, "name", Value::from("wannacry")).unwrap();
        assert_eq!(g.node_by_name("Malware", "wannacry"), Some(a));
        assert_eq!(g.node_by_name("Malware", "wcry"), None);
    }

    #[test]
    fn label_histogram_counts() {
        let mut g = GraphStore::new();
        g.create_node("Malware", [("name", Value::from("a"))]);
        g.create_node("Malware", [("name", Value::from("b"))]);
        g.create_node("Tool", [("name", Value::from("c"))]);
        let h = g.label_histogram();
        assert_eq!(h["Malware"], 2);
        assert_eq!(h["Tool"], 1);
    }

    #[test]
    fn persistence_round_trip() {
        let mut g = GraphStore::new();
        let m = g.create_node("Malware", [("name", Value::from("wannacry"))]);
        let f = g.create_node("FileName", [("name", Value::from("tasksche.exe"))]);
        g.create_edge(m, "DROP", f, [] as [(&str, Value); 0])
            .unwrap();
        let bytes = g.to_bytes().unwrap();
        let back = GraphStore::from_bytes(&bytes).unwrap();
        assert_eq!(back.node_count(), 2);
        assert_eq!(back.edge_count(), 1);
        assert_eq!(back.node_by_name("Malware", "wannacry"), Some(m));
        assert_eq!(back.neighbors(m), vec![f]);
    }

    #[test]
    fn duplicate_names_resolve_to_latest_and_never_lose_entries() {
        let mut g = GraphStore::new();
        let a = g.create_node("Malware", [("name", Value::from("x"))]);
        let b = g.create_node("Malware", [("name", Value::from("y"))]);
        // Rename b to collide with a: lookup now prefers b (latest writer)...
        g.set_node_prop(b, "name", Value::from("x")).unwrap();
        assert_eq!(g.node_by_name("Malware", "x"), Some(b));
        assert_eq!(g.nodes_by_name("Malware", "x"), vec![a, b]);
        // ...and removing b restores a instead of losing the name.
        g.delete_node(b).unwrap();
        assert_eq!(g.node_by_name("Malware", "x"), Some(a));
        // Renaming the survivor away clears the entry entirely.
        g.set_node_prop(a, "name", Value::from("z")).unwrap();
        assert_eq!(g.node_by_name("Malware", "x"), None);
        assert!(g.nodes_by_name("Malware", "x").is_empty());
    }

    #[test]
    fn ids_are_never_reused() {
        let mut g = GraphStore::new();
        let a = g.create_node("Malware", [("name", Value::from("a"))]);
        g.delete_node(a).unwrap();
        let b = g.create_node("Malware", [("name", Value::from("b"))]);
        assert_ne!(a, b);
        assert!(g.node(a).is_none());
    }
}
