//! The property-graph store.
//!
//! Nodes live in an arena indexed by dense [`NodeId`]s; deleted slots are
//! tombstoned (ids are never reused, so external references stay unambiguous,
//! which the fusion stage relies on when migrating edges). Secondary indexes:
//! per-label node lists and a unique `(label, name)` index implementing the
//! paper's §2.5 merge rule — "we only merge nodes with exactly the same
//! description text".
//!
//! Two properties serve the O(delta) publication path (kg-serve's
//! `EpochBuilder`):
//!
//! - **Structural sharing**: the node/edge arenas are split into `Arc`'d
//!   segments of [`SEG_CAP`] slots. `Clone` bumps one refcount per segment;
//!   only segments the writer touches afterwards are deep-copied
//!   (`Arc::make_mut`), so freezing a snapshot of an N-element graph copies
//!   O(delta) elements, not O(N).
//! - **Change tracking**: every mutation records the touched node/edge id
//!   (edges with their endpoints, captured at touch time because a deleted
//!   edge can no longer be looked up). The accumulated touched-set is sealed
//!   into sequence-numbered [`DeltaBatch`]es on a **multi-consumer delta
//!   log**: each consumer registers a [`DeltaCursor`] and reads every batch
//!   exactly once ([`GraphStore::collect_changes`]); batches are pruned once
//!   the slowest cursor has passed them. Incremental digest/adjacency
//!   maintenance (kg-serve's `EpochBuilder`) is cursor reader #1 and standing
//!   query subscriptions are reader #2 — neither can starve the other, which
//!   the old destructive single-consumer `drain_changes()` silently did.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Composite `(label, name)` index key: `label`, NUL, `name`. Labels never
/// contain NUL (they come from the ontology's label set), so the encoding is
/// unambiguous and lets the index use one `String` per entry instead of a
/// two-`String` tuple.
fn name_key(label: &str, name: &str) -> String {
    let mut key = String::with_capacity(label.len() + name.len() + 1);
    key.push_str(label);
    key.push('\u{0}');
    key.push_str(name);
    key
}

thread_local! {
    /// Scratch buffer for index probes, so the hot `merge_node`/`node_by_name`
    /// paths never allocate a key just to look it up.
    static KEY_SCRATCH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Run `f` with the composite key for `(label, name)` built in a reusable
/// thread-local buffer — zero heap allocation once the buffer has warmed up.
fn with_name_key<R>(label: &str, name: &str, f: impl FnOnce(&str) -> R) -> R {
    KEY_SCRATCH.with(|buf| {
        let mut key = buf.borrow_mut();
        key.clear();
        key.push_str(label);
        key.push('\u{0}');
        key.push_str(name);
        f(&key)
    })
}

/// Dense node identifier (never reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u64);

/// Dense edge identifier (never reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u64);

/// A stored node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    pub id: NodeId,
    pub label: String,
    pub props: BTreeMap<String, Value>,
}

impl Node {
    /// The node's `name` property, if textual.
    pub fn name(&self) -> Option<&str> {
        self.props.get("name").and_then(Value::as_text)
    }
}

/// A stored directed, typed edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    pub id: EdgeId,
    pub from: NodeId,
    pub to: NodeId,
    pub rel_type: String,
    pub props: BTreeMap<String, Value>,
}

/// Store errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    NoSuchNode(NodeId),
    NoSuchEdge(EdgeId),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoSuchNode(id) => write!(f, "no such node: {}", id.0),
            StoreError::NoSuchEdge(id) => write!(f, "no such edge: {}", id.0),
        }
    }
}

impl std::error::Error for StoreError {}

// ---- graph digest -----------------------------------------------------------

/// Digest of the empty graph; every element term is added on top.
pub const DIGEST_SEED: u64 = 0x5ec0_09a9_d16e_5701;

/// Domain separator mixed into node terms ("NODE").
const TAG_NODE: u64 = 0x4e4f_4445;

/// Domain separator mixed into edge terms ("EDGE").
const TAG_EDGE: u64 = 0x4544_4745;

fn fnv1a64_str(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Finalizer spreading FNV's weak high bits before the commutative sum.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn element_term<T: Serialize>(element: &T, tag: u64) -> u64 {
    let json = serde_json::to_string(element).expect("graph element serialises");
    splitmix64(fnv1a64_str(&json) ^ tag)
}

/// The digest term one node contributes to [`GraphStore::digest`].
pub fn node_digest(node: &Node) -> u64 {
    element_term(node, TAG_NODE)
}

/// The digest term one edge contributes to [`GraphStore::digest`].
pub fn edge_digest(edge: &Edge) -> u64 {
    element_term(edge, TAG_EDGE)
}

// ---- canon-key shard routing ------------------------------------------------

/// The shard owning canon key `(label, name)` out of `shards` partitions —
/// the routing function for sharded serving. It hashes the same composite
/// key the `(label, name)` merge index uses, so the entities the paper's
/// §2.5 merge rule would unify always land on the same shard.
pub fn canon_shard(label: &str, name: &str, shards: usize) -> usize {
    (fnv1a64_str(&name_key(label, name)) % shards.max(1) as u64) as usize
}

/// Fallback routing for elements with no usable canon key: hash the dense
/// (never reused) id.
pub fn id_shard(id: u64, shards: usize) -> usize {
    (splitmix64(id) % shards.max(1) as u64) as usize
}

/// The shard owning `node`: canon-key routing when the node has a textual
/// name, [`id_shard`] otherwise. Renaming a node migrates its ownership;
/// nothing else moves.
pub fn node_shard(node: &Node, shards: usize) -> usize {
    match node.name() {
        Some(name) => canon_shard(&node.label, name, shards),
        None => id_shard(node.id.0, shards),
    }
}

// ---- segmented arenas -------------------------------------------------------

const SEG_BITS: usize = 8;

/// Slots per arena segment.
pub const SEG_CAP: usize = 1 << SEG_BITS;

/// A tombstoning arena in `Arc`'d fixed-size segments: `Clone` is one
/// refcount bump per segment, and mutation copies-on-write only the segment
/// it lands in. Serialises as the flat JSON array the pre-segmented arena
/// used, so persisted graphs are layout-independent.
#[derive(Debug, Clone)]
struct Segments<T> {
    segs: Vec<Arc<Vec<Option<T>>>>,
    /// Total slots ever allocated, live or tombstoned.
    slots: usize,
    /// Segments mutated since the last [`Segments::clear_dirty`] — the
    /// incremental-checkpoint write set (kg-persist persists exactly these).
    /// Not serialised; a deserialised arena is conservatively all-dirty.
    dirty: BTreeSet<usize>,
}

impl<T> Default for Segments<T> {
    fn default() -> Self {
        Segments {
            segs: Vec::new(),
            slots: 0,
            dirty: BTreeSet::new(),
        }
    }
}

impl<T: Clone> Segments<T> {
    fn slots(&self) -> usize {
        self.slots
    }

    fn get(&self, index: u64) -> Option<&T> {
        let index = index as usize;
        self.segs
            .get(index >> SEG_BITS)?
            .get(index & (SEG_CAP - 1))?
            .as_ref()
    }

    fn get_mut(&mut self, index: u64) -> Option<&mut T> {
        let index = index as usize;
        if index >= self.slots {
            return None;
        }
        self.dirty.insert(index >> SEG_BITS);
        Arc::make_mut(&mut self.segs[index >> SEG_BITS])
            .get_mut(index & (SEG_CAP - 1))?
            .as_mut()
    }

    /// Append a live value in the next slot.
    fn push(&mut self, value: T) {
        if self.slots == self.segs.len() * SEG_CAP {
            self.segs.push(Arc::new(Vec::with_capacity(SEG_CAP)));
        }
        self.dirty.insert(self.slots >> SEG_BITS);
        Arc::make_mut(self.segs.last_mut().expect("segment exists")).push(Some(value));
        self.slots += 1;
    }

    /// Tombstone a slot (no-op when out of bounds).
    fn clear(&mut self, index: u64) {
        let index = index as usize;
        if index < self.slots {
            self.dirty.insert(index >> SEG_BITS);
            Arc::make_mut(&mut self.segs[index >> SEG_BITS])[index & (SEG_CAP - 1)] = None;
        }
    }

    /// Live values, in slot order.
    fn iter(&self) -> impl Iterator<Item = &T> {
        self.segs
            .iter()
            .flat_map(|seg| seg.iter())
            .filter_map(Option::as_ref)
    }

    /// Number of arena segments (including the partial tail segment).
    fn seg_count(&self) -> usize {
        self.segs.len()
    }

    /// Slot vector of one segment (`None` entries are tombstones).
    fn segment(&self, index: usize) -> Option<&Vec<Option<T>>> {
        self.segs.get(index).map(|seg| seg.as_ref())
    }

    /// Segment indices mutated since the last [`Segments::clear_dirty`].
    fn dirty_segments(&self) -> Vec<usize> {
        self.dirty.iter().copied().collect()
    }

    /// Forget dirtiness — call only after the dirty set has been durably
    /// persisted.
    fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    /// Reassemble an arena from per-segment slot vectors (the inverse of
    /// reading each [`Segments::segment`]). Every segment but the last must
    /// hold exactly [`SEG_CAP`] slots. The result is clean (not dirty): by
    /// construction it matches what is on disk.
    fn from_parts(parts: Vec<Vec<Option<T>>>) -> Result<Self, String> {
        let mut slots = 0;
        for (i, part) in parts.iter().enumerate() {
            let last = i + 1 == parts.len();
            if !last && part.len() != SEG_CAP {
                return Err(format!(
                    "segment {i}: {} slots, every segment but the last must hold {SEG_CAP}",
                    part.len()
                ));
            }
            if part.is_empty() || part.len() > SEG_CAP {
                return Err(format!(
                    "segment {i}: {} slots out of range 1..={SEG_CAP}",
                    part.len()
                ));
            }
            slots += part.len();
        }
        Ok(Segments {
            segs: parts.into_iter().map(Arc::new).collect(),
            slots,
            dirty: BTreeSet::new(),
        })
    }
}

impl<T: Serialize> Serialize for Segments<T> {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        let mut first = true;
        for slot in self.segs.iter().flat_map(|seg| seg.iter()) {
            if !first {
                out.push(',');
            }
            first = false;
            slot.write_json(out);
        }
        out.push(']');
    }
}

impl<T: Deserialize> Deserialize for Segments<T> {
    fn read_json(p: &mut serde::read::Parser<'_>) -> Result<Self, serde::Error> {
        let flat: Vec<Option<T>> = Deserialize::read_json(p)?;
        let slots = flat.len();
        let mut segs: Vec<Arc<Vec<Option<T>>>> = Vec::with_capacity(slots.div_ceil(SEG_CAP));
        let mut current: Vec<Option<T>> = Vec::with_capacity(SEG_CAP.min(slots));
        for slot in flat {
            current.push(slot);
            if current.len() == SEG_CAP {
                let full = std::mem::replace(&mut current, Vec::with_capacity(SEG_CAP));
                segs.push(Arc::new(full));
            }
        }
        if !current.is_empty() {
            segs.push(Arc::new(current));
        }
        // A deserialised arena has no checkpoint to be incremental against:
        // conservatively mark every segment dirty.
        let dirty = (0..segs.len()).collect();
        Ok(Segments { segs, slots, dirty })
    }
}

// ---- change tracking --------------------------------------------------------

/// One sealed span of changes on the delta log: everything touched between
/// two seal points. Ids are deduplicated and sorted within a batch; a
/// "change" is conservative (created, mutated or deleted — the consumer
/// re-reads the live element to find out which).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphChanges {
    /// Touched node ids.
    pub nodes: Vec<NodeId>,
    /// Touched edge ids with their `(from, to)` endpoints, recorded when the
    /// edge was touched — a deleted edge can no longer be looked up, and
    /// endpoints are immutable for an edge's lifetime.
    pub edges: Vec<(EdgeId, NodeId, NodeId)>,
}

impl GraphChanges {
    /// True when nothing was touched.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.edges.is_empty()
    }

    /// Touched elements in total.
    pub fn len(&self) -> usize {
        self.nodes.len() + self.edges.len()
    }
}

/// Handle for one registered consumer of the delta log. Obtained from
/// [`GraphStore::register_delta_consumer`]; pass it back to
/// [`GraphStore::collect_changes`] to read. Cursors belong to the store
/// instance they were registered on (a cloned store carries the positions
/// along, but consumers should keep reading from the original writer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeltaCursor(u64);

/// A sealed, sequence-numbered change batch as read through a cursor.
/// Sequence numbers are global to the store: two consumers reading the same
/// span see the same `seq` on the same batch.
#[derive(Debug, Clone)]
pub struct DeltaBatch {
    /// Position of this batch on the log (strictly increasing, never reused).
    pub seq: u64,
    /// The sealed changes; shared, not copied, between consumers.
    pub changes: Arc<GraphChanges>,
}

/// The multi-consumer delta log: sealed batches retained until the slowest
/// registered cursor has read them.
#[derive(Debug, Clone, Default)]
struct DeltaLog {
    /// Sealed batches, oldest first; `batches[i]` has seq `base_seq + i`.
    batches: VecDeque<Arc<GraphChanges>>,
    /// Sequence number of the oldest retained batch.
    base_seq: u64,
    /// cursor id → next sequence number that consumer has not yet read.
    cursors: HashMap<u64, u64>,
    next_cursor_id: u64,
    /// Cursor lazily registered by the deprecated [`GraphStore::drain_changes`].
    legacy: Option<DeltaCursor>,
}

impl DeltaLog {
    /// Sequence number the next sealed batch will get.
    fn tail_seq(&self) -> u64 {
        self.base_seq + self.batches.len() as u64
    }
}

/// Key for the equality property index: `prop\0text-value` (property names
/// cannot contain NUL, same trick as [`name_key`]).
fn prop_key(key: &str, text: &str) -> String {
    let mut s = String::with_capacity(key.len() + 1 + text.len());
    s.push_str(key);
    s.push('\0');
    s.push_str(text);
    s
}

/// The equality index over `Text`-valued node properties, repaired lazily:
/// mutators mark nodes stale (cheap), and the first indexed read after a
/// batch of writes re-derives just those nodes' entries. Restricted to
/// `Text` because text equality has no cross-type coercion partner under
/// `eq_cypher` (`Int`/`Float` coerce into each other, so an exact-value
/// index would miss matches).
#[derive(Debug, Clone, Default)]
struct PropIndex {
    /// [`prop_key`] → live node ids carrying that exact value, ascending.
    map: HashMap<String, Vec<NodeId>>,
    /// node → the index keys its entries currently live under, so a stale
    /// node can be un-indexed without knowing its old property values.
    indexed: HashMap<NodeId, Vec<String>>,
    /// Nodes touched since the last repair.
    stale: HashSet<NodeId>,
    /// Whether the initial full-scan seed has run; until a read needs the
    /// index, writes cost nothing.
    seeded: bool,
}

impl PropIndex {
    fn insert_node(&mut self, node: &Node) {
        let mut keys = Vec::new();
        for (k, v) in &node.props {
            if let Some(text) = v.as_text() {
                let key = prop_key(k, text);
                let ids = self.map.entry(key.clone()).or_default();
                match ids.binary_search(&node.id) {
                    Ok(_) => {}
                    Err(pos) => ids.insert(pos, node.id),
                }
                keys.push(key);
            }
        }
        if !keys.is_empty() {
            self.indexed.insert(node.id, keys);
        }
    }

    fn remove_node(&mut self, id: NodeId) {
        if let Some(keys) = self.indexed.remove(&id) {
            for key in keys {
                if let Some(ids) = self.map.get_mut(&key) {
                    if let Ok(pos) = ids.binary_search(&id) {
                        ids.remove(pos);
                    }
                    if ids.is_empty() {
                        self.map.remove(&key);
                    }
                }
            }
        }
    }
}

/// Interior-mutability cell around [`PropIndex`]: reads repair staleness
/// under the lock, so the index lives behind `&self` like every other read
/// path. Cloning clones the index state (a cloned store keeps its warmth).
#[derive(Debug, Default)]
struct PropIndexCell(std::sync::RwLock<PropIndex>);

impl Clone for PropIndexCell {
    fn clone(&self) -> Self {
        let inner = self.0.read().unwrap_or_else(|e| e.into_inner()).clone();
        PropIndexCell(std::sync::RwLock::new(inner))
    }
}

/// The graph store.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GraphStore {
    nodes: Segments<Node>,
    edges: Segments<Edge>,
    /// label → live node ids.
    #[serde(skip)]
    label_index: HashMap<String, Vec<NodeId>>,
    /// Composite `label\0name` key (see [`name_key`]) → live node ids bearing
    /// that name, in insertion order (multi-valued: `create_node`/renames may
    /// duplicate names; lookups resolve to the most recent writer,
    /// `merge_node` keeps names unique).
    #[serde(skip)]
    name_index: HashMap<String, Vec<NodeId>>,
    /// node → outgoing edge ids.
    #[serde(skip)]
    out_edges: HashMap<NodeId, Vec<EdgeId>>,
    /// node → incoming edge ids.
    #[serde(skip)]
    in_edges: HashMap<NodeId, Vec<EdgeId>>,
    /// Nodes touched since the last seal point (the un-sealed tail of the
    /// delta log).
    #[serde(skip)]
    touched_nodes: HashSet<NodeId>,
    /// Edges touched since the last seal point, with endpoints captured at
    /// touch time (see [`GraphChanges::edges`]).
    #[serde(skip)]
    touched_edges: HashMap<EdgeId, (NodeId, NodeId)>,
    /// Sealed change batches + per-consumer cursors.
    #[serde(skip)]
    delta: DeltaLog,
    /// Equality index over `Text` node properties (see [`PropIndex`]).
    #[serde(skip)]
    prop_index: PropIndexCell,
    live_nodes: usize,
    live_edges: usize,
}

impl GraphStore {
    /// An empty store.
    pub fn new() -> Self {
        GraphStore::default()
    }

    // ---- nodes -----------------------------------------------------------

    /// Create a node unconditionally.
    pub fn create_node<K, V>(
        &mut self,
        label: &str,
        props: impl IntoIterator<Item = (K, V)>,
    ) -> NodeId
    where
        K: Into<String>,
        V: Into<Value>,
    {
        let id = NodeId(self.nodes.slots() as u64);
        let props: BTreeMap<String, Value> = props
            .into_iter()
            .map(|(k, v)| (k.into(), v.into()))
            .collect();
        let node = Node {
            id,
            label: label.to_owned(),
            props,
        };
        if let Some(name) = node.name() {
            self.name_index
                .entry(name_key(&node.label, name))
                .or_default()
                .push(id);
        }
        self.label_index
            .entry(node.label.clone())
            .or_default()
            .push(id);
        self.nodes.push(node);
        self.live_nodes += 1;
        self.touched_nodes.insert(id);
        self.mark_prop_stale(id);
        id
    }

    /// Record that `id`'s property-index entries may be out of date. Free
    /// until the index is first seeded by a read.
    fn mark_prop_stale(&mut self, id: NodeId) {
        let idx = self
            .prop_index
            .0
            .get_mut()
            .unwrap_or_else(|e| e.into_inner());
        if idx.seeded {
            idx.stale.insert(id);
        }
    }

    /// Live node ids whose `key` property equals `value` exactly, ascending.
    /// `None` when the value kind is not indexable (only `Text` is — other
    /// kinds coerce under `eq_cypher`, so callers must fall back to a
    /// filtered scan). Lazily repairs staleness from the touched set, so the
    /// cost after a write burst is proportional to the delta, not the graph.
    pub fn nodes_with_prop_eq(&self, key: &str, value: &Value) -> Option<Vec<NodeId>> {
        let text = value.as_text()?;
        let mut idx = self.prop_index.0.write().unwrap_or_else(|e| e.into_inner());
        if !idx.seeded {
            idx.map.clear();
            idx.indexed.clear();
            idx.stale.clear();
            for node in self.nodes.iter() {
                idx.insert_node(node);
            }
            idx.seeded = true;
        } else if !idx.stale.is_empty() {
            let stale: Vec<NodeId> = idx.stale.drain().collect();
            for id in stale {
                idx.remove_node(id);
                if let Some(node) = self.nodes.get(id.0) {
                    idx.insert_node(node);
                }
            }
        }
        Some(
            idx.map
                .get(&prop_key(key, text))
                .cloned()
                .unwrap_or_default(),
        )
    }

    /// Get-or-create by `(label, name)` — the §2.5 exact-text merge. When the
    /// node exists, `extra_props` fill gaps but never overwrite.
    pub fn merge_node<K, V>(
        &mut self,
        label: &str,
        name: &str,
        extra_props: impl IntoIterator<Item = (K, V)>,
    ) -> NodeId
    where
        K: Into<String>,
        V: Into<Value>,
    {
        if let Some(id) = with_name_key(label, name, |key| {
            self.name_index.get(key).and_then(|ids| ids.last()).copied()
        }) {
            let mut changed = false;
            if let Some(node) = self.nodes.get_mut(id.0) {
                for (k, v) in extra_props {
                    if let std::collections::btree_map::Entry::Vacant(slot) =
                        node.props.entry(k.into())
                    {
                        slot.insert(v.into());
                        changed = true;
                    }
                }
            }
            if changed {
                self.touched_nodes.insert(id);
                self.mark_prop_stale(id);
            }
            return id;
        }
        let mut props: Vec<(String, Value)> = extra_props
            .into_iter()
            .map(|(k, v)| (k.into(), v.into()))
            .collect();
        props.push(("name".to_owned(), Value::from(name)));
        self.create_node(label, props)
    }

    /// Fetch a node.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.0)
    }

    /// Mutable property access. Conservatively marks the node as changed.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut Node> {
        let node = self.nodes.get_mut(id.0)?;
        self.touched_nodes.insert(id);
        let idx = self
            .prop_index
            .0
            .get_mut()
            .unwrap_or_else(|e| e.into_inner());
        if idx.seeded {
            idx.stale.insert(id);
        }
        Some(node)
    }

    /// Update a node property, maintaining the name index.
    pub fn set_node_prop(&mut self, id: NodeId, key: &str, value: Value) -> Result<(), StoreError> {
        let node = self.nodes.get_mut(id.0).ok_or(StoreError::NoSuchNode(id))?;
        if key == "name" {
            if let Some(old) = node.name() {
                let k = name_key(&node.label, old);
                if let Some(ids) = self.name_index.get_mut(&k) {
                    ids.retain(|&n| n != id);
                    if ids.is_empty() {
                        self.name_index.remove(&k);
                    }
                }
            }
            if let Some(new_name) = value.as_text() {
                self.name_index
                    .entry(name_key(&node.label, new_name))
                    .or_default()
                    .push(id);
            }
        }
        // `node` was invalidated by the name-index borrows above; re-fetch.
        let node = self.nodes.get_mut(id.0).ok_or(StoreError::NoSuchNode(id))?;
        node.props.insert(key.to_owned(), value);
        self.touched_nodes.insert(id);
        self.mark_prop_stale(id);
        Ok(())
    }

    /// Delete a node and (detach) all its edges.
    pub fn delete_node(&mut self, id: NodeId) -> Result<(), StoreError> {
        let node = self.nodes.get(id.0).ok_or(StoreError::NoSuchNode(id))?;
        let label = node.label.clone();
        let name = node.name().map(str::to_owned);
        let touching: Vec<EdgeId> = self
            .out_edges
            .get(&id)
            .into_iter()
            .flatten()
            .chain(self.in_edges.get(&id).into_iter().flatten())
            .copied()
            .collect();
        for eid in touching {
            let _ = self.delete_edge(eid);
        }
        self.nodes.clear(id.0);
        self.live_nodes -= 1;
        self.touched_nodes.insert(id);
        self.mark_prop_stale(id);
        if let Some(ids) = self.label_index.get_mut(&label) {
            ids.retain(|&n| n != id);
        }
        if let Some(name) = name {
            let key = name_key(&label, &name);
            if let Some(ids) = self.name_index.get_mut(&key) {
                ids.retain(|&n| n != id);
                if ids.is_empty() {
                    self.name_index.remove(&key);
                }
            }
        }
        self.out_edges.remove(&id);
        self.in_edges.remove(&id);
        Ok(())
    }

    /// Look up by the `(label, name)` index. With duplicate names (possible
    /// via unconstrained `create_node`/renames) the most recent writer wins;
    /// [`GraphStore::nodes_by_name`] returns all of them.
    pub fn node_by_name(&self, label: &str, name: &str) -> Option<NodeId> {
        with_name_key(label, name, |key| {
            self.name_index.get(key).and_then(|ids| ids.last()).copied()
        })
    }

    /// Every live node with this `(label, name)`, oldest first.
    pub fn nodes_by_name(&self, label: &str, name: &str) -> Vec<NodeId> {
        with_name_key(label, name, |key| {
            self.name_index.get(key).cloned().unwrap_or_default()
        })
    }

    /// Live nodes with a label, in creation order.
    pub fn nodes_with_label(&self, label: &str) -> Vec<NodeId> {
        self.label_index.get(label).cloned().unwrap_or_default()
    }

    /// All live node ids, in creation order.
    pub fn all_nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    // ---- edges -----------------------------------------------------------

    /// Create a directed edge.
    pub fn create_edge<K, V>(
        &mut self,
        from: NodeId,
        rel_type: &str,
        to: NodeId,
        props: impl IntoIterator<Item = (K, V)>,
    ) -> Result<EdgeId, StoreError>
    where
        K: Into<String>,
        V: Into<Value>,
    {
        if self.node(from).is_none() {
            return Err(StoreError::NoSuchNode(from));
        }
        if self.node(to).is_none() {
            return Err(StoreError::NoSuchNode(to));
        }
        let id = EdgeId(self.edges.slots() as u64);
        let props: BTreeMap<String, Value> = props
            .into_iter()
            .map(|(k, v)| (k.into(), v.into()))
            .collect();
        self.edges.push(Edge {
            id,
            from,
            to,
            rel_type: rel_type.to_owned(),
            props,
        });
        self.out_edges.entry(from).or_default().push(id);
        self.in_edges.entry(to).or_default().push(id);
        self.live_edges += 1;
        self.touched_edges.insert(id, (from, to));
        Ok(id)
    }

    /// Get-or-create an edge with this exact `(from, rel_type, to)`.
    pub fn merge_edge(
        &mut self,
        from: NodeId,
        rel_type: &str,
        to: NodeId,
    ) -> Result<EdgeId, StoreError> {
        if let Some(existing) = self.out_edges.get(&from).into_iter().flatten().find(|&&e| {
            self.edge(e)
                .is_some_and(|edge| edge.to == to && edge.rel_type == rel_type)
        }) {
            return Ok(*existing);
        }
        self.create_edge(from, rel_type, to, std::iter::empty::<(String, Value)>())
    }

    /// Fetch an edge.
    pub fn edge(&self, id: EdgeId) -> Option<&Edge> {
        self.edges.get(id.0)
    }

    /// Mutable edge access. Conservatively marks the edge as changed.
    pub fn edge_mut(&mut self, id: EdgeId) -> Option<&mut Edge> {
        let (from, to) = {
            let edge = self.edges.get(id.0)?;
            (edge.from, edge.to)
        };
        self.touched_edges.insert(id, (from, to));
        self.edges.get_mut(id.0)
    }

    /// Delete an edge.
    pub fn delete_edge(&mut self, id: EdgeId) -> Result<(), StoreError> {
        let edge = self.edges.get(id.0).ok_or(StoreError::NoSuchEdge(id))?;
        let (from, to) = (edge.from, edge.to);
        self.edges.clear(id.0);
        self.live_edges -= 1;
        self.touched_edges.insert(id, (from, to));
        if let Some(es) = self.out_edges.get_mut(&from) {
            es.retain(|&e| e != id);
        }
        if let Some(es) = self.in_edges.get_mut(&to) {
            es.retain(|&e| e != id);
        }
        Ok(())
    }

    /// Outgoing edge ids of a node, in creation order, zero-alloc. Callers
    /// resolve through [`GraphStore::edge`] (which returns `None` for
    /// tombstones), exactly as [`GraphStore::outgoing_iter`] does.
    pub fn out_edge_ids(&self, id: NodeId) -> &[EdgeId] {
        self.out_edges.get(&id).map_or(&[], Vec::as_slice)
    }

    /// Incoming edge ids of a node, in creation order, zero-alloc.
    pub fn in_edge_ids(&self, id: NodeId) -> &[EdgeId] {
        self.in_edges.get(&id).map_or(&[], Vec::as_slice)
    }

    /// Outgoing edges of a node, lazily — no per-call `Vec`.
    pub fn outgoing_iter(&self, id: NodeId) -> impl Iterator<Item = &Edge> + '_ {
        self.out_edges
            .get(&id)
            .into_iter()
            .flatten()
            .filter_map(|&e| self.edge(e))
    }

    /// Incoming edges of a node, lazily — no per-call `Vec`.
    pub fn incoming_iter(&self, id: NodeId) -> impl Iterator<Item = &Edge> + '_ {
        self.in_edges
            .get(&id)
            .into_iter()
            .flatten()
            .filter_map(|&e| self.edge(e))
    }

    /// Outgoing edges of a node.
    pub fn outgoing(&self, id: NodeId) -> Vec<&Edge> {
        self.outgoing_iter(id).collect()
    }

    /// Incoming edges of a node.
    pub fn incoming(&self, id: NodeId) -> Vec<&Edge> {
        self.incoming_iter(id).collect()
    }

    /// Distinct neighbor node ids (both directions), in edge order, lazily.
    /// Dedup state lives inside the iterator, so callers that stop early
    /// (`any`, `take`) never pay for the full adjacency list.
    pub fn neighbors_iter(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut seen: Vec<NodeId> = Vec::new();
        self.outgoing_iter(id)
            .map(|e| e.to)
            .chain(self.incoming_iter(id).map(|e| e.from))
            .filter(move |n| {
                if seen.contains(n) {
                    false
                } else {
                    seen.push(*n);
                    true
                }
            })
    }

    /// Distinct neighbor node ids (both directions), in edge order.
    pub fn neighbors(&self, id: NodeId) -> Vec<NodeId> {
        self.neighbors_iter(id).collect()
    }

    /// Total degree (in + out).
    pub fn degree(&self, id: NodeId) -> usize {
        self.out_edges.get(&id).map_or(0, Vec::len) + self.in_edges.get(&id).map_or(0, Vec::len)
    }

    /// All live edges.
    pub fn all_edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter()
    }

    // ---- digest & change tracking -----------------------------------------

    /// Deterministic fingerprint of the graph: [`DIGEST_SEED`] plus the
    /// wrapping sum of every live element's [`node_digest`]/[`edge_digest`]
    /// term. The combine is commutative, so the digest is maintainable
    /// incrementally (subtract the old term, add the new one) and two graphs
    /// agree whenever their live node/edge sets agree — independent of
    /// tombstone layout or the order elements were touched.
    pub fn digest(&self) -> u64 {
        let mut digest = DIGEST_SEED;
        for node in self.all_nodes() {
            digest = digest.wrapping_add(node_digest(node));
        }
        for edge in self.all_edges() {
            digest = digest.wrapping_add(edge_digest(edge));
        }
        digest
    }

    /// Register a new consumer of the delta log. Pending (un-sealed) changes
    /// are sealed first and the fresh cursor is positioned *after* them: a
    /// new consumer sees exactly the changes made after registration, never
    /// history it has no baseline for. A freshly loaded store
    /// ([`GraphStore::from_segments`] or [`GraphStore::rebuild_after_load`])
    /// starts with an empty log — incremental consumers must re-seed from a
    /// full scan after a load.
    pub fn register_delta_consumer(&mut self) -> DeltaCursor {
        self.seal_pending();
        let id = self.delta.next_cursor_id;
        self.delta.next_cursor_id += 1;
        let tail = self.delta.tail_seq();
        self.delta.cursors.insert(id, tail);
        self.prune_delta();
        DeltaCursor(id)
    }

    /// Deregister a cursor so its unread batches no longer pin the log.
    /// Unknown/already-released cursors are ignored.
    pub fn release_delta_consumer(&mut self, cursor: DeltaCursor) {
        if self.delta.cursors.remove(&cursor.0).is_some() {
            self.prune_delta();
        }
    }

    /// Seal the pending touched-set into a sequence-numbered batch on the
    /// log (no-op when nothing is pending). Consumers normally never call
    /// this — [`GraphStore::collect_changes`] seals implicitly — but an
    /// explicit seal point lets a second consumer later read *exactly up to*
    /// this moment via [`GraphStore::collect_sealed_changes`], even if the
    /// writer has mutated again in between.
    pub fn seal_changes(&mut self) {
        self.seal_pending();
        self.prune_delta();
    }

    /// Seal pending changes, then return every batch this cursor has not
    /// seen yet (oldest first) and advance the cursor past them. Each batch
    /// is delivered to each registered cursor exactly once; batches all
    /// cursors have passed are pruned. An unregistered cursor reads nothing.
    pub fn collect_changes(&mut self, cursor: DeltaCursor) -> Vec<DeltaBatch> {
        self.seal_pending();
        self.collect_sealed_changes(cursor)
    }

    /// Like [`GraphStore::collect_changes`] but without sealing: the cursor
    /// reads only up to the last explicit seal point, leaving changes made
    /// after it on the pending tail for a future batch.
    pub fn collect_sealed_changes(&mut self, cursor: DeltaCursor) -> Vec<DeltaBatch> {
        let Some(pos) = self.delta.cursors.get(&cursor.0).copied() else {
            return Vec::new();
        };
        let tail = self.delta.tail_seq();
        let start = pos.max(self.delta.base_seq);
        let mut out = Vec::with_capacity((tail - start) as usize);
        for seq in start..tail {
            let idx = (seq - self.delta.base_seq) as usize;
            out.push(DeltaBatch {
                seq,
                changes: Arc::clone(&self.delta.batches[idx]),
            });
        }
        self.delta.cursors.insert(cursor.0, tail);
        self.prune_delta();
        out
    }

    /// Take everything touched since the previous drain, merged across seal
    /// points (sorted, deduplicated). Serviced by a private cursor lazily
    /// registered at the oldest retained batch, so single-consumer callers
    /// keep the historical semantics — but a second consumer no longer loses
    /// deltas to this one.
    #[deprecated(
        note = "single-consumer API; use register_delta_consumer + collect_changes instead"
    )]
    pub fn drain_changes(&mut self) -> GraphChanges {
        let cursor = match self.delta.legacy {
            Some(cursor) => cursor,
            None => {
                // Position at the oldest retained batch (not the tail): the
                // first drain must report everything since the store was
                // created, as the destructive implementation did.
                let id = self.delta.next_cursor_id;
                self.delta.next_cursor_id += 1;
                self.delta.cursors.insert(id, self.delta.base_seq);
                let cursor = DeltaCursor(id);
                self.delta.legacy = Some(cursor);
                cursor
            }
        };
        let mut nodes: BTreeSet<NodeId> = BTreeSet::new();
        let mut edges: BTreeMap<EdgeId, (NodeId, NodeId)> = BTreeMap::new();
        for batch in self.collect_changes(cursor) {
            nodes.extend(batch.changes.nodes.iter().copied());
            for &(id, from, to) in &batch.changes.edges {
                edges.insert(id, (from, to));
            }
        }
        GraphChanges {
            nodes: nodes.into_iter().collect(),
            edges: edges.into_iter().map(|(id, (f, t))| (id, f, t)).collect(),
        }
    }

    /// Elements currently recorded as touched (pending — not yet sealed
    /// into a batch).
    pub fn pending_changes(&self) -> usize {
        self.touched_nodes.len() + self.touched_edges.len()
    }

    /// Sealed batches currently retained on the log (waiting for the
    /// slowest cursor).
    pub fn delta_backlog(&self) -> usize {
        self.delta.batches.len()
    }

    fn seal_pending(&mut self) {
        if self.touched_nodes.is_empty() && self.touched_edges.is_empty() {
            return;
        }
        let mut nodes: Vec<NodeId> = self.touched_nodes.drain().collect();
        nodes.sort_unstable();
        let mut edges: Vec<(EdgeId, NodeId, NodeId)> = self
            .touched_edges
            .drain()
            .map(|(id, (from, to))| (id, from, to))
            .collect();
        edges.sort_unstable();
        self.delta
            .batches
            .push_back(Arc::new(GraphChanges { nodes, edges }));
    }

    /// Drop batches every registered cursor has already read. With no
    /// cursors registered, batches are retained for the lazily registered
    /// legacy drain cursor (which starts at the oldest retained batch).
    fn prune_delta(&mut self) {
        let Some(min) = self.delta.cursors.values().copied().min() else {
            return;
        };
        while self.delta.base_seq < min && self.delta.batches.pop_front().is_some() {
            self.delta.base_seq += 1;
        }
    }

    // ---- stats & persistence ----------------------------------------------

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Node counts per label, sorted by label.
    pub fn label_histogram(&self) -> BTreeMap<String, usize> {
        self.label_index
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(k, v)| (k.clone(), v.len()))
            .collect()
    }

    /// Rebuild the derived state (label/name/property indexes, adjacency,
    /// delta log) after deserialising a store whose `#[serde(skip)]` fields
    /// came back empty — e.g. a whole-KB JSON snapshot load. The hot
    /// checkpoint path uses [`GraphStore::from_segments`] instead, which
    /// calls this internally.
    pub fn rebuild_after_load(&mut self) {
        self.rebuild_indexes();
    }

    // ---- segment persistence (kg-persist) ---------------------------------
    //
    // The checkpoint unit is one arena segment (SEG_CAP slots), matching the
    // copy-on-write granularity: a mutation dirties exactly the segments it
    // copies, so an incremental checkpoint writes exactly those.

    /// Total node slots ever allocated (live + tombstoned).
    pub fn node_slot_count(&self) -> usize {
        self.nodes.slots()
    }

    /// Total edge slots ever allocated (live + tombstoned).
    pub fn edge_slot_count(&self) -> usize {
        self.edges.slots()
    }

    /// Number of node arena segments.
    pub fn node_segment_count(&self) -> usize {
        self.nodes.seg_count()
    }

    /// Number of edge arena segments.
    pub fn edge_segment_count(&self) -> usize {
        self.edges.seg_count()
    }

    /// One node arena segment as JSON (`null` entries are tombstones).
    pub fn node_segment_json(&self, index: usize) -> Option<String> {
        self.nodes
            .segment(index)
            .map(|seg| serde_json::to_string(seg).expect("node segment serialises"))
    }

    /// One edge arena segment as JSON (`null` entries are tombstones).
    pub fn edge_segment_json(&self, index: usize) -> Option<String> {
        self.edges
            .segment(index)
            .map(|seg| serde_json::to_string(seg).expect("edge segment serialises"))
    }

    /// One node arena segment as raw slots (`None` entries are tombstones) —
    /// what `kg-codec` packs into a `KGBIN001` binary payload.
    pub fn node_segment_slots(&self, index: usize) -> Option<&[Option<Node>]> {
        self.nodes.segment(index).map(Vec::as_slice)
    }

    /// One edge arena segment as raw slots (`None` entries are tombstones).
    pub fn edge_segment_slots(&self, index: usize) -> Option<&[Option<Edge>]> {
        self.edges.segment(index).map(Vec::as_slice)
    }

    /// Node segments mutated since [`GraphStore::clear_segment_dirty`].
    pub fn dirty_node_segments(&self) -> Vec<usize> {
        self.nodes.dirty_segments()
    }

    /// Edge segments mutated since [`GraphStore::clear_segment_dirty`].
    pub fn dirty_edge_segments(&self) -> Vec<usize> {
        self.edges.dirty_segments()
    }

    /// Forget segment dirtiness. Call only once a checkpoint containing the
    /// dirty segments is durably committed — clearing early loses writes
    /// from the next incremental checkpoint.
    pub fn clear_segment_dirty(&mut self) {
        self.nodes.clear_dirty();
        self.edges.clear_dirty();
    }

    /// Reassemble a store from per-segment slot vectors (the inverse of
    /// reading every `*_segment_json`). Validates the arena shape and that
    /// each element sits in the slot its id names; indexes are rebuilt and
    /// the dirty sets stay clear (the reassembled state *is* the disk state,
    /// so the next incremental checkpoint need not rewrite it).
    pub fn from_segments(
        node_parts: Vec<Vec<Option<Node>>>,
        edge_parts: Vec<Vec<Option<Edge>>>,
    ) -> Result<Self, String> {
        let nodes = Segments::from_parts(node_parts).map_err(|e| format!("node arena: {e}"))?;
        let edges = Segments::from_parts(edge_parts).map_err(|e| format!("edge arena: {e}"))?;
        let mut live_nodes = 0;
        for (slot, node) in nodes
            .segs
            .iter()
            .flat_map(|seg| seg.iter())
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|n| (i, n)))
        {
            if node.id.0 != slot as u64 {
                return Err(format!("node id {} stored in slot {slot}", node.id.0));
            }
            live_nodes += 1;
        }
        let mut live_edges = 0;
        for (slot, edge) in edges
            .segs
            .iter()
            .flat_map(|seg| seg.iter())
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|e| (i, e)))
        {
            if edge.id.0 != slot as u64 {
                return Err(format!("edge id {} stored in slot {slot}", edge.id.0));
            }
            live_edges += 1;
        }
        let mut store = GraphStore {
            nodes,
            edges,
            live_nodes,
            live_edges,
            ..GraphStore::default()
        };
        store.rebuild_indexes();
        store.clear_segment_dirty();
        Ok(store)
    }

    fn rebuild_indexes(&mut self) {
        self.label_index.clear();
        self.name_index.clear();
        self.out_edges.clear();
        self.in_edges.clear();
        self.touched_nodes.clear();
        self.touched_edges.clear();
        self.delta = DeltaLog::default();
        self.prop_index = PropIndexCell::default();
        let mut label_entries: Vec<(String, NodeId)> = Vec::new();
        let mut name_entries: Vec<(String, NodeId)> = Vec::new();
        for node in self.nodes.iter() {
            label_entries.push((node.label.clone(), node.id));
            if let Some(name) = node.name() {
                name_entries.push((name_key(&node.label, name), node.id));
            }
        }
        for (label, id) in label_entries {
            self.label_index.entry(label).or_default().push(id);
        }
        for (key, id) in name_entries {
            self.name_index.entry(key).or_default().push(id);
        }
        let edge_entries: Vec<(NodeId, NodeId, EdgeId)> = self
            .edges
            .iter()
            .map(|edge| (edge.from, edge.to, edge.id))
            .collect();
        for (from, to, id) in edge_entries {
            self.out_edges.entry(from).or_default().push(id);
            self.in_edges.entry(to).or_default().push(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup() {
        let mut g = GraphStore::new();
        let a = g.create_node("Malware", [("name", Value::from("wannacry"))]);
        assert_eq!(g.node(a).unwrap().name(), Some("wannacry"));
        assert_eq!(g.node_by_name("Malware", "wannacry"), Some(a));
        assert_eq!(g.node_by_name("Tool", "wannacry"), None);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn merge_node_deduplicates_exact_name() {
        let mut g = GraphStore::new();
        let a = g.merge_node(
            "Malware",
            "wannacry",
            [("vendor", Value::from("securelist"))],
        );
        let b = g.merge_node("Malware", "wannacry", [("vendor", Value::from("talos"))]);
        assert_eq!(a, b);
        assert_eq!(g.node_count(), 1);
        // First-writer wins on existing props.
        assert_eq!(
            g.node(a).unwrap().props["vendor"],
            Value::from("securelist")
        );
        // Different label ≠ same node.
        let c = g.merge_node("Tool", "wannacry", [] as [(&str, Value); 0]);
        assert_ne!(a, c);
    }

    #[test]
    fn edges_and_adjacency() {
        let mut g = GraphStore::new();
        let m = g.create_node("Malware", [("name", Value::from("wannacry"))]);
        let f = g.create_node("FileName", [("name", Value::from("tasksche.exe"))]);
        let e = g
            .create_edge(m, "DROP", f, [("confidence", Value::from(0.9))])
            .unwrap();
        assert_eq!(g.edge(e).unwrap().rel_type, "DROP");
        assert_eq!(g.outgoing(m).len(), 1);
        assert_eq!(g.incoming(f).len(), 1);
        assert_eq!(g.neighbors(m), vec![f]);
        assert_eq!(g.neighbors(f), vec![m]);
        assert_eq!(g.degree(m), 1);
    }

    #[test]
    fn iterator_adjacency_matches_vec_variants() {
        let mut g = GraphStore::new();
        let m = g.create_node("Malware", [("name", Value::from("wannacry"))]);
        let f = g.create_node("FileName", [("name", Value::from("tasksche.exe"))]);
        let d = g.create_node("Domain", [("name", Value::from("kill.switch"))]);
        g.create_edge(m, "DROP", f, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(m, "CONNECTS_TO", d, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(d, "MENTIONS", m, [] as [(&str, Value); 0])
            .unwrap();
        assert_eq!(
            g.outgoing_iter(m).map(|e| e.id).collect::<Vec<_>>(),
            g.outgoing(m).iter().map(|e| e.id).collect::<Vec<_>>()
        );
        assert_eq!(
            g.incoming_iter(m).map(|e| e.id).collect::<Vec<_>>(),
            g.incoming(m).iter().map(|e| e.id).collect::<Vec<_>>()
        );
        // d is both an outgoing target and an incoming source of m — the
        // lazy dedup must keep it single like the Vec variant does.
        assert_eq!(g.neighbors_iter(m).collect::<Vec<_>>(), g.neighbors(m));
        assert_eq!(g.neighbors(m), vec![f, d]);
        // Early exit works without draining the adjacency.
        assert!(g.neighbors_iter(m).any(|n| n == d));
    }

    #[test]
    fn merge_edge_is_idempotent() {
        let mut g = GraphStore::new();
        let a = g.create_node("Malware", [("name", Value::from("x"))]);
        let b = g.create_node("FileName", [("name", Value::from("y.exe"))]);
        let e1 = g.merge_edge(a, "DROP", b).unwrap();
        let e2 = g.merge_edge(a, "DROP", b).unwrap();
        assert_eq!(e1, e2);
        assert_eq!(g.edge_count(), 1);
        let e3 = g.merge_edge(a, "EXECUTES", b).unwrap();
        assert_ne!(e1, e3);
    }

    #[test]
    fn delete_node_detaches() {
        let mut g = GraphStore::new();
        let a = g.create_node("Malware", [("name", Value::from("x"))]);
        let b = g.create_node("FileName", [("name", Value::from("y.exe"))]);
        g.create_edge(a, "DROP", b, [] as [(&str, Value); 0])
            .unwrap();
        g.delete_node(b).unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert!(g.outgoing(a).is_empty());
        assert_eq!(g.node_by_name("FileName", "y.exe"), None);
        assert!(g.delete_node(b).is_err());
    }

    #[test]
    fn rename_maintains_index() {
        let mut g = GraphStore::new();
        let a = g.create_node("Malware", [("name", Value::from("wcry"))]);
        g.set_node_prop(a, "name", Value::from("wannacry")).unwrap();
        assert_eq!(g.node_by_name("Malware", "wannacry"), Some(a));
        assert_eq!(g.node_by_name("Malware", "wcry"), None);
    }

    #[test]
    fn label_histogram_counts() {
        let mut g = GraphStore::new();
        g.create_node("Malware", [("name", Value::from("a"))]);
        g.create_node("Malware", [("name", Value::from("b"))]);
        g.create_node("Tool", [("name", Value::from("c"))]);
        let h = g.label_histogram();
        assert_eq!(h["Malware"], 2);
        assert_eq!(h["Tool"], 1);
    }

    #[test]
    fn persistence_round_trip() {
        let mut g = GraphStore::new();
        let m = g.create_node("Malware", [("name", Value::from("wannacry"))]);
        let f = g.create_node("FileName", [("name", Value::from("tasksche.exe"))]);
        g.create_edge(m, "DROP", f, [] as [(&str, Value); 0])
            .unwrap();
        let bytes = serde_json::to_vec(&g).unwrap();
        let mut back: GraphStore = serde_json::from_slice(&bytes).unwrap();
        back.rebuild_after_load();
        assert_eq!(back.node_count(), 2);
        assert_eq!(back.edge_count(), 1);
        assert_eq!(back.node_by_name("Malware", "wannacry"), Some(m));
        assert_eq!(back.neighbors(m), vec![f]);
        // The digest survives the round trip (tombstone layout included).
        assert_eq!(back.digest(), g.digest());
        // A fresh load reports a clean change-tracking baseline.
        assert_eq!(back.pending_changes(), 0);
    }

    #[test]
    fn segment_dirty_tracking_is_exact_and_from_segments_round_trips() {
        let mut g = GraphStore::new();
        // Fill past one segment boundary so there are multiple segments.
        let ids: Vec<NodeId> = (0..SEG_CAP + 10)
            .map(|i| g.create_node("Malware", [("name", Value::from(format!("m{i}")))]))
            .collect();
        g.create_edge(ids[0], "DROP", ids[1], [] as [(&str, Value); 0])
            .unwrap();
        // Everything is dirty on first build.
        assert_eq!(g.dirty_node_segments(), vec![0, 1]);
        assert_eq!(g.dirty_edge_segments(), vec![0]);
        g.clear_segment_dirty();
        assert!(g.dirty_node_segments().is_empty());
        // A mutation dirties exactly the segment it lands in.
        g.set_node_prop(ids[SEG_CAP + 2], "family", Value::from("worm"))
            .unwrap();
        assert_eq!(g.dirty_node_segments(), vec![1]);
        g.delete_node(ids[3]).unwrap();
        assert_eq!(g.dirty_node_segments(), vec![0, 1]);
        assert!(g.dirty_edge_segments().is_empty()); // edge of ids[0]–ids[1] untouched

        // Round trip through per-segment JSON.
        let node_parts: Vec<Vec<Option<Node>>> = (0..g.node_segment_count())
            .map(|i| serde_json::from_str(&g.node_segment_json(i).unwrap()).unwrap())
            .collect();
        let edge_parts: Vec<Vec<Option<Edge>>> = (0..g.edge_segment_count())
            .map(|i| serde_json::from_str(&g.edge_segment_json(i).unwrap()).unwrap())
            .collect();
        let back = GraphStore::from_segments(node_parts, edge_parts).unwrap();
        assert_eq!(back.digest(), g.digest());
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(back.node_slot_count(), g.node_slot_count());
        // Reassembled state equals disk state: nothing is dirty.
        assert!(back.dirty_node_segments().is_empty());
        assert!(back.dirty_edge_segments().is_empty());

        // Shape violations are clean errors, not panics.
        assert!(GraphStore::from_segments(vec![vec![None::<Node>]; 2], Vec::new()).is_err());
        let mut wrong_slot: Vec<Option<Node>> =
            serde_json::from_str(&g.node_segment_json(0).unwrap()).unwrap();
        wrong_slot.rotate_right(1);
        assert!(GraphStore::from_segments(vec![wrong_slot], Vec::new()).is_err());
    }

    #[test]
    fn duplicate_names_resolve_to_latest_and_never_lose_entries() {
        let mut g = GraphStore::new();
        let a = g.create_node("Malware", [("name", Value::from("x"))]);
        let b = g.create_node("Malware", [("name", Value::from("y"))]);
        // Rename b to collide with a: lookup now prefers b (latest writer)...
        g.set_node_prop(b, "name", Value::from("x")).unwrap();
        assert_eq!(g.node_by_name("Malware", "x"), Some(b));
        assert_eq!(g.nodes_by_name("Malware", "x"), vec![a, b]);
        // ...and removing b restores a instead of losing the name.
        g.delete_node(b).unwrap();
        assert_eq!(g.node_by_name("Malware", "x"), Some(a));
        // Renaming the survivor away clears the entry entirely.
        g.set_node_prop(a, "name", Value::from("z")).unwrap();
        assert_eq!(g.node_by_name("Malware", "x"), None);
        assert!(g.nodes_by_name("Malware", "x").is_empty());
    }

    #[test]
    fn ids_are_never_reused() {
        let mut g = GraphStore::new();
        let a = g.create_node("Malware", [("name", Value::from("a"))]);
        g.delete_node(a).unwrap();
        let b = g.create_node("Malware", [("name", Value::from("b"))]);
        assert_ne!(a, b);
        assert!(g.node(a).is_none());
    }

    #[test]
    fn segments_span_boundaries_and_serialise_flat() {
        let mut g = GraphStore::new();
        let n = SEG_CAP + SEG_CAP / 2;
        let ids: Vec<NodeId> = (0..n)
            .map(|i| g.create_node("Malware", [("name", Value::from(format!("m{i}")))]))
            .collect();
        for pair in ids.windows(2).take(SEG_CAP + 3) {
            g.create_edge(pair[0], "RELATED_TO", pair[1], [] as [(&str, Value); 0])
                .unwrap();
        }
        g.delete_node(ids[SEG_CAP]).unwrap();
        assert_eq!(g.node_count(), n - 1);
        assert!(g.node(ids[SEG_CAP]).is_none());
        assert_eq!(g.node(ids[SEG_CAP + 1]).unwrap().name(), Some("m257"));
        // The JSON shape is the flat array the unsegmented arena produced:
        // one top-level array with a null at the tombstone.
        let bytes = serde_json::to_vec(&g).unwrap();
        let mut back: GraphStore = serde_json::from_slice(&bytes).unwrap();
        back.rebuild_after_load();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(back.digest(), g.digest());
        assert_eq!(back.neighbors(ids[1]), g.neighbors(ids[1]));
    }

    #[test]
    fn clone_shares_segments_until_mutated() {
        let mut g = GraphStore::new();
        for i in 0..(3 * SEG_CAP) {
            g.create_node("Malware", [("name", Value::from(format!("m{i}")))]);
        }
        let frozen = g.clone();
        // Mutating the original never shows through the clone.
        let id = g.node_by_name("Malware", "m0").unwrap();
        g.set_node_prop(id, "vendor", Value::from("x")).unwrap();
        assert!(!frozen.node(id).unwrap().props.contains_key("vendor"));
        assert!(g.node(id).unwrap().props.contains_key("vendor"));
        // New nodes in the original don't appear in the clone.
        g.create_node("Tool", [("name", Value::from("t"))]);
        assert_eq!(frozen.node_count(), 3 * SEG_CAP);
    }

    #[test]
    fn digest_is_incrementally_maintainable() {
        let mut g = GraphStore::new();
        let m = g.create_node("Malware", [("name", Value::from("wannacry"))]);
        let f = g.create_node("FileName", [("name", Value::from("tasksche.exe"))]);
        let e = g
            .create_edge(m, "DROP", f, [] as [(&str, Value); 0])
            .unwrap();
        let full = g.digest();
        // Rebuild the digest from individual terms: same combine.
        let manual = DIGEST_SEED
            .wrapping_add(node_digest(g.node(m).unwrap()))
            .wrapping_add(node_digest(g.node(f).unwrap()))
            .wrapping_add(edge_digest(g.edge(e).unwrap()));
        assert_eq!(full, manual);
        // Incremental update across a mutation: subtract old, add new.
        let old_term = node_digest(g.node(m).unwrap());
        g.set_node_prop(m, "vendor", Value::from("talos")).unwrap();
        let incremental = full
            .wrapping_sub(old_term)
            .wrapping_add(node_digest(g.node(m).unwrap()));
        assert_eq!(incremental, g.digest());
        // Deletion: the edge term and the node term drop out.
        let edge_term = edge_digest(g.edge(e).unwrap());
        let f_term = node_digest(g.node(f).unwrap());
        g.delete_node(f).unwrap();
        assert_eq!(
            g.digest(),
            incremental.wrapping_sub(edge_term).wrapping_sub(f_term)
        );
        // Digest depends on live content only, not tombstone history: a
        // fresh store that never saw f or the edge agrees element-for-element.
        let mut h = GraphStore::new();
        let hm = h.create_node("Malware", [("name", Value::from("wannacry"))]);
        h.set_node_prop(hm, "vendor", Value::from("talos")).unwrap();
        assert_eq!(g.digest(), h.digest());
    }

    #[test]
    #[allow(deprecated)]
    fn change_tracking_drains_touched_elements() {
        let mut g = GraphStore::new();
        assert_eq!(g.pending_changes(), 0);
        let m = g.create_node("Malware", [("name", Value::from("a"))]);
        let f = g.create_node("FileName", [("name", Value::from("b.exe"))]);
        let e = g
            .create_edge(m, "DROP", f, [] as [(&str, Value); 0])
            .unwrap();
        let changes = g.drain_changes();
        assert_eq!(changes.nodes, vec![m, f]);
        assert_eq!(changes.edges, vec![(e, m, f)]);
        assert!(g.drain_changes().is_empty());
        // Deleting the node touches it and its edge (endpoints preserved).
        g.delete_node(f).unwrap();
        let changes = g.drain_changes();
        assert_eq!(changes.nodes, vec![f]);
        assert_eq!(changes.edges, vec![(e, m, f)]);
        // A no-op merge on an existing node does not dirty it.
        g.drain_changes();
        g.merge_node("Malware", "a", [] as [(&str, Value); 0]);
        assert!(g.drain_changes().is_empty());
        // A prop-filling merge does.
        g.merge_node("Malware", "a", [("vendor", Value::from("x"))]);
        assert_eq!(g.drain_changes().nodes, vec![m]);
    }

    /// The regression the delta log exists for: with the old destructive
    /// `drain_changes`, whichever consumer read first emptied the touched-set
    /// and the other silently saw nothing. Two cursors must each observe
    /// every change exactly once, regardless of interleaving.
    #[test]
    fn two_interleaved_consumers_each_see_every_change_exactly_once() {
        let mut g = GraphStore::new();
        let c1 = g.register_delta_consumer();
        let c2 = g.register_delta_consumer();

        let a = g.create_node("Malware", [("name", Value::from("a"))]);
        // Consumer 1 reads first — under the destructive API this would have
        // drained the change out from under consumer 2.
        let got1 = g.collect_changes(c1);
        assert_eq!(got1.len(), 1);
        assert_eq!(got1[0].changes.nodes, vec![a]);

        let b = g.create_node("Tool", [("name", Value::from("b"))]);
        let e = g
            .create_edge(a, "USES", b, [] as [(&str, Value); 0])
            .unwrap();

        // Consumer 2 catches up: both spans, exactly once, in order.
        let got2 = g.collect_changes(c2);
        let nodes2: Vec<NodeId> = got2
            .iter()
            .flat_map(|batch| batch.changes.nodes.iter().copied())
            .collect();
        let edges2: Vec<EdgeId> = got2
            .iter()
            .flat_map(|batch| batch.changes.edges.iter().map(|&(id, _, _)| id))
            .collect();
        assert_eq!(nodes2, vec![a, b]);
        assert_eq!(edges2, vec![e]);

        // Consumer 1 sees only the second span (it already consumed `a`),
        // under the same sequence number consumer 2 saw for that span.
        let got1 = g.collect_changes(c1);
        assert_eq!(got1.len(), 1);
        assert_eq!(got1[0].changes.nodes, vec![b]);
        assert_eq!(got1[0].seq, got2.last().unwrap().seq);

        // Fully drained on both sides: nothing more to read.
        assert!(g.collect_changes(c1).is_empty());
        assert!(g.collect_changes(c2).is_empty());
    }

    #[test]
    fn delta_log_prunes_once_the_slowest_cursor_catches_up() {
        let mut g = GraphStore::new();
        let fast = g.register_delta_consumer();
        let slow = g.register_delta_consumer();
        for i in 0..4 {
            g.create_node("Malware", [("name", Value::from(format!("m{i}")))]);
            assert_eq!(g.collect_changes(fast).len(), 1);
        }
        // The slow cursor pins all four sealed batches.
        assert_eq!(g.delta_backlog(), 4);
        assert_eq!(g.collect_changes(slow).len(), 4);
        assert_eq!(g.delta_backlog(), 0);

        // Releasing a lagging cursor also unpins the log.
        g.create_node("Tool", [("name", Value::from("t"))]);
        g.seal_changes();
        assert_eq!(g.delta_backlog(), 1);
        g.release_delta_consumer(slow);
        assert_eq!(g.collect_changes(fast).len(), 1);
        assert_eq!(g.delta_backlog(), 0);
        // A released cursor reads nothing, even after new changes.
        g.create_node("Tool", [("name", Value::from("u"))]);
        assert!(g.collect_changes(slow).is_empty());
    }

    /// `collect_sealed_changes` reads only up to the last explicit seal
    /// point, leaving post-seal mutations pending for the next epoch.
    #[test]
    fn sealed_only_collection_stops_at_the_seal_point() {
        let mut g = GraphStore::new();
        let c = g.register_delta_consumer();
        let a = g.create_node("Malware", [("name", Value::from("a"))]);
        g.seal_changes();
        let b = g.create_node("Malware", [("name", Value::from("b"))]);
        let sealed = g.collect_sealed_changes(c);
        assert_eq!(sealed.len(), 1);
        assert_eq!(sealed[0].changes.nodes, vec![a]);
        assert_eq!(g.pending_changes(), 1);
        // The pending tail arrives with the next sealing collection.
        let rest = g.collect_changes(c);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].changes.nodes, vec![b]);
    }

    /// The deprecated alias coexists with registered cursors without
    /// stealing their batches.
    #[test]
    #[allow(deprecated)]
    fn legacy_drain_does_not_starve_registered_cursors() {
        let mut g = GraphStore::new();
        let c = g.register_delta_consumer();
        let a = g.create_node("Malware", [("name", Value::from("a"))]);
        assert_eq!(g.drain_changes().nodes, vec![a]);
        // The cursor still sees the change the drain consumed for itself.
        let got = g.collect_changes(c);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].changes.nodes, vec![a]);
    }
}
