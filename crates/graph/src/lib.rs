//! An embedded property-graph database with a Cypher-subset query engine —
//! the storage backend of the security knowledge graph (paper §2.5, replacing
//! Neo4j per the substitution table in DESIGN.md).
//!
//! - [`value`] — the property value model and its ordering/comparison rules.
//! - [`store`] — the graph store: nodes, directed typed edges, label and
//!   `(label, name)` indexes, exact-description `MERGE` semantics, adjacency
//!   queries, JSON persistence.
//! - [`cypher`] — a Cypher subset: `MATCH` patterns with labels, property
//!   maps and typed directed relationships; `WHERE` expressions; `RETURN`
//!   projections with `count(...)`, `ORDER BY`, `SKIP`, `LIMIT`; plus
//!   `CREATE`, `MERGE` and `DETACH DELETE`.
//!
//! The demo query from the paper's §3 runs verbatim:
//!
//! ```
//! use kg_graph::{GraphStore, Value};
//! let mut g = GraphStore::new();
//! g.create_node("Malware", [("name", Value::from("wannacry"))]);
//! let result = g.query("match (n) where n.name = \"wannacry\" return n").unwrap();
//! assert_eq!(result.rows.len(), 1);
//! ```

pub mod cypher;
pub mod snapshot;
pub mod store;
pub mod value;

pub use cypher::{
    gather_project, gather_project_ret, parse, scatter_match, CompiledNodePredicate, CompiledPlan,
    Params, QueryResult, ScatterRow,
};
pub use snapshot::GraphSnapshot;
pub use store::{
    canon_shard, edge_digest, id_shard, node_digest, node_shard, DeltaBatch, DeltaCursor, Edge,
    EdgeId, GraphChanges, GraphStore, Node, NodeId, StoreError, DIGEST_SEED,
};
pub use value::Value;
