//! [`GraphSnapshot`] — the abstract read surface compiled query plans
//! evaluate against.
//!
//! A compiled plan ([`crate::cypher::planner::CompiledPlan`]) is
//! snapshot-independent: it captures *how* to answer a query (scan choice,
//! matchers, projection), while everything graph-shaped is reached through
//! this trait. That lets one plan artifact serve the live [`GraphStore`],
//! the frozen serving epochs (`KgSnapshot`), and the per-shard replicas —
//! and lets snapshots advertise extra frozen structure (an undirected k-hop
//! adjacency table) that plans exploit when present.

use crate::store::{Edge, EdgeId, GraphStore, Node, NodeId};
use crate::value::Value;

/// An immutable view of a property graph, rich enough to drive a compiled
/// query plan: point lookups, adjacency, and the index surface the planner
/// selects scans from.
///
/// Ordering contract: every id-list method yields ids ascending by creation
/// order (ids are dense and never reused), because scatter-gather serving
/// relies on candidate enumeration order being identical on every
/// implementation (the `(anchor, seq)` reassembly invariant).
pub trait GraphSnapshot {
    /// Fetch a live node; `None` for deleted/unknown ids.
    fn node(&self, id: NodeId) -> Option<&Node>;

    /// Fetch a live edge; `None` for deleted/unknown ids.
    fn edge(&self, id: EdgeId) -> Option<&Edge>;

    /// Outgoing edge ids of `id`, creation order. Resolve each through
    /// [`GraphSnapshot::edge`]; implementations may leave tombstoned ids in
    /// the slice.
    fn out_edge_ids(&self, id: NodeId) -> &[EdgeId];

    /// Incoming edge ids of `id`, creation order.
    fn in_edge_ids(&self, id: NodeId) -> &[EdgeId];

    /// Live node ids carrying `label`, creation order.
    fn nodes_with_label(&self, label: &str) -> Vec<NodeId>;

    /// The most recent live node with `(label, name)` — the single-result
    /// name-index fast path (latest writer wins on duplicate names).
    fn node_by_name(&self, label: &str, name: &str) -> Option<NodeId>;

    /// All live node ids, creation order.
    fn all_node_ids(&self) -> Vec<NodeId>;

    /// Live node ids whose `key` property equals `value` exactly, ascending
    /// — `None` when no equality index covers this value kind (the planner
    /// falls back to a filtered scan). Only `Text` values are indexable:
    /// numeric kinds coerce under `eq_cypher`, so an exact-value index
    /// would miss coercion partners.
    fn nodes_with_prop_eq(&self, key: &str, value: &Value) -> Option<Vec<NodeId>>;

    /// The frozen undirected deduplicated neighbor list of `id`, if this
    /// snapshot carries one — the k-hop table var-length patterns
    /// (`-[*1..k]-`, untyped, undirected) walk without touching per-edge
    /// records. `None` means "not available for this id"; plans fall back
    /// to the edge walk.
    fn khop_adjacency(&self, id: NodeId) -> Option<&[NodeId]>;
}

impl GraphSnapshot for GraphStore {
    fn node(&self, id: NodeId) -> Option<&Node> {
        GraphStore::node(self, id)
    }

    fn edge(&self, id: EdgeId) -> Option<&Edge> {
        GraphStore::edge(self, id)
    }

    fn out_edge_ids(&self, id: NodeId) -> &[EdgeId] {
        GraphStore::out_edge_ids(self, id)
    }

    fn in_edge_ids(&self, id: NodeId) -> &[EdgeId] {
        GraphStore::in_edge_ids(self, id)
    }

    fn nodes_with_label(&self, label: &str) -> Vec<NodeId> {
        GraphStore::nodes_with_label(self, label)
    }

    fn node_by_name(&self, label: &str, name: &str) -> Option<NodeId> {
        GraphStore::node_by_name(self, label, name)
    }

    fn all_node_ids(&self) -> Vec<NodeId> {
        self.all_nodes().map(|n| n.id).collect()
    }

    fn nodes_with_prop_eq(&self, key: &str, value: &Value) -> Option<Vec<NodeId>> {
        GraphStore::nodes_with_prop_eq(self, key, value)
    }

    fn khop_adjacency(&self, _id: NodeId) -> Option<&[NodeId]> {
        // The live store has no frozen adjacency; plans walk edges.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_implements_the_snapshot_surface() {
        let mut g = GraphStore::new();
        let a = g.create_node("Malware", [("name", Value::from("wannacry"))]);
        let b = g.create_node("FileName", [("name", Value::from("tasksche.exe"))]);
        let e = g
            .create_edge(a, "DROP", b, [] as [(&str, Value); 0])
            .unwrap();
        let snap: &dyn GraphSnapshot = &g;
        assert_eq!(snap.all_node_ids(), vec![a, b]);
        assert_eq!(snap.nodes_with_label("Malware"), vec![a]);
        assert_eq!(snap.node_by_name("FileName", "tasksche.exe"), Some(b));
        assert_eq!(snap.out_edge_ids(a), &[e]);
        assert_eq!(snap.in_edge_ids(b), &[e]);
        assert_eq!(
            snap.nodes_with_prop_eq("name", &Value::from("wannacry")),
            Some(vec![a])
        );
        // Non-text values are not indexable.
        assert_eq!(snap.nodes_with_prop_eq("name", &Value::Int(3)), None);
        assert_eq!(snap.khop_adjacency(a), None);
    }

    #[test]
    fn prop_index_tracks_mutations_deletes_and_renames() {
        let mut g = GraphStore::new();
        let a = g.create_node("N", [("tag", Value::from("hot"))]);
        let b = g.create_node("N", [("tag", Value::from("hot"))]);
        let c = g.create_node("N", [("tag", Value::from("cold"))]);
        assert_eq!(
            g.nodes_with_prop_eq("tag", &Value::from("hot")),
            Some(vec![a, b])
        );
        // Rename via set_node_prop migrates entries.
        g.set_node_prop(b, "tag", Value::from("cold")).unwrap();
        assert_eq!(
            g.nodes_with_prop_eq("tag", &Value::from("hot")),
            Some(vec![a])
        );
        assert_eq!(
            g.nodes_with_prop_eq("tag", &Value::from("cold")),
            Some(vec![b, c])
        );
        // Raw node_mut edits (the index-bypassing path) are repaired too.
        g.node_mut(a).unwrap().props.remove("tag");
        assert_eq!(
            g.nodes_with_prop_eq("tag", &Value::from("hot")),
            Some(vec![])
        );
        // Deletes drop their entries.
        g.delete_node(c).unwrap();
        assert_eq!(
            g.nodes_with_prop_eq("tag", &Value::from("cold")),
            Some(vec![b])
        );
        // Non-text property values never enter the index.
        g.set_node_prop(b, "tag", Value::Int(7)).unwrap();
        assert_eq!(
            g.nodes_with_prop_eq("tag", &Value::from("cold")),
            Some(vec![])
        );
        // A serde round-trip resets and reseeds correctly.
        let bytes = serde_json::to_vec(&g).unwrap();
        let mut g2: GraphStore = serde_json::from_slice(&bytes).unwrap();
        g2.rebuild_after_load();
        assert_eq!(
            g2.nodes_with_prop_eq("tag", &Value::from("hot")),
            Some(vec![])
        );
    }
}
