//! Property values.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A property value stored on nodes and edges and produced by queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Text(String),
    List(Vec<Value>),
    /// A node reference (returned by queries that project a whole node).
    Node(crate::store::NodeId),
    /// An edge reference.
    Edge(crate::store::EdgeId),
}

impl Value {
    /// The value as text, if textual.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer, if integral.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view (ints coerce to floats).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Truthiness for WHERE evaluation: `Null` and `false` are falsy.
    pub fn truthy(&self) -> bool {
        !matches!(self, Value::Null | Value::Bool(false))
    }

    /// Cypher-style equality: Null never equals anything.
    pub fn eq_cypher(&self, other: &Value) -> bool {
        if matches!(self, Value::Null) || matches!(other, Value::Null) {
            return false;
        }
        if let (Some(a), Some(b)) = (self.as_float(), other.as_float()) {
            return a == b;
        }
        self == other
    }

    /// Ordering for ORDER BY: Null sorts last; numbers before text; mixed
    /// kinds order by a stable kind rank.
    pub fn cmp_order(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Bool(_) => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Text(_) => 2,
                Value::List(_) => 3,
                Value::Node(_) => 4,
                Value::Edge(_) => 5,
                Value::Null => 6,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (a, b) if rank(a) != rank(b) => rank(a).cmp(&rank(b)),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Node(a), Value::Node(b)) => a.cmp(b),
            (Value::Edge(a), Value::Edge(b)) => a.cmp(b),
            (Value::List(a), Value::List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let o = x.cmp_order(y);
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => a
                .as_float()
                .partial_cmp(&b.as_float())
                .unwrap_or(Ordering::Equal),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}

impl From<kg_ontology::AttributeValue> for Value {
    fn from(v: kg_ontology::AttributeValue) -> Self {
        use kg_ontology::AttributeValue as A;
        match v {
            A::Text(s) => Value::Text(s),
            A::Integer(i) => Value::Int(i),
            A::Float(f) => Value::Float(f),
            A::Bool(b) => Value::Bool(b),
            A::List(xs) => Value::List(xs.into_iter().map(Value::Text).collect()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => f.write_str(s),
            Value::List(xs) => {
                f.write_str("[")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{x}")?;
                }
                f.write_str("]")
            }
            Value::Node(id) => write!(f, "(#{})", id.0),
            Value::Edge(id) => write!(f, "[#{}]", id.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cypher_equality() {
        assert!(Value::Int(3).eq_cypher(&Value::Float(3.0)));
        assert!(Value::from("x").eq_cypher(&Value::from("x")));
        assert!(!Value::Null.eq_cypher(&Value::Null));
        assert!(!Value::from("3").eq_cypher(&Value::Int(3)));
    }

    #[test]
    fn ordering_nulls_last() {
        let mut vs = [Value::Null, Value::from("a"), Value::Int(2), Value::Int(1)];
        vs.sort_by(|a, b| a.cmp_order(b));
        assert_eq!(vs.last(), Some(&Value::Null));
        assert_eq!(vs[0], Value::Int(1));
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(Value::Bool(true).truthy());
        assert!(Value::from("").truthy());
    }

    #[test]
    fn display() {
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::from("a")]).to_string(),
            "[1, a]"
        );
    }
}
