//! Experiment E5 — ontology coverage (paper §2.3, Figure 2).
//!
//! Claim to reproduce: "Compared to other cyber ontologies [STIX, UCO], our
//! ontology targets a larger set."
//!
//! Run: `cargo run -p kg-bench --bin exp_ontology`

use kg_bench::Table;
use kg_ontology::{baseline, EntityKind, Ontology};

fn main() {
    println!("E5: ontology coverage vs embedded baselines (Figure 2)");
    println!();
    let mut table = Table::new(&["ontology", "entity types", "relation types"]);
    for row in baseline::coverage_table() {
        table.row(vec![
            row.ontology.to_owned(),
            row.entity_types.to_string(),
            row.relation_types.to_string(),
        ]);
    }
    table.print();
    println!();

    let ont = Ontology::standard();
    println!("SecurityKG ontology detail:");
    println!(
        "  entity kinds:   {} ({} IOC kinds, {} concept kinds, {} report kinds)",
        ont.entity_kind_count(),
        EntityKind::IOCS.len(),
        EntityKind::CONCEPTS.len(),
        EntityKind::REPORTS.len()
    );
    println!("  relation kinds: {}", ont.relation_kind_count());
    println!(
        "  legal (subject, relation, object) triplets: {}",
        ont.triplet_count()
    );
    println!();
    println!(
        "example rule: <Malware, DROP, FileName> allowed = {}",
        ont.allows(
            EntityKind::Malware,
            kg_ontology::RelationKind::Drop,
            EntityKind::FileName
        )
    );
}
