//! Experiment E6 — storage-stage merging and knowledge fusion (paper §2.5).
//!
//! Claims to reproduce:
//! 1. Storage merges nodes "with exactly the same description text" — so a
//!    graph built from N reports has far fewer entity nodes than mentions.
//! 2. The separate fusion stage merges aliased nodes ("same malware
//!    represented in different naming conventions by different CTI
//!    vendors"), migrating edges, without early information loss.
//!
//! The world seeds alias groups (wannacry/wcry/wannacrypt, cozyduke/apt29,
//! ...), and each source consistently uses its own alias, so the unfused
//! graph provably contains duplicates. Fusion quality is measured as pair
//! precision/recall against the gold alias groups.
//!
//! Run: `cargo run -p kg-bench --bin exp_fusion --release`

use kg_bench::{standard_web, Table, FOREVER};
use kg_crawler::{crawl_all, CrawlState, CrawlerConfig};
use kg_extract::RegexNerBaseline;
use kg_fusion::{fuse, similarity, FusionConfig};
use kg_pipeline::{
    run_pipelined, GraphConnector, IocOnlyExtractor, ParserRegistry, PipelineConfig,
};
use std::collections::HashSet;
use std::sync::Arc;

fn main() {
    let web = standard_web(40, 0xE6);
    let mut state = CrawlState::new();
    let (reports, _) = crawl_all(&web, &mut state, &CrawlerConfig::default(), FOREVER);
    let curated = web.world().curated_lists(1.0, 1);
    let extractor = IocOnlyExtractor {
        baseline: Arc::new(RegexNerBaseline::new(vec![
            (kg_ontology::EntityKind::Malware, curated.malware),
            (kg_ontology::EntityKind::ThreatActor, curated.actors),
            (kg_ontology::EntityKind::Technique, curated.techniques),
            (kg_ontology::EntityKind::Tool, curated.tools),
            (kg_ontology::EntityKind::Software, curated.software),
        ])),
    };
    let out = run_pipelined(
        reports,
        &ParserRegistry::new(),
        &extractor,
        GraphConnector::new(),
        &PipelineConfig::default(),
    );
    let mut graph = out.connector.graph;
    println!("E6: exact-merge storage + knowledge fusion");
    println!();
    println!(
        "after storage stage (exact-description merge only): {} nodes, {} edges, {} reports",
        graph.node_count(),
        graph.edge_count(),
        out.metrics.connected
    );
    let before_label_hist = graph.label_histogram();
    println!(
        "  Malware nodes: {}   ThreatActor nodes: {}",
        before_label_hist.get("Malware").copied().unwrap_or(0),
        before_label_hist.get("ThreatActor").copied().unwrap_or(0)
    );
    println!();

    // Gold alias pairs present in the graph.
    let gold_pairs = gold_alias_pairs(&web, &graph);

    let mut table = Table::new(&[
        "fusion configuration",
        "clusters",
        "nodes removed",
        "edges migrated",
        "pair precision",
        "pair recall",
    ]);
    for (name, config) in [
        (
            "similarity + corroboration (default)",
            FusionConfig::default(),
        ),
        (
            "similarity WITHOUT corroboration",
            FusionConfig {
                require_shared_neighbor: false,
                ..FusionConfig::default()
            },
        ),
        (
            "similarity + corroboration + alias table",
            FusionConfig {
                alias_groups: alias_table(&web),
                ..FusionConfig::default()
            },
        ),
        (
            "aggressive threshold 0.75, no corroboration",
            FusionConfig {
                threshold: 0.75,
                require_shared_neighbor: false,
                ..FusionConfig::default()
            },
        ),
    ] {
        let mut g = graph.clone();
        let report = fuse(&mut g, &config);
        let predicted = predicted_pairs(&report);
        let tp = predicted.intersection(&gold_pairs).count();
        let precision = if predicted.is_empty() {
            1.0
        } else {
            tp as f64 / predicted.len() as f64
        };
        let recall = if gold_pairs.is_empty() {
            1.0
        } else {
            tp as f64 / gold_pairs.len() as f64
        };
        table.row(vec![
            name.to_owned(),
            report.clusters_merged.to_string(),
            report.nodes_removed.to_string(),
            report.edges_migrated.to_string(),
            format!("{precision:.3}"),
            format!("{recall:.3}"),
        ]);
        if name.contains("alias table") {
            graph = g; // keep the recommended configuration's result
        }
    }
    table.print();
    println!();
    println!(
        "after fusion: {} nodes, {} edges (gold alias pairs in graph: {})",
        graph.node_count(),
        graph.edge_count(),
        gold_pairs.len()
    );
    println!();
    println!(
        "paper claim (qualitative): exact-text merge at storage; a separate fusion \
         stage unifies naming-convention duplicates by migrating relation edges."
    );
}

/// Build the analyst alias table from the world's seed alias groups.
fn alias_table(web: &kg_corpus::SimulatedWeb) -> Vec<Vec<String>> {
    let mut groups = Vec::new();
    for m in &web.world().malware {
        if m.aliases.len() > 1 {
            groups.push(m.aliases.clone());
        }
    }
    for a in &web.world().actors {
        if a.aliases.len() > 1 {
            groups.push(a.aliases.clone());
        }
    }
    groups
}

/// Gold alias pairs: normalised name pairs from the same world alias group,
/// both present in the graph under the same label.
fn gold_alias_pairs(
    web: &kg_corpus::SimulatedWeb,
    graph: &kg_graph::GraphStore,
) -> HashSet<(String, String)> {
    let mut pairs = HashSet::new();
    let mut add_group = |label: &str, aliases: &[String]| {
        let present: Vec<String> = aliases
            .iter()
            .filter(|a| graph.node_by_name(label, &a.to_lowercase()).is_some())
            .map(|a| similarity::normalize(a))
            .collect();
        for i in 0..present.len() {
            for j in i + 1..present.len() {
                let (a, b) = (present[i].clone(), present[j].clone());
                pairs.insert(if a < b { (a, b) } else { (b, a) });
            }
        }
    };
    for m in &web.world().malware {
        add_group("Malware", &m.aliases);
    }
    for a in &web.world().actors {
        add_group("ThreatActor", &a.aliases);
    }
    pairs
}

/// Normalised pairs a fusion report merged.
fn predicted_pairs(report: &kg_fusion::FusionReport) -> HashSet<(String, String)> {
    let mut pairs = HashSet::new();
    for (kept, absorbed) in &report.merges {
        let mut names: Vec<String> = std::iter::once(kept)
            .chain(absorbed)
            .map(|n| similarity::normalize(n))
            .collect();
        names.sort();
        names.dedup();
        for i in 0..names.len() {
            for j in i + 1..names.len() {
                pairs.insert((names[i].clone(), names[j].clone()));
            }
        }
    }
    pairs
}
