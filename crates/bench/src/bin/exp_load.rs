//! Experiment E16 — open-loop load on the sharded scatter-gather serving
//! layer (paper §2.6: the serving split under analyst load, scaled out).
//!
//! Unlike E12's closed loop (each reader waits for its own response, so the
//! offered rate collapses to match capacity and tail latency hides), this
//! harness is **open-loop**: request `i` is *scheduled* at `i/qps` seconds
//! after the start regardless of how the previous requests fared, and
//! latency is measured from the scheduled arrival — so queueing delay under
//! saturation shows up in the tail instead of silently throttling the load.
//!
//! The sweep doubles the offered rate until the achieved rate falls below
//! 90% of offered; the **knee** is the last offered rate the server kept up
//! with. p50/p99/p999 are reported per query class (search / cypher /
//! expand) at every rate, for 1 shard vs 4 shards. Machine-readable results
//! land in `BENCH_e16.json`.
//!
//! Run:   `cargo run -p kg-bench --bin exp_load --release`
//! Smoke: `cargo run -p kg-bench --bin exp_load --release -- --smoke`
//! (fixed low rate, 2 shards, and every response is asserted to merge to
//! exactly the unsharded snapshot's answer).

use kg_bench::Table;
use kg_corpus::WorldConfig;
use kg_serve::{percentile, KgSnapshot, Query, ShardSet, ShardedServe};
use securitykg::{SecurityKg, SystemConfig, TrainingConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Query classes reported separately.
const CLASSES: [&str; 3] = ["search", "cypher", "expand"];
/// Open-loop worker threads (bounds concurrency, not the offered rate).
const WORKERS: usize = 8;
/// Offered-rate sweep: start, growth factor, ceiling.
const SWEEP_START: f64 = 500.0;
const SWEEP_CEILING: f64 = 128_000.0;
/// A cell aims for ~1 s of offered load, clamped to keep cells bounded.
const MIN_REQUESTS: usize = 300;
const MAX_REQUESTS: usize = 24_000;
/// The server "keeps up" while achieved ≥ this fraction of offered.
const KEEPUP: f64 = 0.9;

fn build_kg(tiny: bool) -> SecurityKg {
    let config = if tiny {
        SystemConfig {
            world: WorldConfig::tiny(0xE16),
            articles_per_source: 6,
            training: TrainingConfig {
                articles: 40,
                ..TrainingConfig::default()
            },
            ..SystemConfig::default()
        }
    } else {
        SystemConfig {
            world: WorldConfig {
                malware_count: 30,
                actor_count: 18,
                cve_count: 40,
                campaign_count: 12,
                seed: 0xE16,
            },
            articles_per_source: 30,
            training: TrainingConfig {
                articles: 60,
                ..TrainingConfig::default()
            },
            ..SystemConfig::default()
        }
    };
    let mut kg = SecurityKg::bootstrap_without_ner(&config);
    kg.crawl_and_ingest();
    kg
}

/// The analyst workload: `(class, query)` pairs cycled in a fixed order, so
/// every offered rate sees the same class mix.
fn query_pool(kg: &SecurityKg) -> Vec<(usize, Query)> {
    let mut names = Vec::new();
    for label in ["Malware", "ThreatActor", "Campaign"] {
        for id in kg.graph().nodes_with_label(label).into_iter().take(6) {
            if let Some(name) = kg.graph().node(id).and_then(|n| n.name()) {
                names.push(name.to_owned());
            }
        }
    }
    assert!(!names.is_empty(), "the corpus produced no named entities");
    let mut pool = Vec::new();
    for name in &names {
        pool.push((
            0,
            Query::Search {
                q: name.clone(),
                k: 10,
            },
        ));
    }
    for term in [
        "ransomware encrypts files",
        "phishing campaign government",
        "command and control domain",
        "lateral movement credential",
    ] {
        pool.push((
            0,
            Query::Search {
                q: term.into(),
                k: 10,
            },
        ));
    }
    pool.push((
        1,
        Query::Cypher {
            q: "MATCH (m:Malware) RETURN m.name ORDER BY m.name LIMIT 10".into(),
        },
    ));
    pool.push((
        1,
        Query::Cypher {
            q: "MATCH (v:CtiVendor)-[:PUBLISHES]->(r) RETURN count(*)".into(),
        },
    ));
    for name in names.iter().take(4) {
        pool.push((
            1,
            Query::Cypher {
                q: format!("MATCH (n) WHERE n.name = '{name}' RETURN n"),
            },
        ));
    }
    for name in names.iter().take(8) {
        pool.push((
            2,
            Query::Expand {
                name: name.clone(),
                hops: 2,
                cap: 50,
            },
        ));
    }
    pool
}

/// Partition the KB into a fresh `shards`-cell scatter-gather server.
fn make_sharded(kg: &SecurityKg, shards: usize) -> ShardedServe {
    let mut graph = kg.graph().clone();
    let mut set = ShardSet::new(&mut graph, kg.search_index(), shards);
    ShardedServe::new(set.freeze_all(&mut graph, kg.search_index()))
}

struct CellResult {
    offered: f64,
    achieved: f64,
    /// Latency from *scheduled arrival* to completion, µs, per class.
    per_class: [Vec<u64>; 3],
}

/// Fire `requests` queries open-loop at `qps`: request `i` is scheduled at
/// `i/qps` and its latency runs from that schedule, so a server that cannot
/// keep up accumulates queueing delay instead of slowing the generator.
/// With `oracle`, every response's merged answer is asserted byte-identical
/// to the unsharded snapshot's (the smoke-mode differential check).
fn run_open_loop(
    serve: &ShardedServe,
    pool: &[(usize, Query)],
    qps: f64,
    requests: usize,
    oracle: Option<&KgSnapshot>,
) -> CellResult {
    let next = AtomicUsize::new(0);
    let start = Instant::now();
    let collected: Vec<Vec<(usize, u64)>> = std::thread::scope(|scope| {
        (0..WORKERS)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= requests {
                            break;
                        }
                        let sched = Duration::from_secs_f64(i as f64 / qps);
                        loop {
                            let now = start.elapsed();
                            if now >= sched {
                                break;
                            }
                            let gap = sched - now;
                            if gap > Duration::from_micros(400) {
                                std::thread::sleep(gap - Duration::from_micros(200));
                            } else {
                                std::hint::spin_loop();
                            }
                        }
                        let (class, query) = &pool[i % pool.len()];
                        let response = serve.execute(query);
                        let done = start.elapsed();
                        if let Some(oracle) = oracle {
                            assert_eq!(
                                response.answer,
                                oracle.answer(query),
                                "sharded merge diverged from the unsharded oracle on {query:?}"
                            );
                        }
                        std::hint::black_box(&response);
                        out.push((*class, done.saturating_sub(sched).as_micros() as u64));
                    }
                    out
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("load worker"))
            .collect()
    });
    let wall = start.elapsed();
    let mut per_class: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (class, us) in collected.into_iter().flatten() {
        per_class[class].push(us);
    }
    CellResult {
        offered: qps,
        achieved: requests as f64 / wall.as_secs_f64(),
        per_class,
    }
}

fn smoke() {
    let kg = build_kg(true);
    let pool = query_pool(&kg);
    let oracle = KgSnapshot::build(kg.graph().clone(), kg.search_index().clone());
    let serve = make_sharded(&kg, 2);
    let cell = run_open_loop(&serve, &pool, 200.0, 120, Some(&oracle));
    let fired: usize = cell.per_class.iter().map(Vec::len).sum();
    assert_eq!(fired, 120, "every scheduled request must fire");
    println!(
        "E16 smoke: {} open-loop requests at {} offered qps over 2 shards, every \
         response merged identically to the unsharded snapshot — ok",
        fired, cell.offered as u64,
    );
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    println!("E16: open-loop load on sharded scatter-gather serving — building knowledge base...");
    let kg = build_kg(false);
    let pool = query_pool(&kg);
    println!(
        "  {} nodes, {} edges; workload: {} queries ({} search, {} cypher, {} expand), {} open-loop workers",
        kg.graph().node_count(),
        kg.graph().edge_count(),
        pool.len(),
        pool.iter().filter(|(c, _)| *c == 0).count(),
        pool.iter().filter(|(c, _)| *c == 1).count(),
        pool.iter().filter(|(c, _)| *c == 2).count(),
        WORKERS,
    );
    println!();

    let mut table = Table::new(&[
        "shards",
        "offered qps",
        "achieved",
        "ach/off",
        "class",
        "n",
        "p50 µs",
        "p99 µs",
        "p999 µs",
    ]);
    let mut json_rows: Vec<serde_json::Value> = Vec::new();
    let mut knees: Vec<(usize, f64)> = Vec::new();
    for shards in [1usize, 4] {
        let serve = make_sharded(&kg, shards);
        let mut offered = SWEEP_START;
        let mut knee = 0.0f64;
        loop {
            let requests = (offered as usize).clamp(MIN_REQUESTS, MAX_REQUESTS);
            let mut cell = run_open_loop(&serve, &pool, offered, requests, None);
            let ratio = cell.achieved / cell.offered;
            if ratio >= KEEPUP {
                knee = offered;
            }
            let mut classes = serde_json::Map::new();
            for (class, label) in CLASSES.iter().enumerate() {
                let lat = &mut cell.per_class[class];
                table.row(vec![
                    shards.to_string(),
                    format!("{:.0}", cell.offered),
                    format!("{:.0}", cell.achieved),
                    format!("{ratio:.2}"),
                    (*label).into(),
                    lat.len().to_string(),
                    percentile(lat, 0.50).to_string(),
                    percentile(lat, 0.99).to_string(),
                    percentile(lat, 0.999).to_string(),
                ]);
                classes.insert(
                    (*label).into(),
                    serde_json::json!({
                        "n": lat.len(),
                        "p50_us": percentile(lat, 0.50),
                        "p99_us": percentile(lat, 0.99),
                        "p999_us": percentile(lat, 0.999),
                    }),
                );
            }
            json_rows.push(serde_json::json!({
                "shards": shards,
                "offered_qps": cell.offered,
                "achieved_qps": cell.achieved,
                "classes": classes,
            }));
            if ratio < KEEPUP || offered >= SWEEP_CEILING {
                break;
            }
            offered *= 2.0;
        }
        knees.push((shards, knee));
    }
    table.print();
    println!();

    let knee_1 = knees.iter().find(|(s, _)| *s == 1).map_or(0.0, |(_, k)| *k);
    let knee_4 = knees.iter().find(|(s, _)| *s == 4).map_or(0.0, |(_, k)| *k);
    let speedup = knee_4 / knee_1.max(1.0);
    println!(
        "saturation knee (last offered rate with achieved ≥ {:.0}% of offered):",
        KEEPUP * 100.0
    );
    println!("  1 shard : {knee_1:.0} qps");
    println!("  4 shards: {knee_4:.0} qps ({speedup:.2}x)");
    println!();
    println!(
        "All shard cells of this process share one machine, so the 4-shard knee \
         measures scatter-gather overhead plus whatever parallelism the cores \
         offer — on a single-core host the fan-out's serial fraction (per-shard \
         dispatch, merge, and stamp assembly on one CPU) bounds the ratio near \
         1x; the per-request cost split is the signal, the knee ratio only \
         scales with physical cores."
    );

    let payload = serde_json::json!({
        "experiment": "E16",
        "workers": WORKERS,
        "keepup_fraction": KEEPUP,
        "rows": json_rows,
        "knee_qps": { "1": knee_1, "4": knee_4, "ratio": speedup },
    });
    std::fs::write(
        "BENCH_e16.json",
        serde_json::to_string_pretty(&payload).expect("results serialise"),
    )
    .expect("write BENCH_e16.json");
    println!();
    println!("wrote BENCH_e16.json");
}
