//! Experiment E1 — crawler throughput (paper §2.2).
//!
//! Claim to reproduce: "a multi-threaded design ..., achieving a throughput
//! of approximately **350+ reports per minute** at a single deployed host."
//!
//! Each fetch carries a simulated service latency (20–200 ms, per source);
//! the crawl accounts that latency in virtual time. With one worker the
//! virtual wall-clock is the sum of latencies; with `n` workers the sources
//! spread across the pool, floored by the slowest single source (the
//! critical path). The reported `reports/virtual-min` is therefore exactly
//! what a wall-clock deployment against servers with those latencies would
//! observe.
//!
//! Run: `cargo run -p kg-bench --bin exp_crawler --release`

use kg_bench::{standard_web, Table, FOREVER};
use kg_crawler::{crawl_all, CrawlState, CrawlerConfig};

fn main() {
    let web = standard_web(60, 0xE1);
    println!("E1: crawler throughput — 42 sources, {} articles", {
        let total: usize = web.sources().iter().map(|s| s.article_count).sum();
        total
    });
    println!();

    let mut table = Table::new(&[
        "threads",
        "new reports",
        "pages fetched",
        "retries",
        "reports/virtual-min",
        "software wall ms",
    ]);
    for threads in [1usize, 2, 4, 8, 16] {
        let mut state = CrawlState::new();
        let config = CrawlerConfig {
            threads,
            ..CrawlerConfig::default()
        };
        let (_, m) = crawl_all(&web, &mut state, &config, FOREVER);
        table.row(vec![
            threads.to_string(),
            m.new_reports.to_string(),
            m.pages_fetched.to_string(),
            m.retries.to_string(),
            format!("{:.0}", m.reports_per_virtual_minute(threads)),
            m.wall_ms.to_string(),
        ]);
    }
    table.print();
    println!();
    println!(
        "paper claim: 350+ reports/min at a single host (multi-threaded). \
         The shape to check: throughput scales with threads and clears 350/min."
    );
}
