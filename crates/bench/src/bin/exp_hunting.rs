//! Extension experiment E9 — knowledge-enhanced threat hunting (the paper's
//! future work, §4: "connect SecurityKG to our system-auditing-based threat
//! protection systems").
//!
//! Detection experiment: build the KG, extract behaviour graphs for every
//! malware, then for each of `N` trials implant one randomly chosen threat's
//! trace into a benign audit log and hunt. Reports rank-1 accuracy (the
//! implanted threat is the top detection), mean rank, and the false-alarm
//! rate on clean logs. Sweeps the fraction of the trace that actually
//! manifests (partial-evidence robustness).
//!
//! Run: `cargo run -p kg-bench --bin exp_hunting --release`

use kg_bench::{standard_web, Table, FOREVER};
use kg_crawler::{crawl_all, CrawlState, CrawlerConfig};
use kg_extract::RegexNerBaseline;
use kg_hunting::{behavior, AuditGenerator, Hunter};
use kg_ontology::EntityKind;
use kg_pipeline::{
    run_pipelined, GraphConnector, IocOnlyExtractor, ParserRegistry, PipelineConfig,
};
use std::sync::Arc;

fn main() {
    // Build the KG with the gazetteer extractor (fast, deterministic).
    let web = standard_web(40, 0xE9);
    let mut state = CrawlState::new();
    let (reports, _) = crawl_all(&web, &mut state, &CrawlerConfig::default(), FOREVER);
    let curated = web.world().curated_lists(1.0, 1);
    let extractor = IocOnlyExtractor {
        baseline: Arc::new(RegexNerBaseline::new(vec![
            (EntityKind::Malware, curated.malware),
            (EntityKind::ThreatActor, curated.actors),
            (EntityKind::Technique, curated.techniques),
            (EntityKind::Tool, curated.tools),
            (EntityKind::Software, curated.software),
        ])),
    };
    let out = run_pipelined(
        reports,
        &ParserRegistry::new(),
        &extractor,
        GraphConnector::new(),
        &PipelineConfig::default(),
    );
    let mut graph = out.connector.graph;
    // Fuse with the alias table so behaviours are canonical.
    let mut alias_groups = Vec::new();
    for m in &web.world().malware {
        if m.aliases.len() > 1 {
            alias_groups.push(m.aliases.clone());
        }
    }
    kg_fusion::fuse(
        &mut graph,
        &kg_fusion::FusionConfig {
            alias_groups,
            ..kg_fusion::FusionConfig::default()
        },
    );

    let behaviors = behavior::behaviors_with_label(&graph, "Malware", 3);
    println!(
        "E9 (extension): threat hunting — {} behaviour graphs (≥3 indicators) from a \
         {}-node KG",
        behaviors.len(),
        graph.node_count()
    );
    println!();

    let trials = 60usize;
    let mut table = Table::new(&[
        "manifested fraction",
        "rank-1 accuracy",
        "mean rank",
        "mean score",
    ]);
    for keep_fraction in [1.0f64, 0.7, 0.5, 0.3] {
        let mut rank1 = 0usize;
        let mut rank_sum = 0usize;
        let mut score_sum = 0.0f64;
        for trial in 0..trials {
            let target = &behaviors[trial % behaviors.len()];
            let steps = target.as_audit_steps();
            let keep = ((steps.len() as f64 * keep_fraction).ceil() as usize).max(1);
            let mut generator = AuditGenerator::new(0xE9_000 + trial as u64);
            let mut log = generator.benign_log(3000, 0);
            generator.implant(&mut log, &steps[..keep.min(steps.len())], "x.exe", "victim");
            let hunter = Hunter::new(behaviors.clone());
            let results = hunter.scan(&log);
            let rank = results
                .iter()
                .position(|r| r.threat_name == target.name)
                .map(|p| p + 1)
                .unwrap_or(behaviors.len());
            if rank == 1 {
                rank1 += 1;
            }
            rank_sum += rank;
            score_sum += results
                .iter()
                .find(|r| r.threat_name == target.name)
                .map(|r| r.score)
                .unwrap_or(0.0);
        }
        table.row(vec![
            format!("{keep_fraction:.1}"),
            format!("{:.2}", rank1 as f64 / trials as f64),
            format!("{:.2}", rank_sum as f64 / trials as f64),
            format!("{:.2}", score_sum / trials as f64),
        ]);
    }
    table.print();
    println!();

    // False alarms on clean logs.
    let hunter = Hunter::new(behaviors);
    let mut alarms = 0usize;
    let clean_trials = 20;
    for t in 0..clean_trials {
        let log = AuditGenerator::new(0xC1EA0 + t).benign_log(3000, 0);
        alarms += hunter.scan(&log).len();
    }
    println!(
        "false alarms: {alarms} detections over {clean_trials} clean 3,000-event logs \
         (noise floor {:.2})",
        hunter.min_score
    );
    println!();
    println!(
        "shape to check: rank-1 accuracy near 1.0 with full traces, degrading gracefully \
         with partial evidence; zero or near-zero false alarms on clean logs."
    );
}
