//! Experiment E3 — extraction quality (paper §2.4).
//!
//! Claims to reproduce:
//! 1. "our extractors are highly accurate (**> 92% F1**)";
//! 2. the CRF "can outperform a naive entity recognition solution that
//!    relies on regex rules, and generalize to entities that are not in the
//!    training set";
//! 3. data programming synthesises useful training labels from curated
//!    lists (ablations: label model vs majority vote vs oracle gold; curated
//!    list coverage; training-set size; feature families).
//!
//! Train/test discipline: the CRF trains on even-indexed articles, all
//! evaluation is on odd-indexed articles (disjoint by construction).
//!
//! Run: `cargo run -p kg-bench --bin exp_extraction --release`

use kg_bench::{standard_web, Table};
use kg_corpus::GoldMention;
use kg_extract::features::FeatureConfig;
use kg_extract::RegexNerBaseline;
use kg_ontology::EntityKind;
use securitykg::{collect_gold, evaluate_ner, train_ner, LabelSource, TrainingConfig};
use std::collections::HashSet;

fn main() {
    let web = standard_web(30, 0xE3);
    let test = collect_gold(&web, 250, |i| i % 2 == 1);
    println!(
        "E3: extraction F1 — test corpus: {} reports, {} gold mentions, {} gold relations",
        test.len(),
        test.iter().map(|g| g.mentions.len()).sum::<usize>(),
        test.iter().map(|g| g.relations.len()).sum::<usize>()
    );
    println!();

    // ---- main comparison: CRF (data programming) vs baselines ------------
    let mut main_table = Table::new(&[
        "system",
        "NER P",
        "NER R",
        "NER F1",
        "macro F1",
        "relation F1",
    ]);

    let default_config = TrainingConfig::default();
    let crf_dp = train_ner(&web, &default_config).into_pipeline();
    let s = evaluate_ner(&crf_dp, &test);
    push_scores(&mut main_table, "CRF + data programming (ours)", &s);

    let crf_mv = train_ner(
        &web,
        &TrainingConfig {
            label_source: LabelSource::MajorityVote,
            ..default_config.clone()
        },
    )
    .into_pipeline();
    let s_mv = evaluate_ner(&crf_mv, &test);
    push_scores(&mut main_table, "CRF + majority vote", &s_mv);

    let crf_gold = train_ner(
        &web,
        &TrainingConfig {
            label_source: LabelSource::Gold,
            ..default_config.clone()
        },
    )
    .into_pipeline();
    let s_gold = evaluate_ner(&crf_gold, &test);
    push_scores(
        &mut main_table,
        "CRF + oracle gold labels (upper bound)",
        &s_gold,
    );

    let curated = web
        .world()
        .curated_lists(default_config.lf_coverage, default_config.seed);
    let gazetteer_baseline = RegexNerBaseline::new(vec![
        (EntityKind::Malware, curated.malware.clone()),
        (EntityKind::ThreatActor, curated.actors.clone()),
        (EntityKind::Technique, curated.techniques.clone()),
        (EntityKind::Tool, curated.tools.clone()),
        (EntityKind::Software, curated.software.clone()),
    ]);
    let s_gaz = evaluate_ner(&gazetteer_baseline, &test);
    push_scores(&mut main_table, "regex + gazetteer baseline", &s_gaz);

    let bare = RegexNerBaseline::new(vec![]);
    let s_bare = evaluate_ner(&bare, &test);
    push_scores(&mut main_table, "regex IOC-only baseline", &s_bare);

    main_table.print();
    println!();

    // ---- generalisation to unseen entities --------------------------------
    let listed: HashSet<String> = curated
        .malware
        .iter()
        .chain(&curated.actors)
        .chain(&curated.techniques)
        .chain(&curated.tools)
        .chain(&curated.software)
        .map(|s| s.to_lowercase())
        .collect();
    let unseen_test: Vec<_> = test
        .iter()
        .cloned()
        .map(|mut g| {
            g.mentions.retain(|m: &GoldMention| {
                concept_kind(m.kind) && !listed.contains(&m.text.to_lowercase())
            });
            g.relations.clear();
            g
        })
        .collect();
    let unseen_gold: usize = unseen_test.iter().map(|g| g.mentions.len()).sum();
    let crf_unseen = recall_on(&crf_dp, &unseen_test);
    let gaz_unseen = recall_on(&gazetteer_baseline, &unseen_test);
    println!("generalisation to entities NOT on the curated lists ({unseen_gold} gold mentions):");
    println!("  CRF recall on unseen entity names:      {crf_unseen:.3}");
    println!("  gazetteer-baseline recall (by design):  {gaz_unseen:.3}");
    println!();

    // ---- ablation: curated-list coverage ----------------------------------
    let mut cov_table = Table::new(&["LF list coverage", "NER F1", "relation F1"]);
    for coverage in [0.3, 0.5, 0.8, 1.0] {
        let p = train_ner(
            &web,
            &TrainingConfig {
                lf_coverage: coverage,
                ..default_config.clone()
            },
        )
        .into_pipeline();
        let s = evaluate_ner(&p, &test);
        cov_table.row(vec![
            format!("{coverage:.1}"),
            format!("{:.3}", s.ner_f1()),
            format!("{:.3}", s.relation_f1()),
        ]);
    }
    println!("ablation: curated-list coverage (data programming input):");
    cov_table.print();
    println!();

    // ---- ablation: training-set size ---------------------------------------
    let mut size_table = Table::new(&["training articles", "NER F1"]);
    for articles in [50, 100, 200, 400] {
        let p = train_ner(
            &web,
            &TrainingConfig {
                articles,
                ..default_config.clone()
            },
        )
        .into_pipeline();
        let s = evaluate_ner(&p, &test);
        size_table.row(vec![articles.to_string(), format!("{:.3}", s.ner_f1())]);
    }
    println!("ablation: programmatically-labelled training-set size:");
    size_table.print();
    println!();

    // ---- ablation: feature families ----------------------------------------
    let mut feat_table = Table::new(&["features", "NER F1"]);
    for (name, features) in [
        ("all (default)", FeatureConfig::default()),
        (
            "- gazetteers",
            FeatureConfig {
                gazetteers: false,
                ..FeatureConfig::default()
            },
        ),
        (
            "- embedding clusters",
            FeatureConfig {
                clusters: false,
                ..FeatureConfig::default()
            },
        ),
        (
            "- context window",
            FeatureConfig {
                context: false,
                ..FeatureConfig::default()
            },
        ),
        (
            "- IOC class (protection signal)",
            FeatureConfig {
                ioc_class: false,
                ..FeatureConfig::default()
            },
        ),
        (
            "- affixes & shape",
            FeatureConfig {
                affixes: false,
                shape: false,
                ..FeatureConfig::default()
            },
        ),
    ] {
        let p = train_ner(
            &web,
            &TrainingConfig {
                features,
                ..default_config.clone()
            },
        )
        .into_pipeline();
        let s = evaluate_ner(&p, &test);
        feat_table.row(vec![name.to_owned(), format!("{:.3}", s.ner_f1())]);
    }
    println!("ablation: CRF feature families:");
    feat_table.print();
    println!();
    println!(
        "paper claims: extractors > 92% F1; CRF beats the regex-rule baseline and \
         generalises to unlisted entities (baseline recall on those is 0 by construction)."
    );
}

fn push_scores(table: &mut Table, name: &str, s: &securitykg::ExtractionScores) {
    table.row(vec![
        name.to_owned(),
        format!("{:.3}", s.ner.overall.precision()),
        format!("{:.3}", s.ner.overall.recall()),
        format!("{:.3}", s.ner_f1()),
        format!("{:.3}", s.ner.macro_f1()),
        format!("{:.3}", s.relation_f1()),
    ]);
}

fn concept_kind(kind: EntityKind) -> bool {
    matches!(
        kind,
        EntityKind::Malware
            | EntityKind::ThreatActor
            | EntityKind::Technique
            | EntityKind::Tool
            | EntityKind::Software
    )
}

fn recall_on(
    system: &dyn securitykg::evalx::ExtractsSentences,
    gold: &[kg_corpus::GoldReport],
) -> f64 {
    let s = evaluate_ner(system, gold);
    s.ner.overall.recall()
}
