//! Extension experiment E10 — threat-intelligence source quality.
//!
//! The paper's related work cites feed-quality measurement (Li et al.,
//! *Reading the Tea Leaves*, USENIX Security 2019). With SecurityKG's
//! provenance structure (vendor → report(ts) → mentioned entity), those
//! metrics are knowledge-graph analytics: per-source volume, breadth,
//! exclusivity (differential contribution), timeliness, and coverage.
//!
//! Run: `cargo run -p kg-bench --bin exp_quality --release`

use kg_bench::{standard_web, Table};
use kg_crawler::{Scheduler, SchedulerConfig};
use kg_extract::RegexNerBaseline;
use kg_ontology::EntityKind;
use kg_pipeline::{
    run_pipelined, GraphConnector, IocOnlyExtractor, ParserRegistry, PipelineConfig,
};
use securitykg::source_quality;
use std::sync::Arc;

fn main() {
    // Crawl with real publication times (scheduler in simulated time), so
    // the latency metric is meaningful.
    let web = standard_web(25, 0xE10);
    let start: u64 = 1_500_000_000_000;
    let mut scheduler = Scheduler::new(
        &web,
        SchedulerConfig {
            interval_ms: 3_600_000,
            ..SchedulerConfig::default()
        },
        start,
    );
    let reports = scheduler.run_until(start + 200 * 24 * 3_600_000);
    println!(
        "E10 (extension): source quality — {} raw pages crawled over 200 simulated days",
        reports.len()
    );

    let curated = web.world().curated_lists(1.0, 1);
    let extractor = IocOnlyExtractor {
        baseline: Arc::new(RegexNerBaseline::new(vec![
            (EntityKind::Malware, curated.malware),
            (EntityKind::ThreatActor, curated.actors),
            (EntityKind::Technique, curated.techniques),
            (EntityKind::Tool, curated.tools),
            (EntityKind::Software, curated.software),
        ])),
    };
    let out = run_pipelined(
        reports,
        &ParserRegistry::new(),
        &extractor,
        GraphConnector::new(),
        &PipelineConfig::default(),
    );
    let graph = out.connector.graph;
    println!(
        "knowledge graph: {} nodes, {} edges from {} reports\n",
        graph.node_count(),
        graph.edge_count(),
        out.metrics.connected
    );

    let quality = source_quality(&graph);
    println!(
        "{} distinct entities; {} mentioned by ≥2 vendors\n",
        quality.total_entities, quality.shared_entities
    );
    let mut table = Table::new(&[
        "vendor",
        "reports",
        "entities",
        "IOCs",
        "exclusive",
        "coverage",
        "scoops",
        "mean lag (h)",
    ]);
    for v in quality.vendors.iter().take(12) {
        table.row(vec![
            v.vendor.clone(),
            v.reports.to_string(),
            v.entities.to_string(),
            v.iocs.to_string(),
            v.exclusive.to_string(),
            format!("{:.2}", v.coverage),
            v.scoops.to_string(),
            format!("{:.1}", v.mean_latency_ms / 3_600_000.0),
        ]);
    }
    table.print();
    println!(
        "  (top 12 of {} vendors by coverage)",
        quality.vendors.len()
    );
    println!();
    println!(
        "shape to check (Tea-Leaves-style): vendors differ widely in volume and \
         coverage; exclusivity is concentrated; latecomers show hour-scale lag behind \
         first reporters."
    );
}
