//! Experiment E15 — segmented binary checkpoints vs JSON full snapshots.
//!
//! The durable ingest driver used to persist recovery state as a monolithic
//! JSON sidecar: every snapshot re-serialized the entire knowledge base —
//! O(graph) per checkpoint, no matter how little changed. The segment store
//! (`kg-persist`) checkpoints incrementally: only arena segments and search
//! shards dirtied since the previous checkpoint are rewritten as
//! checksummed binary frames; everything else is carried forward by
//! manifest reference — O(delta).
//!
//! This bench sweeps graph size × delta size. For every cell it mutates
//! `delta` elements, then persists the state both ways — JSON full snapshot
//! (serialize + write + fsync + rename + dir fsync, the old `write_snapshot`
//! discipline) and an incremental segment-store checkpoint (with the same
//! prune/compact maintenance the durable driver runs) — and then recovers
//! from both, verifying all digests agree. Machine-readable results land in
//! `BENCH_e15.json`.
//!
//! Run: `cargo run -p kg-bench --bin exp_persist --release`
//! Smoke: `cargo run -p kg-bench --bin exp_persist --release -- --smoke`
//! (one small cell, digest-equality check only — the CI cell).

use kg_bench::Table;
use kg_graph::{Edge, GraphStore, Node, NodeId, Value};
use kg_persist::{SegmentStore, StoreOptions};
use kg_search::{Bm25Params, SearchIndex, ShardTerms, PERSIST_SHARDS};
use securitykg::KnowledgeBase;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Deterministic synthetic graph: `n` nodes over a handful of labels, each
/// wired to ~2 earlier nodes (CTI graphs are sparse), and one indexed doc
/// per 8th node so the search index has realistic posting weight.
fn build_graph(n: usize) -> (GraphStore, SearchIndex<NodeId>) {
    const LABELS: [&str; 4] = ["Malware", "ThreatActor", "Tool", "FileName"];
    let mut graph = GraphStore::new();
    let mut search: SearchIndex<NodeId> = SearchIndex::default();
    let mut ids: Vec<NodeId> = Vec::with_capacity(n);
    for i in 0..n {
        let label = LABELS[i % LABELS.len()];
        let id = graph.create_node(
            label,
            [
                ("name", Value::from(format!("{}-{i}", label.to_lowercase()))),
                ("first_seen", Value::from(i as i64)),
            ],
        );
        if i > 0 {
            let a = ids[(i * 7 + 3) % ids.len()];
            graph.merge_edge(a, "RELATED_TO", id).expect("node exists");
            if i % 3 == 0 {
                let b = ids[(i * 13 + 5) % ids.len()];
                let _ = graph.merge_edge(id, "USE", b);
            }
        }
        if i % 8 == 0 {
            search.add(id, &format!("report {i} covering campaign wave {}", i % 17));
        }
        ids.push(id);
    }
    (graph, search)
}

/// Mutate `delta` elements: a mix of new entities (with edges), property
/// updates on existing nodes, and the occasional deletion — the shape of an
/// incremental ingest round.
fn apply_delta(graph: &mut GraphStore, round: usize, delta: usize) {
    let live: Vec<NodeId> = graph.all_nodes().map(|n| n.id).collect();
    for j in 0..delta {
        let salt = round * delta + j;
        match j % 4 {
            0 => {
                let id =
                    graph.create_node("Malware", [("name", Value::from(format!("fresh-{salt}")))]);
                let peer = live[(salt * 11 + 1) % live.len()];
                let _ = graph.merge_edge(peer, "RELATED_TO", id);
            }
            1 | 2 => {
                let id = live[(salt * 17 + 7) % live.len()];
                let _ = graph.set_node_prop(id, "last_seen", Value::from(salt as i64));
            }
            _ => {
                if let Some(id) = graph.node_by_name("Malware", &format!("fresh-{}", salt - 3)) {
                    let _ = graph.delete_node(id);
                }
            }
        }
    }
}

/// The segment counts recovery needs to know which blobs to read back —
/// the bench-local equivalent of the durable driver's checkpoint meta.
#[derive(Serialize, Deserialize)]
struct BenchMeta {
    node_segments: usize,
    edge_segments: usize,
    doc_segments: usize,
    params: Bm25Params,
}

/// The old durability discipline for the JSON baseline: tmp + fsync +
/// rename + parent-dir fsync. (The seed code skipped the fsyncs — one of
/// the bugs this PR fixes — but the baseline should not win by cheating.)
fn write_json_snapshot(path: &Path, bytes: &[u8]) {
    use std::io::Write;
    let tmp = path.with_extension("json.tmp");
    let mut file = std::fs::File::create(&tmp).expect("create snapshot tmp");
    file.write_all(bytes).expect("write snapshot");
    file.sync_data().expect("fsync snapshot");
    std::fs::rename(&tmp, path).expect("rename snapshot");
    let dir = std::fs::File::open(path.parent().expect("parent")).expect("open dir");
    dir.sync_all().expect("fsync dir");
}

/// One incremental segment-store checkpoint: meta always, plus every dirty
/// graph segment — or the full set when the store has no baseline — then
/// the same retention/compaction maintenance the durable driver runs.
///
/// The digest is an input, not recomputed here: the driver computes it once
/// per cycle whichever persistence backend is in play, so neither timed path
/// should carry its O(graph) cost.
fn segment_checkpoint(
    store: &mut SegmentStore,
    seq: u64,
    digest: u64,
    graph: &mut GraphStore,
    search: &mut SearchIndex<NodeId>,
) {
    let full = store.baseline_seq().is_none();
    let meta = BenchMeta {
        node_segments: graph.node_segment_count(),
        edge_segments: graph.edge_segment_count(),
        doc_segments: search.doc_segment_count(),
        params: search.persist_params(),
    };
    let mut blobs: Vec<(String, Vec<u8>)> = Vec::new();
    blobs.push(("meta".to_owned(), serde_json::to_vec(&meta).expect("meta")));
    let node_set: Vec<usize> = if full {
        (0..meta.node_segments).collect()
    } else {
        graph.dirty_node_segments()
    };
    for i in node_set {
        blobs.push((
            format!("n{i}"),
            graph.node_segment_json(i).unwrap().into_bytes(),
        ));
    }
    let edge_set: Vec<usize> = if full {
        (0..meta.edge_segments).collect()
    } else {
        graph.dirty_edge_segments()
    };
    for i in edge_set {
        blobs.push((
            format!("e{i}"),
            graph.edge_segment_json(i).unwrap().into_bytes(),
        ));
    }
    let doc_set: Vec<usize> = if full {
        (0..meta.doc_segments).collect()
    } else {
        search.dirty_doc_segments()
    };
    for i in doc_set {
        blobs.push((
            format!("d{i}"),
            search.doc_segment_json(i).unwrap().into_bytes(),
        ));
    }
    let shard_set: Vec<usize> = if full {
        (0..PERSIST_SHARDS).collect()
    } else {
        search.dirty_persist_shards()
    };
    for s in shard_set {
        blobs.push((format!("s{s}"), search.shard_json(s).into_bytes()));
    }
    store
        .checkpoint(seq, seq, digest, blobs)
        .expect("checkpoint");
    graph.clear_segment_dirty();
    search.clear_persist_dirty();
    store.prune().expect("prune");
    if store.should_compact() {
        store.compact().expect("compact");
    }
}

/// Recover a knowledge base from the segment store, verifying the digest.
fn segment_recover(store: &mut SegmentStore) -> (GraphStore, SearchIndex<NodeId>) {
    store
        .recover_with(|record, blobs| {
            let meta: BenchMeta = serde_json::from_slice(blobs.get("meta").ok_or("no meta")?)
                .map_err(|e| e.to_string())?;
            let get = |k: String| blobs.get(&k).ok_or(format!("missing {k}"));
            let mut node_parts: Vec<Vec<Option<Node>>> = Vec::new();
            for i in 0..meta.node_segments {
                node_parts.push(
                    serde_json::from_slice(get(format!("n{i}"))?).map_err(|e| e.to_string())?,
                );
            }
            let mut edge_parts: Vec<Vec<Option<Edge>>> = Vec::new();
            for i in 0..meta.edge_segments {
                edge_parts.push(
                    serde_json::from_slice(get(format!("e{i}"))?).map_err(|e| e.to_string())?,
                );
            }
            let graph = GraphStore::from_segments(node_parts, edge_parts)?;
            if graph.digest() != record.kg_digest {
                return Err("digest mismatch".to_owned());
            }
            let mut doc_parts: Vec<Vec<(NodeId, u32)>> = Vec::new();
            for i in 0..meta.doc_segments {
                doc_parts.push(
                    serde_json::from_slice(get(format!("d{i}"))?).map_err(|e| e.to_string())?,
                );
            }
            let mut shard_parts: Vec<ShardTerms> = Vec::new();
            for s in 0..PERSIST_SHARDS {
                shard_parts.push(
                    serde_json::from_slice(get(format!("s{s}"))?).map_err(|e| e.to_string())?,
                );
            }
            let search = SearchIndex::from_persist_parts(meta.params, doc_parts, shard_parts)?;
            Ok((graph, search))
        })
        .expect("recover")
        .expect("a checkpoint survives")
}

struct CellResult {
    nodes: usize,
    delta: usize,
    json_ckpt_us: u64,
    seg_ckpt_us: u64,
    json_recover_us: u64,
    seg_recover_us: u64,
    digest_ok: bool,
}

/// Median of a small sample set.
fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kg-e15-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench dir");
    dir
}

/// One sweep cell: seed both persistence paths with the full n-node state,
/// then repeat (mutate `delta` elements, checkpoint both ways, recover both
/// ways) and report median costs.
fn run_cell(n: usize, delta: usize, rounds: usize) -> CellResult {
    let (mut graph, mut search) = build_graph(n);
    let dir = bench_dir(&format!("{n}-{delta}"));
    let json_path = dir.join("snapshot.json");
    let mut store = SegmentStore::open(&dir, StoreOptions::default()).expect("open store");

    // Seed checkpoint: both sides pay the full O(graph) cost once, outside
    // the measured rounds — steady state is what the sweep compares.
    let seed_digest = graph.digest();
    segment_checkpoint(&mut store, 0, seed_digest, &mut graph, &mut search);

    let mut json_ckpt = Vec::with_capacity(rounds);
    let mut seg_ckpt = Vec::with_capacity(rounds);
    let mut json_rec = Vec::with_capacity(rounds);
    let mut seg_rec = Vec::with_capacity(rounds);
    let mut digest_ok = true;
    for round in 0..rounds {
        apply_delta(&mut graph, round, delta);
        let live_digest = graph.digest();

        let t = Instant::now();
        let kb = KnowledgeBase {
            graph: graph.clone(),
            search: search.clone(),
        };
        let bytes = kb.to_bytes().expect("serialize kb");
        write_json_snapshot(&json_path, &bytes);
        drop(kb);
        json_ckpt.push(t.elapsed().as_micros() as u64);

        let t = Instant::now();
        segment_checkpoint(
            &mut store,
            round as u64 + 1,
            live_digest,
            &mut graph,
            &mut search,
        );
        seg_ckpt.push(t.elapsed().as_micros() as u64);

        let t = Instant::now();
        let loaded = KnowledgeBase::from_bytes(&std::fs::read(&json_path).expect("read snapshot"))
            .expect("parse snapshot");
        json_rec.push(t.elapsed().as_micros() as u64);

        let t = Instant::now();
        let mut reopened = SegmentStore::open(&dir, StoreOptions::default()).expect("reopen");
        let (rec_graph, rec_search) = segment_recover(&mut reopened);
        seg_rec.push(t.elapsed().as_micros() as u64);

        digest_ok &= loaded.graph.digest() == live_digest
            && rec_graph.digest() == live_digest
            && rec_search.len() == search.len();
    }
    let _ = std::fs::remove_dir_all(&dir);
    CellResult {
        nodes: n,
        delta,
        json_ckpt_us: median(json_ckpt),
        seg_ckpt_us: median(seg_ckpt),
        json_recover_us: median(json_rec),
        seg_recover_us: median(seg_rec),
        digest_ok,
    }
}

fn smoke() {
    let cell = run_cell(500, 8, 3);
    println!(
        "E15 smoke: 500-node graph, delta 8 — JSON checkpoint {} µs, segment checkpoint {} µs, digests {}",
        cell.json_ckpt_us,
        cell.seg_ckpt_us,
        if cell.digest_ok { "identical" } else { "DIVERGED" }
    );
    assert!(
        cell.digest_ok,
        "E15 smoke: recovered digests diverged from the live graph"
    );
    println!("E15 smoke: both persistence paths recover digest-identical state — ok");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    const GRAPH_SIZES: [usize; 3] = [2_000, 8_000, 32_000];
    const DELTAS: [usize; 3] = [1, 16, 256];
    const ROUNDS: usize = 5;

    println!(
        "E15: checkpoint + recovery cost, JSON full snapshot vs incremental binary segments \
         (medians of {ROUNDS} rounds)"
    );
    println!();

    let mut cells = Vec::new();
    for &n in &GRAPH_SIZES {
        for &delta in &DELTAS {
            cells.push(run_cell(n, delta, ROUNDS));
        }
    }

    let mut table = Table::new(&[
        "graph nodes",
        "delta",
        "json ckpt µs",
        "seg ckpt µs",
        "ckpt speedup",
        "json recover µs",
        "seg recover µs",
        "digest ok",
    ]);
    for cell in &cells {
        table.row(vec![
            cell.nodes.to_string(),
            cell.delta.to_string(),
            cell.json_ckpt_us.to_string(),
            cell.seg_ckpt_us.to_string(),
            format!(
                "{:.1}x",
                cell.json_ckpt_us as f64 / cell.seg_ckpt_us.max(1) as f64
            ),
            cell.json_recover_us.to_string(),
            cell.seg_recover_us.to_string(),
            cell.digest_ok.to_string(),
        ]);
    }
    table.print();

    let rows: Vec<serde_json::Value> = cells
        .iter()
        .map(|cell| {
            serde_json::json!({
                "graph_nodes": cell.nodes,
                "delta": cell.delta,
                "json_checkpoint_us": cell.json_ckpt_us,
                "segment_checkpoint_us": cell.seg_ckpt_us,
                "checkpoint_speedup": cell.json_ckpt_us as f64 / cell.seg_ckpt_us.max(1) as f64,
                "json_recover_us": cell.json_recover_us,
                "segment_recover_us": cell.seg_recover_us,
                "digest_ok": cell.digest_ok,
            })
        })
        .collect();
    let payload = serde_json::json!({
        "experiment": "E15",
        "rounds_per_cell": ROUNDS,
        "rows": rows,
    });
    std::fs::write(
        "BENCH_e15.json",
        serde_json::to_string_pretty(&payload).expect("results serialise"),
    )
    .expect("write BENCH_e15.json");
    println!();
    println!("wrote BENCH_e15.json");

    assert!(
        cells.iter().all(|c| c.digest_ok),
        "a recovered digest diverged from the live graph"
    );
    // The headline claim: on the largest graph at the smallest delta the
    // incremental binary checkpoint must be at least 5× cheaper than the
    // JSON full snapshot.
    let headline = cells
        .iter()
        .find(|c| c.nodes == *GRAPH_SIZES.last().unwrap() && c.delta == DELTAS[0])
        .expect("headline cell swept");
    let speedup = headline.json_ckpt_us as f64 / headline.seg_ckpt_us.max(1) as f64;
    println!(
        "headline: {}-node graph, delta {} — segment checkpoint {speedup:.1}x faster than JSON",
        headline.nodes, headline.delta
    );
    assert!(
        speedup >= 5.0,
        "incremental checkpoint not O(delta): only {speedup:.1}x on the largest graph"
    );
    println!(
        "claim: checkpoint cost tracks the delta, not the graph — the durable ingest \
         driver can checkpoint every cycle without stalling on O(graph) serialization."
    );
}
