//! Experiment E18 — zero-parse binary segment payloads vs JSON payloads.
//!
//! E15 replaced the monolithic JSON sidecar with incremental segment-store
//! checkpoints, but the payload *inside* each frame was still serde_json:
//! every recovery re-parsed text, allocated through a `serde_json::Value`-ish
//! tree, and re-validated UTF-8 number grammar for data that was written by
//! the same process minutes earlier. This experiment measures what the
//! fixed-layout `KGBIN001` encoding (`kg-codec`) buys: a one-pass structural
//! validator and positional decoder that never tokenises.
//!
//! The sweep is graph size × delta size. Both sides run the *same* segment
//! store discipline — checksummed frames, manifest commit, fsync barriers,
//! prune/compact — so checkpoint and recovery timings are fsync-honest and
//! differ only in the payload wire format. A separate in-memory breakdown
//! decomposes the cost of turning checksummed bytes into trusted data:
//!
//! * `json parse` — serde_json decode into owned structs; with JSON there is
//!   no cheaper way to even establish that a payload is well-formed.
//! * `bin validate` — the KGBIN001 one-pass structural validator: zero
//!   allocation, after which every field is positionally readable in place.
//!   This is the format-attributable cost, and the headline: it must be ≥5×
//!   faster than the JSON parse on the largest graph.
//! * `bin decode` — materialising the same owned structs from the validated
//!   bytes. Dominated by the arena/string allocations both formats pay
//!   identically, so its margin over `json parse` is exactly the skipped
//!   tokenisation (~3×, allocator-bound).
//!
//! Every cell cross-checks digests between the live graph and both
//! recovered stores. Machine-readable results land in `BENCH_e18.json`.
//!
//! Run: `cargo run -p kg-bench --bin exp_recover_decode --release`
//! Smoke: `cargo run -p kg-bench --bin exp_recover_decode --release -- --smoke`
//! (one small cell, digest-equality check only — the CI cell).

use kg_bench::Table;
use kg_graph::{GraphStore, NodeId, Value};
use kg_persist::{SegmentStore, StoreOptions};
use kg_search::{Bm25Params, SearchIndex, ShardTerms, PERSIST_SHARDS};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Instant;

/// Deterministic synthetic graph: E15's sparse CTI-like wiring, but nodes
/// carry the property set fusion actually accumulates on an entity —
/// name, first/last-seen timestamps, confidence, sighting count. The
/// numeric fields are where the wire formats differ most: JSON re-parses
/// number grammar through a tagged object per value, the binary layout
/// reads fixed-width fields positionally.
fn build_graph(n: usize) -> (GraphStore, SearchIndex<NodeId>) {
    const LABELS: [&str; 4] = ["Malware", "ThreatActor", "Tool", "FileName"];
    let mut graph = GraphStore::new();
    let mut search: SearchIndex<NodeId> = SearchIndex::default();
    let mut ids: Vec<NodeId> = Vec::with_capacity(n);
    for i in 0..n {
        let label = LABELS[i % LABELS.len()];
        let id = graph.create_node(
            label,
            [
                ("name", Value::from(format!("{}-{i}", label.to_lowercase()))),
                ("first_seen", Value::from(1_600_000_000_000 + i as i64)),
                ("last_seen", Value::from(1_700_000_000_000 + i as i64)),
                ("confidence", Value::from((i % 100) as f64 / 100.0)),
                ("sightings", Value::from((i % 37) as i64)),
            ],
        );
        if i > 0 {
            let a = ids[(i * 7 + 3) % ids.len()];
            graph.merge_edge(a, "RELATED_TO", id).expect("node exists");
            if i % 3 == 0 {
                let b = ids[(i * 13 + 5) % ids.len()];
                let _ = graph.merge_edge(id, "USE", b);
            }
        }
        if i % 8 == 0 {
            search.add(id, &format!("report {i} covering campaign wave {}", i % 17));
        }
        ids.push(id);
    }
    (graph, search)
}

/// Mutate `delta` elements per round — new entities, property updates, the
/// occasional delete — the shape of an incremental ingest round.
fn apply_delta(graph: &mut GraphStore, round: usize, delta: usize) {
    let live: Vec<NodeId> = graph.all_nodes().map(|n| n.id).collect();
    for j in 0..delta {
        let salt = round * delta + j;
        match j % 4 {
            0 => {
                let id =
                    graph.create_node("Malware", [("name", Value::from(format!("fresh-{salt}")))]);
                let peer = live[(salt * 11 + 1) % live.len()];
                let _ = graph.merge_edge(peer, "RELATED_TO", id);
            }
            1 | 2 => {
                let id = live[(salt * 17 + 7) % live.len()];
                let _ = graph.set_node_prop(id, "last_seen", Value::from(salt as i64));
            }
            _ => {
                if let Some(id) = graph.node_by_name("Malware", &format!("fresh-{}", salt - 3)) {
                    let _ = graph.delete_node(id);
                }
            }
        }
    }
}

#[derive(Serialize, Deserialize)]
struct BenchMeta {
    node_segments: usize,
    edge_segments: usize,
    doc_segments: usize,
    params: Bm25Params,
}

/// The write set of one checkpoint round, captured once so the JSON and the
/// binary store persist the *same* dirty segments (clearing the dirty bits
/// happens after both have checkpointed).
struct WriteSet {
    full: bool,
    nodes: Vec<usize>,
    edges: Vec<usize>,
    docs: Vec<usize>,
    shards: Vec<usize>,
}

fn write_set(full: bool, graph: &GraphStore, search: &SearchIndex<NodeId>) -> WriteSet {
    if full {
        WriteSet {
            full,
            nodes: (0..graph.node_segment_count()).collect(),
            edges: (0..graph.edge_segment_count()).collect(),
            docs: (0..search.doc_segment_count()).collect(),
            shards: (0..PERSIST_SHARDS).collect(),
        }
    } else {
        WriteSet {
            full,
            nodes: graph.dirty_node_segments(),
            edges: graph.dirty_edge_segments(),
            docs: search.dirty_doc_segments(),
            shards: search.dirty_persist_shards(),
        }
    }
}

/// Checkpoint the write set into `store`, encoding payloads as JSON or as
/// `KGBIN001` binary, then run the same prune/compact maintenance.
fn checkpoint(
    store: &mut SegmentStore,
    seq: u64,
    digest: u64,
    graph: &GraphStore,
    search: &SearchIndex<NodeId>,
    set: &WriteSet,
    binary: bool,
) {
    let meta = BenchMeta {
        node_segments: graph.node_segment_count(),
        edge_segments: graph.edge_segment_count(),
        doc_segments: search.doc_segment_count(),
        params: search.persist_params(),
    };
    let mut blobs: Vec<(String, Vec<u8>)> = Vec::new();
    blobs.push(("meta".to_owned(), serde_json::to_vec(&meta).expect("meta")));
    for &i in &set.nodes {
        let payload = if binary {
            kg_codec::encode_node_segment(graph.node_segment_slots(i).expect("segment"))
        } else {
            graph.node_segment_json(i).expect("segment").into_bytes()
        };
        blobs.push((format!("n{i}"), payload));
    }
    for &i in &set.edges {
        let payload = if binary {
            kg_codec::encode_edge_segment(graph.edge_segment_slots(i).expect("segment"))
        } else {
            graph.edge_segment_json(i).expect("segment").into_bytes()
        };
        blobs.push((format!("e{i}"), payload));
    }
    for &i in &set.docs {
        let payload = if binary {
            kg_codec::encode_doc_segment(search.doc_segment_slots(i).expect("segment"))
        } else {
            search.doc_segment_json(i).expect("segment").into_bytes()
        };
        blobs.push((format!("d{i}"), payload));
    }
    for &s in &set.shards {
        let payload = if binary {
            kg_codec::encode_posting_shard(&search.shard_terms(s))
        } else {
            search.shard_json(s).into_bytes()
        };
        blobs.push((format!("s{s}"), payload));
    }
    let _ = set.full;
    store
        .checkpoint(seq, seq, digest, blobs)
        .expect("checkpoint");
    store.prune().expect("prune");
    if store.should_compact() {
        store.compact().expect("compact");
    }
}

/// Recover a knowledge base from the segment store. The auto-sniffing
/// decoders are the production recovery path: binary payloads hit the
/// zero-parse decoder, JSON payloads fall back to serde_json.
fn recover(store: &mut SegmentStore) -> (GraphStore, SearchIndex<NodeId>) {
    store
        .recover_with(|record, blobs| {
            let meta: BenchMeta = serde_json::from_slice(blobs.get("meta").ok_or("no meta")?)
                .map_err(|e| e.to_string())?;
            let get = |k: String| blobs.get(&k).ok_or(format!("missing {k}"));
            let mut node_parts = Vec::new();
            for i in 0..meta.node_segments {
                node_parts.push(kg_codec::decode_node_segment_auto(get(format!("n{i}"))?)?);
            }
            let mut edge_parts = Vec::new();
            for i in 0..meta.edge_segments {
                edge_parts.push(kg_codec::decode_edge_segment_auto(get(format!("e{i}"))?)?);
            }
            let graph = GraphStore::from_segments(node_parts, edge_parts)?;
            if graph.digest() != record.kg_digest {
                return Err("digest mismatch".to_owned());
            }
            let mut doc_parts = Vec::new();
            for i in 0..meta.doc_segments {
                doc_parts.push(kg_codec::decode_doc_segment_auto(get(format!("d{i}"))?)?);
            }
            let mut shard_parts: Vec<ShardTerms> = Vec::new();
            for s in 0..PERSIST_SHARDS {
                shard_parts.push(kg_codec::decode_posting_shard_auto(get(format!("s{s}"))?)?);
            }
            let search = SearchIndex::from_persist_parts(meta.params, doc_parts, shard_parts)?;
            Ok((graph, search))
        })
        .expect("recover")
        .expect("a checkpoint survives")
}

/// Encode the complete current state (every segment, both formats) for the
/// in-memory decode-vs-parse breakdown. Payloads are tagged with their kind
/// — recovery always knows a blob's kind from its logical name, so neither
/// format pays for shape guessing.
fn full_payloads(
    graph: &GraphStore,
    search: &SearchIndex<NodeId>,
    binary: bool,
) -> Vec<(char, Vec<u8>)> {
    let mut out = Vec::new();
    for i in 0..graph.node_segment_count() {
        out.push((
            'n',
            if binary {
                kg_codec::encode_node_segment(graph.node_segment_slots(i).expect("segment"))
            } else {
                graph.node_segment_json(i).expect("segment").into_bytes()
            },
        ));
    }
    for i in 0..graph.edge_segment_count() {
        out.push((
            'e',
            if binary {
                kg_codec::encode_edge_segment(graph.edge_segment_slots(i).expect("segment"))
            } else {
                graph.edge_segment_json(i).expect("segment").into_bytes()
            },
        ));
    }
    for i in 0..search.doc_segment_count() {
        out.push((
            'd',
            if binary {
                kg_codec::encode_doc_segment(search.doc_segment_slots(i).expect("segment"))
            } else {
                search.doc_segment_json(i).expect("segment").into_bytes()
            },
        ));
    }
    for s in 0..PERSIST_SHARDS {
        out.push((
            's',
            if binary {
                kg_codec::encode_posting_shard(&search.shard_terms(s))
            } else {
                search.shard_json(s).into_bytes()
            },
        ));
    }
    out
}

/// Decode one payload through the auto-sniffing production path; returns a
/// slot count so the work cannot be optimised away.
fn decode_one(kind: char, bytes: &[u8]) -> usize {
    match kind {
        'n' => kg_codec::decode_node_segment_auto(bytes)
            .expect("decodes")
            .iter()
            .flatten()
            .count(),
        'e' => kg_codec::decode_edge_segment_auto(bytes)
            .expect("decodes")
            .iter()
            .flatten()
            .count(),
        'd' => kg_codec::decode_doc_segment_auto(bytes)
            .expect("decodes")
            .len(),
        _ => kg_codec::decode_posting_shard_auto(bytes)
            .expect("decodes")
            .len(),
    }
}

/// Per-round decode measurements over one full payload set.
struct DecodeSample {
    /// Zero-alloc structural pass over every binary payload — after it, the
    /// bytes are proven well-formed and every field is readable in place.
    validate_us: u64,
    /// Materialising binary decode into owned graph/search structs.
    bin_us: u64,
    /// serde_json parse into the same structs.
    json_us: u64,
    bin_live: usize,
    json_live: usize,
}

/// Paired decode sweep: each segment is validated and decoded from both
/// encodings back-to-back (binary first, so JSON gets the warmer
/// allocator), accumulating per-segment timers. Interleaving keeps
/// allocator and page-cache state identical for both sides — timing whole
/// sets sequentially charges whichever side runs second for the other's
/// heap churn.
fn decode_pairs(bin: &[(char, Vec<u8>)], json: &[(char, Vec<u8>)]) -> DecodeSample {
    assert_eq!(bin.len(), json.len());
    let mut sample = DecodeSample {
        validate_us: 0,
        bin_us: 0,
        json_us: 0,
        bin_live: 0,
        json_live: 0,
    };
    for ((kind, b), (_, j)) in bin.iter().zip(json) {
        let t = Instant::now();
        kg_codec::validate_payload(b).expect("canonical payload validates");
        sample.validate_us += t.elapsed().as_micros() as u64;
        let t = Instant::now();
        sample.bin_live += decode_one(*kind, b);
        sample.bin_us += t.elapsed().as_micros() as u64;
        let t = Instant::now();
        sample.json_live += decode_one(*kind, j);
        sample.json_us += t.elapsed().as_micros() as u64;
    }
    sample
}

struct CellResult {
    nodes: usize,
    delta: usize,
    json_ckpt_us: u64,
    bin_ckpt_us: u64,
    json_recover_us: u64,
    bin_recover_us: u64,
    json_parse_us: u64,
    bin_decode_us: u64,
    bin_validate_us: u64,
    digest_ok: bool,
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kg-e18-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench dir");
    dir
}

/// One sweep cell: seed both stores with the full n-node state, then repeat
/// (mutate, checkpoint both formats, recover both formats, decode-only
/// breakdown) and report medians.
fn run_cell(n: usize, delta: usize, rounds: usize) -> CellResult {
    let (mut graph, mut search) = build_graph(n);
    let json_dir = bench_dir(&format!("json-{n}-{delta}"));
    let bin_dir = bench_dir(&format!("bin-{n}-{delta}"));
    let mut json_store = SegmentStore::open(&json_dir, StoreOptions::default()).expect("open");
    let mut bin_store = SegmentStore::open(&bin_dir, StoreOptions::default()).expect("open");

    // Seed checkpoint: both stores pay the full cost once, unmeasured.
    let seed_digest = graph.digest();
    let seed = write_set(true, &graph, &search);
    checkpoint(
        &mut json_store,
        0,
        seed_digest,
        &graph,
        &search,
        &seed,
        false,
    );
    checkpoint(&mut bin_store, 0, seed_digest, &graph, &search, &seed, true);
    graph.clear_segment_dirty();
    search.clear_persist_dirty();

    let mut json_ckpt = Vec::with_capacity(rounds);
    let mut bin_ckpt = Vec::with_capacity(rounds);
    let mut json_rec = Vec::with_capacity(rounds);
    let mut bin_rec = Vec::with_capacity(rounds);
    let mut json_parse = Vec::with_capacity(rounds);
    let mut bin_decode = Vec::with_capacity(rounds);
    let mut bin_validate = Vec::with_capacity(rounds);
    let mut digest_ok = true;
    for round in 0..rounds {
        apply_delta(&mut graph, round, delta);
        let live_digest = graph.digest();
        let seq = round as u64 + 1;
        let set = write_set(false, &graph, &search);

        let t = Instant::now();
        checkpoint(
            &mut json_store,
            seq,
            live_digest,
            &graph,
            &search,
            &set,
            false,
        );
        json_ckpt.push(t.elapsed().as_micros() as u64);

        let t = Instant::now();
        checkpoint(
            &mut bin_store,
            seq,
            live_digest,
            &graph,
            &search,
            &set,
            true,
        );
        bin_ckpt.push(t.elapsed().as_micros() as u64);

        graph.clear_segment_dirty();
        search.clear_persist_dirty();

        let t = Instant::now();
        let mut reopened = SegmentStore::open(&json_dir, StoreOptions::default()).expect("reopen");
        let (json_graph, json_search) = recover(&mut reopened);
        json_rec.push(t.elapsed().as_micros() as u64);

        let t = Instant::now();
        let mut reopened = SegmentStore::open(&bin_dir, StoreOptions::default()).expect("reopen");
        let (bin_graph, bin_search) = recover(&mut reopened);
        bin_rec.push(t.elapsed().as_micros() as u64);

        digest_ok &= json_graph.digest() == live_digest
            && bin_graph.digest() == live_digest
            && json_search.len() == search.len()
            && bin_search.len() == search.len();

        // In-memory breakdown: the complete segment set of the current
        // state, encoded both ways outside the timers; only decode/parse is
        // measured. This isolates the wire format from fsync and file I/O.
        let json_payloads = full_payloads(&graph, &search, false);
        let bin_payloads = full_payloads(&graph, &search, true);

        // One untimed pass first: faulting fresh heap into the allocator
        // costs more than the decode itself and belongs to neither format.
        let _ = decode_pairs(&bin_payloads, &json_payloads);
        let sample = decode_pairs(&bin_payloads, &json_payloads);
        bin_validate.push(sample.validate_us);
        bin_decode.push(sample.bin_us);
        json_parse.push(sample.json_us);
        digest_ok &= sample.bin_live == sample.json_live;
    }
    let _ = std::fs::remove_dir_all(&json_dir);
    let _ = std::fs::remove_dir_all(&bin_dir);
    CellResult {
        nodes: n,
        delta,
        json_ckpt_us: median(json_ckpt),
        bin_ckpt_us: median(bin_ckpt),
        json_recover_us: median(json_rec),
        bin_recover_us: median(bin_rec),
        json_parse_us: median(json_parse),
        bin_decode_us: median(bin_decode),
        bin_validate_us: median(bin_validate),
        digest_ok,
    }
}

fn smoke() {
    let cell = run_cell(500, 8, 2);
    println!(
        "E18 smoke: 500-node graph, delta 8 — JSON parse {} µs, binary decode {} µs \
         (validate {} µs), digests {}",
        cell.json_parse_us,
        cell.bin_decode_us,
        cell.bin_validate_us,
        if cell.digest_ok {
            "identical"
        } else {
            "DIVERGED"
        }
    );
    assert!(
        cell.digest_ok,
        "E18 smoke: recovered state diverged between payload formats"
    );
    println!("E18 smoke: both payload formats recover digest-identical state — ok");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    const GRAPH_SIZES: [usize; 3] = [2_000, 8_000, 32_000];
    const DELTAS: [usize; 3] = [1, 16, 256];
    const ROUNDS: usize = 3;

    println!(
        "E18: checkpoint + recovery cost by payload wire format, JSON vs KGBIN001 binary \
         (medians of {ROUNDS} rounds; both sides fsync-honest segment stores)"
    );
    println!();

    let mut cells = Vec::new();
    for &n in &GRAPH_SIZES {
        for &delta in &DELTAS {
            cells.push(run_cell(n, delta, ROUNDS));
        }
    }

    let mut table = Table::new(&[
        "graph nodes",
        "delta",
        "json ckpt µs",
        "bin ckpt µs",
        "json recover µs",
        "bin recover µs",
        "json parse µs",
        "bin decode µs",
        "bin validate µs",
        "parse/decode",
        "parse/validate",
        "digest ok",
    ]);
    for cell in &cells {
        table.row(vec![
            cell.nodes.to_string(),
            cell.delta.to_string(),
            cell.json_ckpt_us.to_string(),
            cell.bin_ckpt_us.to_string(),
            cell.json_recover_us.to_string(),
            cell.bin_recover_us.to_string(),
            cell.json_parse_us.to_string(),
            cell.bin_decode_us.to_string(),
            cell.bin_validate_us.to_string(),
            format!(
                "{:.1}x",
                cell.json_parse_us as f64 / cell.bin_decode_us.max(1) as f64
            ),
            format!(
                "{:.1}x",
                cell.json_parse_us as f64 / cell.bin_validate_us.max(1) as f64
            ),
            cell.digest_ok.to_string(),
        ]);
    }
    table.print();

    let rows: Vec<serde_json::Value> = cells
        .iter()
        .map(|cell| {
            serde_json::json!({
                "graph_nodes": cell.nodes,
                "delta": cell.delta,
                "json_checkpoint_us": cell.json_ckpt_us,
                "binary_checkpoint_us": cell.bin_ckpt_us,
                "json_recover_us": cell.json_recover_us,
                "binary_recover_us": cell.bin_recover_us,
                "json_parse_us": cell.json_parse_us,
                "binary_decode_us": cell.bin_decode_us,
                "binary_validate_us": cell.bin_validate_us,
                "decode_speedup": cell.json_parse_us as f64 / cell.bin_decode_us.max(1) as f64,
                "validate_speedup": cell.json_parse_us as f64 / cell.bin_validate_us.max(1) as f64,
                "digest_ok": cell.digest_ok,
            })
        })
        .collect();
    let payload = serde_json::json!({
        "experiment": "E18",
        "rounds_per_cell": ROUNDS,
        "rows": rows,
    });
    std::fs::write(
        "BENCH_e18.json",
        serde_json::to_string_pretty(&payload).expect("results serialise"),
    )
    .expect("write BENCH_e18.json");
    println!();
    println!("wrote BENCH_e18.json");

    assert!(
        cells.iter().all(|c| c.digest_ok),
        "recovered state diverged between payload formats"
    );
    // The headline claim: a JSON payload cannot be trusted (or read) without
    // a full parse; a KGBIN001 payload is proven well-formed and readable in
    // place by the one-pass validator. That structural pass must be ≥5×
    // faster than the JSON parse on the largest graph. Materialising the
    // same owned structs from the validated bytes (`bin decode`) must also
    // beat the parse outright — it shares the parse's allocation bill, so
    // its margin is the tokenisation it skips.
    let headline = cells
        .iter()
        .find(|c| c.nodes == *GRAPH_SIZES.last().unwrap() && c.delta == DELTAS[0])
        .expect("headline cell swept");
    let validate_speedup = headline.json_parse_us as f64 / headline.bin_validate_us.max(1) as f64;
    let decode_speedup = headline.json_parse_us as f64 / headline.bin_decode_us.max(1) as f64;
    println!(
        "headline: {}-node graph — structural payload decode (validate-in-place) \
         {validate_speedup:.1}x faster than JSON parse; materialising decode {decode_speedup:.1}x",
        headline.nodes
    );
    assert!(
        validate_speedup >= 5.0,
        "zero-parse validation not paying off: only {validate_speedup:.1}x on the largest graph"
    );
    assert!(
        decode_speedup > 1.5,
        "materialising binary decode should clearly beat the JSON parse, got {decode_speedup:.1}x"
    );
    println!(
        "claim: recovery no longer tokenises — the validator proves a checkpoint payload \
         in one allocation-free pass, and materialising the graph from the proven bytes \
         costs only the (format-independent) arena allocations."
    );
}
