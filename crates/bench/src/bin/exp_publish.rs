//! Experiment E13 — O(delta) snapshot publication.
//!
//! The serving layer publishes immutable epochs; the question is what one
//! publish costs as the graph grows. The full rebuild (`KgSnapshot::build`)
//! re-hashes every element and re-walks every adjacency list — O(graph) — so
//! its cost scales with everything ever ingested. The incremental path
//! (`EpochBuilder::freeze`) patches the carried-forward digest and adjacency
//! with just the touched elements and clones by bumping `Arc` refcounts — so
//! its cost should scale with the *delta*, not the graph.
//!
//! This bench sweeps graph size × delta size. For every cell it mutates
//! `delta` elements of an N-node graph, freezes the epoch both ways,
//! verifies the two snapshots are digest-identical, and reports both costs
//! plus the speedup. Machine-readable results land in `BENCH_e13.json`.
//!
//! Run: `cargo run -p kg-bench --bin exp_publish --release`
//! Smoke: `cargo run -p kg-bench --bin exp_publish --release -- --smoke`
//! (one small cell, equivalence check only — the CI cell).

use kg_bench::Table;
use kg_graph::{GraphStore, NodeId, Value};
use kg_search::SearchIndex;
use kg_serve::{EpochBuilder, KgSnapshot};
use std::time::Instant;

/// Deterministic synthetic graph: `n` nodes over a handful of labels, each
/// wired to ~2 earlier nodes (CTI graphs are sparse), and one indexed doc
/// per 8th node so the search index has realistic posting weight.
fn build_graph(n: usize) -> (GraphStore, SearchIndex<NodeId>) {
    const LABELS: [&str; 4] = ["Malware", "ThreatActor", "Tool", "FileName"];
    let mut graph = GraphStore::new();
    let mut search: SearchIndex<NodeId> = SearchIndex::default();
    let mut ids: Vec<NodeId> = Vec::with_capacity(n);
    for i in 0..n {
        let label = LABELS[i % LABELS.len()];
        let id = graph.create_node(
            label,
            [
                ("name", Value::from(format!("{}-{i}", label.to_lowercase()))),
                ("first_seen", Value::from(i as i64)),
            ],
        );
        if i > 0 {
            let a = ids[(i * 7 + 3) % ids.len()];
            graph.merge_edge(a, "RELATED_TO", id).expect("node exists");
            if i % 3 == 0 {
                let b = ids[(i * 13 + 5) % ids.len()];
                let _ = graph.merge_edge(id, "USE", b);
            }
        }
        if i % 8 == 0 {
            search.add(id, &format!("report {i} covering campaign wave {}", i % 17));
        }
        ids.push(id);
    }
    (graph, search)
}

/// Mutate `delta` elements: a mix of new entities (with edges), property
/// updates on existing nodes, and the occasional deletion — the shape of an
/// incremental ingest round.
fn apply_delta(graph: &mut GraphStore, round: usize, delta: usize) {
    let live: Vec<NodeId> = graph.all_nodes().map(|n| n.id).collect();
    for j in 0..delta {
        let salt = round * delta + j;
        match j % 4 {
            0 => {
                let id =
                    graph.create_node("Malware", [("name", Value::from(format!("fresh-{salt}")))]);
                let peer = live[(salt * 11 + 1) % live.len()];
                let _ = graph.merge_edge(peer, "RELATED_TO", id);
            }
            1 | 2 => {
                let id = live[(salt * 17 + 7) % live.len()];
                let _ = graph.set_node_prop(id, "last_seen", Value::from(salt as i64));
            }
            _ => {
                // Delete one of this round's own fresh nodes, if any —
                // keeps the graph size stable-ish and exercises removal.
                if let Some(id) = graph.node_by_name("Malware", &format!("fresh-{}", salt - 3)) {
                    let _ = graph.delete_node(id);
                }
            }
        }
    }
}

struct CellResult {
    nodes: usize,
    delta: usize,
    full_us: u64,
    incremental_us: u64,
    digest_ok: bool,
}

/// Median of a small sample set.
fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// One sweep cell: on an n-node graph, repeat (mutate `delta` elements,
/// freeze incrementally, rebuild fully) and report median costs.
fn run_cell(n: usize, delta: usize, rounds: usize) -> CellResult {
    let (mut graph, search) = build_graph(n);
    let mut epoch = EpochBuilder::new(&mut graph);
    let mut inc_us = Vec::with_capacity(rounds);
    let mut full_us = Vec::with_capacity(rounds);
    let mut digest_ok = true;
    for round in 0..rounds {
        apply_delta(&mut graph, round, delta);

        let t = Instant::now();
        let inc = epoch.freeze(&mut graph, &search);
        inc_us.push(t.elapsed().as_micros() as u64);

        let t = Instant::now();
        let full = KgSnapshot::build(graph.clone(), search.clone());
        full_us.push(t.elapsed().as_micros() as u64);

        digest_ok &= inc.digest() == full.digest() && inc.digest() == graph.digest();
    }
    CellResult {
        nodes: n,
        delta,
        full_us: median(full_us),
        incremental_us: median(inc_us),
        digest_ok,
    }
}

fn smoke() {
    let cell = run_cell(500, 8, 3);
    println!(
        "E13 smoke: 500-node graph, delta 8 — full {} µs, incremental {} µs, digests {}",
        cell.full_us,
        cell.incremental_us,
        if cell.digest_ok {
            "identical"
        } else {
            "DIVERGED"
        }
    );
    assert!(
        cell.digest_ok,
        "E13 smoke: incremental digest diverged from full rebuild"
    );
    println!("E13 smoke: incremental publish digest-identical to full rebuild — ok");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    const GRAPH_SIZES: [usize; 3] = [2_000, 8_000, 32_000];
    const DELTAS: [usize; 3] = [1, 16, 256];
    const ROUNDS: usize = 5;

    println!("E13: publish cost, full rebuild vs incremental epoch (medians of {ROUNDS} rounds)");
    println!();

    let mut cells = Vec::new();
    for &n in &GRAPH_SIZES {
        for &delta in &DELTAS {
            cells.push(run_cell(n, delta, ROUNDS));
        }
    }

    let mut table = Table::new(&[
        "graph nodes",
        "delta",
        "full µs",
        "incremental µs",
        "speedup",
        "digest ok",
    ]);
    for cell in &cells {
        table.row(vec![
            cell.nodes.to_string(),
            cell.delta.to_string(),
            cell.full_us.to_string(),
            cell.incremental_us.to_string(),
            format!(
                "{:.1}x",
                cell.full_us as f64 / cell.incremental_us.max(1) as f64
            ),
            cell.digest_ok.to_string(),
        ]);
    }
    table.print();

    let rows: Vec<serde_json::Value> = cells
        .iter()
        .map(|cell| {
            serde_json::json!({
                "graph_nodes": cell.nodes,
                "delta": cell.delta,
                "full_publish_us": cell.full_us,
                "incremental_publish_us": cell.incremental_us,
                "speedup": cell.full_us as f64 / cell.incremental_us.max(1) as f64,
                "digest_ok": cell.digest_ok,
            })
        })
        .collect();
    let payload = serde_json::json!({
        "experiment": "E13",
        "rounds_per_cell": ROUNDS,
        "rows": rows,
    });
    std::fs::write(
        "BENCH_e13.json",
        serde_json::to_string_pretty(&payload).expect("results serialise"),
    )
    .expect("write BENCH_e13.json");
    println!();
    println!("wrote BENCH_e13.json");

    assert!(
        cells.iter().all(|c| c.digest_ok),
        "incremental digest diverged from full rebuild"
    );
    // The headline claim: on the largest graph at the smallest delta the
    // incremental path must be at least 5× cheaper than the full rebuild.
    let headline = cells
        .iter()
        .find(|c| c.nodes == *GRAPH_SIZES.last().unwrap() && c.delta == DELTAS[0])
        .expect("headline cell swept");
    let speedup = headline.full_us as f64 / headline.incremental_us.max(1) as f64;
    println!(
        "headline: {}-node graph, delta {} — incremental {speedup:.1}x faster than full rebuild",
        headline.nodes, headline.delta
    );
    assert!(
        speedup >= 5.0,
        "incremental publish not O(delta): only {speedup:.1}x on the largest graph"
    );
    println!(
        "claim (ThreatKG 'continuously updated KG'): publish cost tracks the delta, \
         not the graph — the ingest writer no longer stalls on epoch freezes."
    );
}
