//! Experiment E14 — standing queries over the epoch delta stream.
//!
//! Subscriptions turn the paper's "continuously gathered" KG into push
//! alerts. The naive evaluation rescans every element of both snapshots per
//! subscription per publish — O(graph × subscriptions). The hub instead
//! evaluates each subscription against the *touched* elements only, read
//! from the delta log — O(delta × subscriptions) — so its cost must track
//! the delta, not the graph.
//!
//! This bench sweeps subscription count × delta size on a fixed mid-size
//! graph. For every cell it mutates `delta` elements, freezes an epoch,
//! evaluates all subscriptions incrementally, then runs the O(graph)
//! full-rescan oracle ([`rescan_matches`]) over the same snapshot pair —
//! asserting the match sets are identical and the mailbox accounting exact
//! (`matched == delivered + dropped`) before timing anything is trusted.
//! Machine-readable results land in `BENCH_e14.json`.
//!
//! Run: `cargo run -p kg-bench --bin exp_subscribe --release`
//! Smoke: `cargo run -p kg-bench --bin exp_subscribe --release -- --smoke`
//! (one small cell, oracle-equality check only — the CI cell).

use kg_bench::Table;
use kg_graph::{GraphStore, NodeId, Value};
use kg_search::SearchIndex;
use kg_serve::{
    rescan_matches, CompiledPredicate, EpochBuilder, MatchEvent, Subscription, SubscriptionHub,
    WatchSpec,
};
use std::time::Instant;

/// Deterministic synthetic graph, same shape as E13's: `n` nodes over a
/// handful of labels, ~2 edges per node.
fn build_graph(n: usize) -> (GraphStore, SearchIndex<NodeId>) {
    const LABELS: [&str; 4] = ["Malware", "ThreatActor", "Tool", "FileName"];
    let mut graph = GraphStore::new();
    let search: SearchIndex<NodeId> = SearchIndex::default();
    let mut ids: Vec<NodeId> = Vec::with_capacity(n);
    for i in 0..n {
        let label = LABELS[i % LABELS.len()];
        let id = graph.create_node(
            label,
            [
                ("name", Value::from(format!("{}-{i}", label.to_lowercase()))),
                ("first_seen", Value::from(i as i64)),
            ],
        );
        if i > 0 {
            let a = ids[(i * 7 + 3) % ids.len()];
            graph.merge_edge(a, "RELATED_TO", id).expect("node exists");
            if i % 3 == 0 {
                let b = ids[(i * 13 + 5) % ids.len()];
                let _ = graph.merge_edge(id, "USE", b);
            }
        }
        ids.push(id);
    }
    (graph, search)
}

/// Mutate `delta` elements: fresh entities with edges, property updates,
/// the occasional deletion — an incremental ingest round.
fn apply_delta(graph: &mut GraphStore, round: usize, delta: usize) {
    let live: Vec<NodeId> = graph.all_nodes().map(|n| n.id).collect();
    for j in 0..delta {
        let salt = round * delta + j;
        match j % 4 {
            0 => {
                let id =
                    graph.create_node("Malware", [("name", Value::from(format!("fresh-{salt}")))]);
                let peer = live[(salt * 11 + 1) % live.len()];
                let _ = graph.merge_edge(peer, "RELATED_TO", id);
            }
            1 | 2 => {
                let id = live[(salt * 17 + 7) % live.len()];
                let _ = graph.set_node_prop(id, "last_seen", Value::from(salt as i64));
            }
            _ => {
                if let Some(id) = graph.node_by_name("Malware", &format!("fresh-{}", salt - 3)) {
                    let _ = graph.delete_node(id);
                }
            }
        }
    }
}

/// A varied pool of `count` watch specs: label watches, compiled
/// predicates over names/props, and edge watches spread over the graph.
fn make_specs(count: usize, graph: &GraphStore) -> Vec<WatchSpec> {
    const LABELS: [&str; 4] = ["Malware", "ThreatActor", "Tool", "FileName"];
    let ids: Vec<NodeId> = graph.all_nodes().map(|n| n.id).collect();
    let fresh_pred = CompiledPredicate::compile("n.name STARTS WITH 'fresh'").unwrap();
    let seen_pred = CompiledPredicate::compile("n.last_seen >= 0").unwrap();
    (0..count)
        .map(|i| match i % 4 {
            0 => WatchSpec::Node {
                label: Some(LABELS[(i / 4) % LABELS.len()].to_owned()),
                predicate: Some(fresh_pred.clone()),
            },
            1 => WatchSpec::Node {
                label: None,
                predicate: Some(seen_pred.clone()),
            },
            2 => WatchSpec::Node {
                label: Some(LABELS[(i / 4) % LABELS.len()].to_owned()),
                predicate: None,
            },
            _ => WatchSpec::EdgeTouching(ids[(i * 31 + 17) % ids.len()]),
        })
        .collect()
}

struct CellResult {
    subscriptions: usize,
    delta: usize,
    incremental_us: u64,
    rescan_us: u64,
    matched: u64,
    accounting_ok: bool,
    oracle_ok: bool,
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// One sweep cell: register `subs` subscriptions over an `n`-node graph,
/// then repeat (mutate `delta` elements, publish, evaluate incrementally,
/// run the rescan oracle) and report median costs of both paths.
fn run_cell(n: usize, subs: usize, delta: usize, rounds: usize) -> CellResult {
    let (mut graph, search) = build_graph(n);
    let hub = SubscriptionHub::new(&mut graph);
    let mut epoch = EpochBuilder::new(&mut graph);
    let specs = make_specs(subs, &graph);
    let handles: Vec<Subscription> = specs
        .iter()
        .map(|spec| hub.subscribe(spec.clone(), 4))
        .collect();
    let mut prev = epoch.freeze(&mut graph, &search);

    let mut inc_us = Vec::with_capacity(rounds);
    let mut rescan_us = Vec::with_capacity(rounds);
    let mut matched = 0u64;
    let mut accounting_ok = true;
    let mut oracle_ok = true;
    for round in 0..rounds {
        apply_delta(&mut graph, round, delta);
        let next = epoch.freeze(&mut graph, &search);

        let t = Instant::now();
        let report = hub.evaluate(&mut graph, &prev, &next, None);
        inc_us.push(t.elapsed().as_micros() as u64);

        let t = Instant::now();
        let mut oracle: Vec<MatchEvent> = Vec::new();
        for (spec, sub) in specs.iter().zip(&handles) {
            oracle.extend(rescan_matches(spec, sub.id(), &prev, &next));
        }
        rescan_us.push(t.elapsed().as_micros() as u64);

        // Both paths emit per-subscription in registration order, sorted by
        // element id within a subscription — directly comparable.
        let mut got = report.matches.clone();
        got.sort_by_key(|e| e.subscription);
        oracle_ok &= got == oracle;
        accounting_ok &= report.matched == report.delivered + report.dropped;
        matched += report.matched;
        prev = next;
    }
    accounting_ok &= handles.iter().all(|s| {
        let st = s.stats();
        st.matched == st.delivered + st.dropped && st.queued <= 4
    });
    CellResult {
        subscriptions: subs,
        delta,
        incremental_us: median(inc_us),
        rescan_us: median(rescan_us),
        matched,
        accounting_ok,
        oracle_ok,
    }
}

fn smoke() {
    let cell = run_cell(400, 50, 8, 3);
    println!(
        "E14 smoke: 400-node graph, 50 subscriptions, delta 8 — incremental {} µs, rescan {} µs, {} match(es)",
        cell.incremental_us, cell.rescan_us, cell.matched
    );
    assert!(
        cell.oracle_ok,
        "E14 smoke: incremental match set diverged from the full-rescan oracle"
    );
    assert!(
        cell.accounting_ok,
        "E14 smoke: mailbox accounting lost a match"
    );
    assert!(cell.matched > 0, "E14 smoke: nothing matched — dead cell");
    println!("E14 smoke: incremental evaluation oracle-identical with exact accounting — ok");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    const GRAPH_NODES: usize = 2_000;
    const SUBSCRIPTIONS: [usize; 5] = [1, 10, 100, 1_000, 10_000];
    const DELTAS: [usize; 3] = [1, 16, 256];
    const ROUNDS: usize = 3;

    println!(
        "E14: standing-query evaluation, incremental (delta log) vs full rescan \
         ({GRAPH_NODES}-node graph, medians of {ROUNDS} rounds)"
    );
    println!();

    let mut cells = Vec::new();
    for &subs in &SUBSCRIPTIONS {
        for &delta in &DELTAS {
            cells.push(run_cell(GRAPH_NODES, subs, delta, ROUNDS));
        }
    }

    let mut table = Table::new(&[
        "subscriptions",
        "delta",
        "incremental µs",
        "rescan µs",
        "speedup",
        "matches",
        "oracle ok",
    ]);
    for cell in &cells {
        table.row(vec![
            cell.subscriptions.to_string(),
            cell.delta.to_string(),
            cell.incremental_us.to_string(),
            cell.rescan_us.to_string(),
            format!(
                "{:.1}x",
                cell.rescan_us as f64 / cell.incremental_us.max(1) as f64
            ),
            cell.matched.to_string(),
            (cell.oracle_ok && cell.accounting_ok).to_string(),
        ]);
    }
    table.print();

    let rows: Vec<serde_json::Value> = cells
        .iter()
        .map(|cell| {
            serde_json::json!({
                "graph_nodes": GRAPH_NODES,
                "subscriptions": cell.subscriptions,
                "delta": cell.delta,
                "incremental_eval_us": cell.incremental_us,
                "rescan_eval_us": cell.rescan_us,
                "speedup": cell.rescan_us as f64 / cell.incremental_us.max(1) as f64,
                "matches": cell.matched,
                "oracle_ok": cell.oracle_ok,
                "accounting_ok": cell.accounting_ok,
            })
        })
        .collect();
    let payload = serde_json::json!({
        "experiment": "E14",
        "rounds_per_cell": ROUNDS,
        "rows": rows,
    });
    std::fs::write(
        "BENCH_e14.json",
        serde_json::to_string_pretty(&payload).expect("results serialise"),
    )
    .expect("write BENCH_e14.json");
    println!();
    println!("wrote BENCH_e14.json");

    assert!(
        cells.iter().all(|c| c.oracle_ok),
        "incremental match set diverged from the full-rescan oracle"
    );
    assert!(
        cells.iter().all(|c| c.accounting_ok),
        "mailbox accounting lost a match"
    );
    // The headline claim: at the largest subscription count and small
    // deltas, incremental evaluation must be at least 5× cheaper than
    // rescanning — push alerts scale with what changed, not with the KG.
    for cell in cells
        .iter()
        .filter(|c| c.subscriptions == *SUBSCRIPTIONS.last().unwrap() && c.delta <= 16)
    {
        let speedup = cell.rescan_us as f64 / cell.incremental_us.max(1) as f64;
        println!(
            "headline: {} subscriptions, delta {} — incremental {speedup:.1}x faster than rescan",
            cell.subscriptions, cell.delta
        );
        assert!(
            speedup >= 5.0,
            "subscription evaluation not O(delta): only {speedup:.1}x at {} subscriptions, delta {}",
            cell.subscriptions,
            cell.delta
        );
    }
    println!(
        "claim: standing queries ride the delta log — alert latency per publish \
         tracks the delta, so thousands of watches stay affordable on every epoch."
    );
}
