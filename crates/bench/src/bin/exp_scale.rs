//! Experiment E2 — collection scale and incremental growth (paper §2.2).
//!
//! Claim to reproduce: "In total, we have collected over **120K+ OSCTI
//! reports** and the number is still increasing." Also the framework
//! properties: periodic execution and reboot after failure.
//!
//! The scheduler runs in simulated time over a catalog of ~126K articles;
//! sources publish on their own cadences, and each scheduler horizon crawls
//! incrementally. The growth curve must be monotone and reach 120K+.
//!
//! Run: `cargo run -p kg-bench --bin exp_scale --release [articles_per_source]`

use kg_bench::{standard_web, Table};
use kg_crawler::{Scheduler, SchedulerConfig};

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3000);
    let web = standard_web(scale, 0xE2);
    let catalog: usize = web.sources().iter().map(|s| s.article_count).sum();
    println!("E2: long-horizon collection — 42 sources, catalog of {catalog} articles");
    println!();

    let start: u64 = 1_500_000_000_000;
    let config = SchedulerConfig {
        interval_ms: 6 * 3_600_000,
        ..SchedulerConfig::default()
    };
    let mut scheduler = Scheduler::new(&web, config, start);

    let mut table = Table::new(&[
        "simulated day",
        "reports collected",
        "crawl cycles",
        "reboots",
        "pages fetched",
    ]);
    let mut last = 0usize;
    let horizon_days: u64 = 400;
    for checkpoint in [1u64, 7, 30, 90, 180, 270, horizon_days] {
        scheduler.run_until(start + checkpoint * 24 * 3_600_000);
        let seen = scheduler.state.total_seen();
        assert!(seen >= last, "growth must be monotone");
        last = seen;
        table.row(vec![
            checkpoint.to_string(),
            seen.to_string(),
            scheduler.stats.cycles_run.to_string(),
            scheduler.stats.reboots.to_string(),
            scheduler.stats.pages_fetched.to_string(),
        ]);
    }
    table.print();
    println!();
    let final_count = scheduler.state.total_seen();
    println!("final collection: {final_count} reports (catalog {catalog})");
    println!(
        "paper claim: 120K+ reports collected, still increasing. Shape to check: \
         monotone growth; final count exceeds 120K at the default scale."
    );
}
