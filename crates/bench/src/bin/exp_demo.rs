//! Experiment E8 — the paper's demo scenarios (§3, Figure 3) plus query
//! latency at scale (§2.6's dual query paths).
//!
//! Scenario 1: keyword search "wannacry" — investigate the ransomware,
//!   expand its node, end with a subgraph of its relevant entities.
//! Scenario 2: keyword search "cozyduke" — list its techniques, then find
//!   other threat actors using the same set of techniques.
//! Scenario 3: the literal Cypher query
//!   `match (n) where n.name = "wannacry" return n` must return the same
//!   node as scenario 1's keyword search.
//!
//! Run: `cargo run -p kg-bench --bin exp_demo --release`

use kg_bench::Table;
use kg_corpus::WorldConfig;
use securitykg::{SecurityKg, SystemConfig, TrainingConfig};
use std::time::Instant;

fn main() {
    // A denser world so the demo entities are well covered by articles.
    let mut config = SystemConfig {
        world: WorldConfig {
            malware_count: 40,
            actor_count: 24,
            cve_count: 60,
            campaign_count: 16,
            seed: 0xE8,
        },
        articles_per_source: 60,
        training: TrainingConfig {
            articles: 200,
            ..TrainingConfig::default()
        },
        ..SystemConfig::default()
    };
    // The analyst-curated alias table (as MISP galaxy clusters provide in
    // practice) lets fusion unify vendor naming conventions like
    // cozyduke/apt29 that share no string similarity.
    config.fusion.alias_groups = kg_corpus::names::MALWARE_ALIASES
        .iter()
        .chain(kg_corpus::names::ACTOR_ALIASES.iter())
        .map(|group| group.iter().map(|s| (*s).to_owned()).collect())
        .collect();
    println!("E8: demo scenarios — bootstrapping (train extractor, crawl, ingest)...");
    let mut kg = SecurityKg::bootstrap(&config);
    let ingest = kg.crawl_and_ingest();
    println!(
        "  ingested {} reports → {} nodes, {} edges",
        ingest.reports_ingested,
        kg.graph().node_count(),
        kg.graph().edge_count()
    );
    println!();

    // ---- Scenario 1: wannacry investigation -------------------------------
    println!("scenario 1: keyword search \"wannacry\"");
    let t = Instant::now();
    let hits = kg.keyword_search("wannacry", 10);
    let keyword_us = t.elapsed().as_micros();
    let wannacry = kg.graph().node_by_name("Malware", "wannacry");
    println!(
        "  {} hits in {} µs; malware node present: {}",
        hits.len(),
        keyword_us,
        wannacry.is_some()
    );
    if let Some(node) = wannacry {
        let mut explorer = kg.explorer();
        explorer.show(vec![node]);
        explorer.expand(node);
        explorer.run_layout(100);
        let snap = explorer.snapshot();
        println!(
            "  expanded subgraph: {} nodes, {} edges",
            snap.nodes.len(),
            snap.edges.len()
        );
        let mut table = Table::new(&["entity", "label", "via"]);
        for edge in kg.graph().outgoing(node) {
            let other = kg.graph().node(edge.to).unwrap();
            table.row(vec![
                other.name().unwrap_or("").to_owned(),
                other.label.clone(),
                edge.rel_type.clone(),
            ]);
        }
        table.print();
    }
    println!();

    // ---- Scenario 2: cozyduke technique twins ------------------------------
    println!("scenario 2: keyword search \"cozyduke\" — technique overlap");
    if kg.graph().node_by_name("ThreatActor", "cozyduke").is_some() {
        let result = kg
            .cypher(
                "MATCH (a:ThreatActor {name: 'cozyduke'})-[:USES]->(t:Technique) \
                 RETURN t.name ORDER BY t.name",
            )
            .unwrap();
        let techniques: Vec<String> = result.rows.iter().map(|r| r[0].to_string()).collect();
        println!("  cozyduke techniques: {techniques:?}");
        let twins = kg
            .cypher(
                "MATCH (a:ThreatActor {name: 'cozyduke'})-[:USES]->(t:Technique)\
                 <-[:USES]-(other:ThreatActor) \
                 RETURN other.name, count(t) AS shared ORDER BY count(t) DESC LIMIT 5",
            )
            .unwrap();
        let mut table = Table::new(&["other actor", "shared techniques"]);
        for row in &twins.rows {
            table.row(vec![row[0].to_string(), row[1].to_string()]);
        }
        table.print();
    } else {
        println!("  (cozyduke not covered by this corpus sample)");
    }
    println!();

    // ---- Scenario 3: Cypher vs keyword consistency -------------------------
    println!("scenario 3: match (n) where n.name = \"wannacry\" return n");
    let t = Instant::now();
    let result = kg
        .cypher("match (n) where n.name = \"wannacry\" return n")
        .unwrap();
    let cypher_us = t.elapsed().as_micros();
    let cypher_nodes = result.node_ids();
    println!("  {} node(s) in {} µs", cypher_nodes.len(), cypher_us);
    match wannacry {
        Some(node) => {
            assert_eq!(cypher_nodes, vec![node], "Cypher and keyword must agree");
            println!("  ✓ same node as scenario 1's keyword search");
        }
        None => println!("  (no wannacry node; corpus sample did not cover it)"),
    }
    println!();

    // ---- Query latency table ------------------------------------------------
    let mut table = Table::new(&["query path", "latency"]);
    table.row(vec![
        "keyword (BM25 index)".into(),
        format!("{keyword_us} µs"),
    ]);
    table.row(vec![
        "Cypher full scan (name equality)".into(),
        format!("{cypher_us} µs"),
    ]);
    let t = Instant::now();
    let _ = kg
        .cypher("MATCH (m:Malware)-[:DROP]->(f:FileName) RETURN m.name, f.name LIMIT 50")
        .unwrap();
    table.row(vec![
        "Cypher 1-hop pattern (label-indexed)".into(),
        format!("{} µs", t.elapsed().as_micros()),
    ]);
    table.print();
    println!();

    // Fusion runs after the demo (a separate stage in the paper, §2.5):
    // vendor aliases collapse; the queried names remain reachable via the
    // recorded aliases.
    let fusion = kg.fuse();
    println!(
        "knowledge fusion afterwards: {} clusters merged, {} nodes removed, {} edges migrated",
        fusion.clusters_merged, fusion.nodes_removed, fusion.edges_migrated
    );
    if let Some(node) = kg.find_entity("Malware", "wannacry") {
        let canonical = kg
            .graph()
            .node(node)
            .unwrap()
            .name()
            .unwrap_or("?")
            .to_owned();
        println!("  post-fusion lookup \"wannacry\" → canonical node {canonical:?}");
    }
}
