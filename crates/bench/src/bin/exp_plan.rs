//! Experiment E17 — compiled query plans vs the interpreted executor
//! (paper §2.6: sub-second management queries; here, the "plan once, bind
//! many" split that keeps them sub-second as the graph grows).
//!
//! Per request, the old read path paid parse + interpret on every call, and
//! the interpreter's only access path for a bare `WHERE n.name = …` was a
//! full node scan. The compiled path pays parse + plan lowering **once**,
//! then re-binds the cached [`CompiledPlan`] per call — and the planner
//! lifts equality constraints into the store's property index, so the
//! per-call cost of an index-selective query is proportional to the result,
//! not the graph.
//!
//! For every query cell the two paths are first asserted **byte-identical**
//! (columns and rows), then timed individually: p50/p99 over per-op
//! latencies, interpreted vs compiled, with the speedup per cell. The
//! headline is the minimum speedup across the *index-selective* cells
//! (claimed ≥5× at both p50 and p99). Machine-readable results land in
//! `BENCH_e17.json`.
//!
//! Run:   `cargo run -p kg-bench --bin exp_plan --release`
//! Smoke: `cargo run -p kg-bench --bin exp_plan --release -- --smoke`
//! (tiny corpus, equality assertions and plan-cache reuse only — no timing
//! thresholds, so it is safe for CI).

use kg_bench::Table;
use kg_corpus::WorldConfig;
use kg_graph::cypher::execute_read_with_params;
use kg_graph::{parse, CompiledPlan, Params};
use kg_serve::{percentile, KgSnapshot, PlanCache};
use securitykg::{SecurityKg, SystemConfig, TrainingConfig};
use std::time::Instant;

fn build_kg(tiny: bool) -> SecurityKg {
    let config = if tiny {
        SystemConfig {
            world: WorldConfig::tiny(0xE17),
            articles_per_source: 6,
            training: TrainingConfig {
                articles: 40,
                ..TrainingConfig::default()
            },
            ..SystemConfig::default()
        }
    } else {
        SystemConfig {
            world: WorldConfig {
                malware_count: 40,
                actor_count: 24,
                cve_count: 60,
                campaign_count: 16,
                seed: 0xE17,
            },
            articles_per_source: 30,
            training: TrainingConfig {
                articles: 60,
                ..TrainingConfig::default()
            },
            ..SystemConfig::default()
        }
    };
    let mut kg = SecurityKg::bootstrap_without_ner(&config);
    kg.crawl_and_ingest();
    kg
}

struct Cell {
    label: &'static str,
    text: String,
    /// Counts toward the ≥5× headline (queries where the planner picks an
    /// index the interpreter doesn't have).
    index_selective: bool,
}

/// The query suite: index-selective point lookups (the headline), plus
/// label scans, aggregates, multi-hop and var-length patterns where the
/// compiled path's win is mostly parse/lowering amortization.
fn cells(kg: &SecurityKg) -> Vec<Cell> {
    let name = kg
        .graph()
        .nodes_with_label("Malware")
        .into_iter()
        .find_map(|id| kg.graph().node(id).and_then(|n| n.name()).map(String::from))
        .expect("corpus produced a named malware");
    vec![
        Cell {
            label: "name-eq (lifted)",
            text: format!("MATCH (n) WHERE n.name = '{name}' RETURN n"),
            index_selective: true,
        },
        Cell {
            label: "map-eq no label",
            text: format!("MATCH (n {{name: '{name}'}}) RETURN n"),
            index_selective: true,
        },
        Cell {
            label: "name-eq + prop",
            text: format!("MATCH (n) WHERE n.name = '{name}' RETURN n.name, n.vendor"),
            index_selective: true,
        },
        Cell {
            label: "label + name idx",
            text: format!("MATCH (n:Malware {{name: '{name}'}}) RETURN n"),
            index_selective: false,
        },
        Cell {
            label: "label count",
            text: "MATCH (m:Malware) RETURN count(*)".into(),
            index_selective: false,
        },
        Cell {
            label: "full scan + sort",
            text: "MATCH (n) RETURN n.name ORDER BY n.name LIMIT 10".into(),
            index_selective: false,
        },
        Cell {
            label: "2-hop aggregate",
            text: "MATCH (v:CtiVendor)-[:PUBLISHES]->(r) RETURN count(*)".into(),
            index_selective: false,
        },
        Cell {
            label: "var-length *1..2",
            text: format!("MATCH (a {{name: '{name}'}})-[*1..2]-(b) RETURN count(*)"),
            index_selective: false,
        },
    ]
}

/// Assert the two paths agree, then time `iters` individual calls of each.
/// Returns (interpreted ns, compiled ns) per-op samples.
fn measure(
    snapshot: &KgSnapshot,
    plan: &CompiledPlan,
    text: &str,
    iters: usize,
) -> (Vec<u64>, Vec<u64>) {
    let params = Params::new();
    let query = parse(text).expect("cell parses");
    let want =
        execute_read_with_params(snapshot.graph(), &query, &params).expect("oracle executes");
    let got = plan.execute_on(snapshot, &params).expect("plan executes");
    assert_eq!(want.columns, got.columns, "columns diverged on {text}");
    assert_eq!(want.rows, got.rows, "rows diverged on {text}");

    let mut interp = Vec::with_capacity(iters);
    let mut compiled = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        // What the old read path did per request: parse + interpret. Parse
        // is re-done from text because that *was* the per-request cost.
        let q = parse(text).expect("reparse");
        std::hint::black_box(execute_read_with_params(snapshot.graph(), &q, &params).unwrap());
        interp.push(t.elapsed().as_nanos() as u64);

        let t = Instant::now();
        std::hint::black_box(plan.execute_on(snapshot, &params).unwrap());
        compiled.push(t.elapsed().as_nanos() as u64);
    }
    (interp, compiled)
}

fn smoke() {
    let kg = build_kg(true);
    let snapshot = KgSnapshot::build(kg.graph().clone(), kg.search_index().clone());
    let cache = PlanCache::new(64);
    for cell in cells(&kg) {
        let plan = cache.plan(&cell.text).expect("cell compiles");
        let (interp, compiled) = measure(&snapshot, &plan, &cell.text, 3);
        assert_eq!(interp.len(), 3);
        assert_eq!(compiled.len(), 3);
        // Same text again: the cache re-binds, never recompiles.
        let again = cache.plan(&cell.text).expect("cached");
        assert!(std::sync::Arc::ptr_eq(&plan, &again));
    }
    let stats = cache.stats();
    assert_eq!(stats.compiles, stats.entries as u64, "{stats:?}");
    println!(
        "E17 smoke: {} query cells byte-identical between interpreted and compiled \
         paths, {} plans compiled once each and re-bound from cache — ok",
        cells(&kg).len(),
        stats.compiles,
    );
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    println!("E17: compiled plans vs interpreted execution — building knowledge base...");
    let kg = build_kg(false);
    let snapshot = KgSnapshot::build(kg.graph().clone(), kg.search_index().clone());
    println!(
        "  {} nodes, {} edges",
        snapshot.node_count(),
        snapshot.edge_count()
    );
    println!();

    const ITERS: usize = 400;
    let cache = PlanCache::new(64);
    let mut table = Table::new(&[
        "query",
        "interp p50 µs",
        "interp p99 µs",
        "plan p50 µs",
        "plan p99 µs",
        "×p50",
        "×p99",
    ]);
    let mut json_rows: Vec<serde_json::Value> = Vec::new();
    let mut headline: Vec<(f64, f64)> = Vec::new();
    for cell in cells(&kg) {
        let plan = cache.plan(&cell.text).expect("cell compiles");
        // Warm both paths (first touch repairs the lazy prop index).
        let _ = measure(&snapshot, &plan, &cell.text, 5);
        let (mut interp, mut compiled) = measure(&snapshot, &plan, &cell.text, ITERS);
        let (ip50, ip99) = (percentile(&mut interp, 0.50), percentile(&mut interp, 0.99));
        let (cp50, cp99) = (
            percentile(&mut compiled, 0.50),
            percentile(&mut compiled, 0.99),
        );
        let (x50, x99) = (
            ip50 as f64 / cp50.max(1) as f64,
            ip99 as f64 / cp99.max(1) as f64,
        );
        if cell.index_selective {
            headline.push((x50, x99));
        }
        table.row(vec![
            cell.label.into(),
            format!("{:.1}", ip50 as f64 / 1000.0),
            format!("{:.1}", ip99 as f64 / 1000.0),
            format!("{:.1}", cp50 as f64 / 1000.0),
            format!("{:.1}", cp99 as f64 / 1000.0),
            format!("{x50:.1}"),
            format!("{x99:.1}"),
        ]);
        json_rows.push(serde_json::json!({
            "label": cell.label,
            "query": cell.text,
            "index_selective": cell.index_selective,
            "interpreted_ns": { "p50": ip50, "p99": ip99 },
            "compiled_ns": { "p50": cp50, "p99": cp99 },
            "speedup": { "p50": x50, "p99": x99 },
        }));
    }
    table.print();
    println!();

    let min50 = headline.iter().map(|(a, _)| *a).fold(f64::MAX, f64::min);
    let min99 = headline.iter().map(|(_, b)| *b).fold(f64::MAX, f64::min);
    println!(
        "headline (worst index-selective cell): {min50:.1}x at p50, {min99:.1}x at p99 \
         (claim: ≥5x — the interpreter full-scans a bare name equality, the plan \
         hits the property index and re-binds without parsing)"
    );
    let stats = cache.stats();
    println!(
        "plan cache: {} compiles for {} cells across {} executions (every timed \
         call after the first was a re-bind)",
        stats.compiles,
        json_rows.len(),
        json_rows.len() * (ITERS + 5) + json_rows.len(),
    );

    let payload = serde_json::json!({
        "experiment": "E17",
        "iters": ITERS,
        "nodes": snapshot.node_count(),
        "edges": snapshot.edge_count(),
        "rows": json_rows,
        "headline_speedup": { "p50": min50, "p99": min99 },
    });
    std::fs::write(
        "BENCH_e17.json",
        serde_json::to_string_pretty(&payload).expect("results serialise"),
    )
    .expect("write BENCH_e17.json");
    println!();
    println!("wrote BENCH_e17.json");
}
