//! Experiment E12 — the serving layer under concurrency (paper §2.6: many
//! analysts querying while ingestion keeps writing; ThreatKG's serving
//! split).
//!
//! Measures read throughput and execution latency (p50/p99) while sweeping
//! the reader count, with and without a concurrent ingest writer publishing
//! fresh snapshots, and with the query cache cold vs warm.
//!
//! Requests model an interactive client: each reader issues a query, then
//! "thinks" for a fixed simulated interval (the same virtual-latency device
//! E1 uses for crawling). Wall-clock throughput then scales with reader
//! count exactly insofar as readers do not serialize each other — which is
//! the property under test; on a single core, pure CPU work cannot scale.
//!
//! Run: `cargo run -p kg-bench --bin exp_serving --release`

use kg_bench::Table;
use kg_corpus::WorldConfig;
use kg_serve::{percentile, KgServe, KgSnapshot, Query};
use securitykg::{SecurityKg, SystemConfig, TrainingConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Simulated per-request client think time.
const THINK: Duration = Duration::from_micros(800);
/// Requests issued by each reader per cell.
const REQUESTS_PER_READER: usize = 400;
/// Writer republish interval in concurrent-ingest mode.
const PUBLISH_EVERY: Duration = Duration::from_millis(5);

fn build_kg() -> SecurityKg {
    let config = SystemConfig {
        world: WorldConfig {
            malware_count: 30,
            actor_count: 18,
            cve_count: 40,
            campaign_count: 12,
            seed: 0xE12,
        },
        articles_per_source: 30,
        training: TrainingConfig {
            articles: 60,
            ..TrainingConfig::default()
        },
        ..SystemConfig::default()
    };
    let mut kg = SecurityKg::bootstrap_without_ner(&config);
    kg.crawl_and_ingest();
    kg
}

/// The search-heavy analyst workload: entity names plus free-text terms.
fn query_pool(kg: &SecurityKg) -> Vec<Query> {
    let mut pool = Vec::new();
    for label in ["Malware", "ThreatActor", "Campaign"] {
        for id in kg.graph().nodes_with_label(label).into_iter().take(12) {
            let name = kg
                .graph()
                .node(id)
                .and_then(|n| n.name())
                .unwrap_or("")
                .to_owned();
            pool.push(Query::Search { q: name, k: 10 });
        }
    }
    for term in [
        "ransomware encrypts files",
        "phishing campaign government",
        "command and control domain",
        "exploit vulnerability smb",
        "banking trojan dropper",
        "lateral movement credential",
    ] {
        pool.push(Query::Search {
            q: term.into(),
            k: 10,
        });
    }
    pool
}

struct Cell {
    wall: Duration,
    /// Execution-only latencies (think time excluded), µs.
    latencies: Vec<u64>,
    publishes_seen: u64,
}

/// One measurement: `readers` threads each issue `REQUESTS_PER_READER`
/// queries (with think time) against `serve`; optionally a writer keeps
/// publishing fresh snapshots for the duration.
fn run_cell(serve: &KgServe, pool: &[Query], readers: usize, writer: Option<&SecurityKg>) -> Cell {
    let stop = AtomicBool::new(false);
    let before = serve.stats().publishes;
    let start = Instant::now();
    let latencies: Vec<Vec<u64>> = std::thread::scope(|scope| {
        if let Some(kg) = writer {
            scope.spawn(|| {
                let mut graph = kg.graph().clone();
                let mut search = kg.search_index().clone();
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let m = graph.merge_node(
                        "Malware",
                        &format!("e12-ingested-{i}"),
                        [] as [(&str, &str); 0],
                    );
                    search.add(m, &format!("freshly ingested malware {i}"));
                    let snapshot = KgSnapshot::build(graph.clone(), search.clone());
                    serve.publish(snapshot);
                    i += 1;
                    std::thread::sleep(PUBLISH_EVERY);
                }
            });
        }
        let handles: Vec<_> = (0..readers)
            .map(|reader| {
                scope.spawn(move || {
                    let mut samples = Vec::with_capacity(REQUESTS_PER_READER);
                    for i in 0..REQUESTS_PER_READER {
                        let query = &pool[(i * 7 + reader * 13) % pool.len()];
                        let t = Instant::now();
                        let snap = serve.pin();
                        let response = serve.execute_on(&snap, query);
                        samples.push(t.elapsed().as_micros() as u64);
                        assert_eq!(response.digest, snap.digest());
                        std::thread::sleep(THINK);
                    }
                    samples
                })
            })
            .collect();
        let collected = handles.into_iter().map(|h| h.join().unwrap()).collect();
        stop.store(true, Ordering::Relaxed);
        collected
    });
    Cell {
        wall: start.elapsed(),
        latencies: latencies.into_iter().flatten().collect(),
        publishes_seen: serve.stats().publishes - before,
    }
}

fn main() {
    println!("E12: serving layer under concurrency — building knowledge base...");
    let kg = build_kg();
    println!(
        "  {} nodes, {} edges",
        kg.graph().node_count(),
        kg.graph().edge_count()
    );
    let pool = query_pool(&kg);
    println!(
        "  workload: {} search queries, {} µs think time, {} requests/reader",
        pool.len(),
        THINK.as_micros(),
        REQUESTS_PER_READER
    );
    println!();

    // ---- reader sweep: static snapshot vs concurrent ingest writer --------
    let mut table = Table::new(&[
        "readers",
        "ingest writer",
        "queries",
        "wall ms",
        "queries/s",
        "speedup vs 1",
        "exec p50 µs",
        "exec p99 µs",
        "publishes",
    ]);
    let mut baseline_qps = [0f64; 2];
    for (mode, writer) in [("off", None), ("on", Some(&kg))] {
        for (i, readers) in [1usize, 2, 4, 8].into_iter().enumerate() {
            let serve = KgServe::new(kg.serving_snapshot(), 4096);
            let mut cell = run_cell(&serve, &pool, readers, writer);
            let queries = cell.latencies.len();
            let qps = queries as f64 / cell.wall.as_secs_f64();
            let mode_idx = usize::from(mode == "on");
            if i == 0 {
                baseline_qps[mode_idx] = qps;
            }
            serve.record_cache_report();
            table.row(vec![
                readers.to_string(),
                mode.into(),
                queries.to_string(),
                format!("{:.1}", cell.wall.as_secs_f64() * 1e3),
                format!("{qps:.0}"),
                format!("{:.2}x", qps / baseline_qps[mode_idx]),
                percentile(&mut cell.latencies, 0.50).to_string(),
                percentile(&mut cell.latencies, 0.99).to_string(),
                cell.publishes_seen.to_string(),
            ]);
        }
    }
    table.print();
    println!();

    // ---- cache: cold (disabled) vs warm ------------------------------------
    let mut table = Table::new(&[
        "cache",
        "queries/s",
        "exec p50 µs",
        "exec p99 µs",
        "hits",
        "misses",
        "hit rate",
    ]);
    for (label, capacity) in [("cold (disabled)", 0usize), ("warm (4096)", 4096)] {
        let serve = KgServe::new(kg.serving_snapshot(), capacity);
        if capacity > 0 {
            // Warm it: one full pass over the pool.
            for query in &pool {
                serve.execute(query);
            }
        }
        let mut cell = run_cell(&serve, &pool, 4, None);
        let stats = serve.stats();
        let qps = cell.latencies.len() as f64 / cell.wall.as_secs_f64();
        let (hits, misses) = (stats.cache.hits, stats.cache.misses);
        table.row(vec![
            label.into(),
            format!("{qps:.0}"),
            percentile(&mut cell.latencies, 0.50).to_string(),
            percentile(&mut cell.latencies, 0.99).to_string(),
            hits.to_string(),
            misses.to_string(),
            if hits + misses == 0 {
                "-".into()
            } else {
                format!("{:.0}%", 100.0 * hits as f64 / (hits + misses) as f64)
            },
        ]);
    }
    table.print();
    println!();
    println!(
        "Readers pin immutable snapshots and the cache shards its locks, so adding \
         readers multiplies throughput until think-time overlap saturates; a \
         concurrent writer costs only the publish work itself, never reader stalls."
    );
}
