//! Experiment E11 — crash recovery time vs journal length.
//!
//! Claim to support (DESIGN.md "Failure model & recovery"): the *redo* work
//! after a crash is bounded by the snapshot cadence, not by the journal's
//! total length — replay itself is a linear scan of fixed-size frames. The
//! table also surfaces the cadence trade-off: a denser cadence bounds the
//! cycles redone more tightly but pays for it in sidecar serialisation,
//! both during normal operation and again while re-stepping.
//!
//! Method: for each (horizon, snapshot cadence) cell, run an uninterrupted
//! durable build to learn the journal length and reference digest, then kill
//! a second run at ~90% of that journal and wall-clock the resume. The
//! resumed digest must match the reference — this doubles as a chaos check
//! at bench scale.
//!
//! Run: `cargo run -p kg-bench --bin exp_recovery --release`

use kg_bench::Table;
use kg_corpus::{FaultProfile, WorldConfig};
use kg_crawler::SchedulerConfig;
use securitykg::{run_durable, DurableOptions, JournalError, SystemConfig, DEFAULT_START_MS};
use std::path::PathBuf;
use std::time::Instant;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kg-exp-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let system = SystemConfig {
        world: WorldConfig::tiny(0xE9),
        articles_per_source: 6,
        seed: 0xE9,
        faults: FaultProfile::default(),
        ..SystemConfig::default()
    };
    let sched = SchedulerConfig::default();

    println!(
        "E11: recovery time vs journal length — kill at ~90% of the journal, resume, verify digest"
    );
    println!();
    let mut table = Table::new(&[
        "days",
        "snap every",
        "journal recs",
        "kill at",
        "replayed",
        "resumed from",
        "cycles redone",
        "recovery ms",
        "digest ok",
    ]);

    for days in [1u64, 3, 7, 14] {
        for snapshot_every in [8u64, 32, 128] {
            let until = DEFAULT_START_MS + days * 24 * 3_600_000;
            let opts = DurableOptions {
                snapshot_every_cycles: snapshot_every,
                ..DurableOptions::default()
            };

            let ref_dir = tmp_dir(&format!("ref-{days}-{snapshot_every}"));
            let reference =
                run_durable(&system, &sched, &ref_dir, until, &opts).expect("reference run");
            let _ = std::fs::remove_dir_all(&ref_dir);
            let kill_at = reference.records_appended * 9 / 10;

            let dir = tmp_dir(&format!("kill-{days}-{snapshot_every}"));
            let crash = DurableOptions {
                crash_after_records: Some(kill_at),
                crash_torn_tail: true,
                ..opts.clone()
            };
            match run_durable(&system, &sched, &dir, until, &crash) {
                Err(JournalError::InjectedCrash) => {}
                other => panic!("expected injected crash, got {other:?}"),
            }

            let clock = Instant::now();
            let resumed = run_durable(&system, &sched, &dir, until, &opts).expect("resume");
            let recovery_ms = clock.elapsed().as_secs_f64() * 1000.0;
            let _ = std::fs::remove_dir_all(&dir);

            table.row(vec![
                days.to_string(),
                snapshot_every.to_string(),
                reference.records_appended.to_string(),
                kill_at.to_string(),
                resumed.replayed_records.to_string(),
                resumed
                    .resumed_from_snapshot
                    .map_or_else(|| "-".into(), |s| format!("snap {s}")),
                resumed.cycles_run.to_string(),
                format!("{recovery_ms:.1}"),
                (resumed.kg_digest == reference.kg_digest).to_string(),
            ]);
        }
    }
    println!("{}", table.render());
}
