//! Experiment E4 — backend scalability (paper §2.1, Figure 1).
//!
//! Claims to reproduce: "we parallelize the processing procedure ... We
//! further pipeline the processing steps ... to improve the throughput",
//! and the serialisable intermediate representations that make "multi-host
//! deployment and load balancing possible".
//!
//! Measures end-to-end processing throughput (porter → checker → parser →
//! extractor → connector) over a freshly crawled corpus:
//! sequential vs pipelined, extract-worker sweep, serialised transport
//! on/off.
//!
//! Run: `cargo run -p kg-bench --bin exp_pipeline --release`

use kg_bench::{standard_web, Table, FOREVER};
use kg_crawler::{crawl_all, CrawlState, CrawlerConfig};
use kg_pipeline::{
    run_pipelined, run_sequential, GraphConnector, NerExtractor, ParserRegistry, PipelineConfig,
};
use securitykg::{train_ner, TrainingConfig};
use std::sync::Arc;

fn main() {
    let web = standard_web(60, 0xE4);
    let mut state = CrawlState::new();
    let (reports, _) = crawl_all(&web, &mut state, &CrawlerConfig::default(), FOREVER);
    println!(
        "E4: pipeline throughput — {} raw pages crawled",
        reports.len()
    );

    // The real extractor (trained CRF) so the extract stage has CPU weight,
    // as in the paper's deployment.
    let trained = train_ner(
        &web,
        &TrainingConfig {
            articles: 200,
            ..TrainingConfig::default()
        },
    );
    let ner = Arc::new(trained.into_pipeline());
    let registry = ParserRegistry::new();
    println!();

    let mut table = Table::new(&[
        "configuration",
        "connected",
        "wall ms",
        "reports/s",
        "speedup vs sequential",
    ]);

    let extractor = NerExtractor {
        pipeline: Arc::clone(&ner),
    };
    let seq = run_sequential(
        reports.clone(),
        &registry,
        &extractor,
        GraphConnector::new(),
        &PipelineConfig::default(),
    );
    let seq_rate = seq.metrics.reports_per_second();
    table.row(vec![
        "sequential (1 thread)".into(),
        seq.metrics.connected.to_string(),
        seq.metrics.wall_ms.to_string(),
        format!("{seq_rate:.1}"),
        "1.00x".into(),
    ]);

    for (name, workers, serialize) in [
        ("pipelined, 1 extract worker", 1usize, false),
        ("pipelined, 2 extract workers", 2, false),
        ("pipelined, 4 extract workers", 4, false),
        ("pipelined, 8 extract workers", 8, false),
        ("pipelined, 4 workers + serialized transport", 4, true),
    ] {
        let mut config = PipelineConfig {
            serialize_transport: serialize,
            ..Default::default()
        };
        config.workers.extract = workers;
        config.workers.parse = 2;
        let out = run_pipelined(
            reports.clone(),
            &registry,
            &extractor,
            GraphConnector::new(),
            &config,
        );
        let rate = out.metrics.reports_per_second();
        table.row(vec![
            name.into(),
            out.metrics.connected.to_string(),
            out.metrics.wall_ms.to_string(),
            format!("{rate:.1}"),
            format!("{:.2}x", rate / seq_rate.max(1e-9)),
        ]);
        if workers == 4 && !serialize {
            // Per-stage busy/blocked/queue-depth breakdown: busy is time
            // actively processing items; waiting on channels is blocked.
            println!("-- per-stage breakdown (4 extract workers) --");
            print!("{}", out.metrics.stage_report());
            println!();
        }
    }
    table.print();
    println!();
    println!(
        "paper claim (qualitative): pipelining + per-stage parallelism improves throughput; \
         serialised hand-off (multi-host mode) costs a modest constant factor."
    );
}
