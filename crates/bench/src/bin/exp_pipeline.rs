//! Experiment E4 — backend scalability (paper §2.1, Figure 1).
//!
//! Claims to reproduce: "we parallelize the processing procedure ... We
//! further pipeline the processing steps ... to improve the throughput",
//! and the serialisable intermediate representations that make "multi-host
//! deployment and load balancing possible".
//!
//! Measures end-to-end processing throughput (porter → checker → parser →
//! extractor → resolver → connector) over a freshly crawled corpus:
//! sequential vs pipelined, extract-worker sweep, connect(resolve)-worker
//! sweep, serialised transport on/off. Every pipelined cell's graph digest
//! is checked against the sequential baseline — the split connector's
//! determinism contract — and the machine-readable results (including the
//! writer's busy share, the Amdahl serial fraction of the split design) are
//! written to `BENCH_e4.json`.
//!
//! Run: `cargo run -p kg-bench --bin exp_pipeline --release`
//! Smoke: `cargo run -p kg-bench --bin exp_pipeline --release -- --smoke`
//! (small corpus, gazetteer extractor, digest check only — the CI cell).

use kg_bench::{small_web, standard_web, Table, FOREVER};
use kg_corpus::SimulatedWeb;
use kg_crawler::{crawl_all, CrawlState, CrawlerConfig};
use kg_extract::RegexNerBaseline;
use kg_fusion::ResolverConfig;
use kg_ir::RawReport;
use kg_ontology::EntityKind;
use kg_pipeline::{
    run_pipelined, run_sequential, Extractor, GraphConnector, IocOnlyExtractor, NerExtractor,
    ParserRegistry, PipelineConfig, PipelineMetrics,
};
use securitykg::{train_ner, TrainingConfig};
use std::sync::Arc;

fn digest(connector: &GraphConnector) -> u64 {
    connector.graph.digest()
}

/// Share of total wall-clock the single-threaded apply phase kept the
/// writer busy — the serial fraction that caps the split design's speedup.
fn writer_busy_share(metrics: &PipelineMetrics) -> f64 {
    if metrics.wall_ms == 0 {
        return 0.0;
    }
    let busy = metrics.stage_busy_ms.get("connect").copied().unwrap_or(0);
    busy as f64 / metrics.wall_ms as f64
}

/// The gazetteer extractor over the world's curated lists — model-free but
/// mention-rich, so the resolve stage has real fusion work.
fn gazetteer(web: &SimulatedWeb) -> IocOnlyExtractor {
    let curated = web.world().curated_lists(1.0, 0xE4);
    IocOnlyExtractor {
        baseline: Arc::new(RegexNerBaseline::new(vec![
            (EntityKind::Malware, curated.malware),
            (EntityKind::ThreatActor, curated.actors),
            (EntityKind::Technique, curated.techniques),
            (EntityKind::Tool, curated.tools),
            (EntityKind::Software, curated.software),
        ])),
    }
}

struct Cell {
    name: String,
    metrics: PipelineMetrics,
    digest: u64,
    extract_workers: usize,
    connect_workers: usize,
    serialized: bool,
}

fn run_cell<E: Extractor>(
    name: &str,
    reports: &[RawReport],
    registry: &ParserRegistry,
    extractor: &E,
    extract_workers: usize,
    connect_workers: usize,
    serialized: bool,
) -> Cell {
    let mut config = PipelineConfig {
        serialize_transport: serialized,
        ..Default::default()
    };
    config.workers.parse = 2;
    config.workers.extract = extract_workers;
    config.workers.connect = connect_workers;
    let out = run_pipelined(
        reports.to_vec(),
        registry,
        extractor,
        GraphConnector::with_resolver(ResolverConfig::standard()),
        &config,
    );
    Cell {
        name: name.to_owned(),
        digest: digest(&out.connector),
        metrics: out.metrics,
        extract_workers,
        connect_workers,
        serialized,
    }
}

fn smoke() {
    let web = small_web(0xE4);
    let mut state = CrawlState::new();
    let (reports, _) = crawl_all(&web, &mut state, &CrawlerConfig::default(), FOREVER);
    let registry = ParserRegistry::new();
    let extractor = gazetteer(&web);

    let seq = run_sequential(
        reports.clone(),
        &registry,
        &extractor,
        GraphConnector::with_resolver(ResolverConfig::standard()),
        &PipelineConfig::default(),
    );
    let reference = digest(&seq.connector);
    let cell = run_cell(
        "smoke: 4 connect workers",
        &reports,
        &registry,
        &extractor,
        4,
        4,
        false,
    );
    println!(
        "E4 smoke: {} pages, sequential connected {} (digest {reference:016x}), \
         pipelined connected {} (digest {:016x})",
        reports.len(),
        seq.metrics.connected,
        cell.metrics.connected,
        cell.digest,
    );
    assert!(seq.metrics.connected > 0, "smoke corpus connected nothing");
    assert_eq!(
        cell.digest, reference,
        "E4 smoke: pipelined graph digest diverged from sequential"
    );
    println!("E4 smoke: digest byte-identical — ok");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let web = standard_web(60, 0xE4);
    let mut state = CrawlState::new();
    let (reports, _) = crawl_all(&web, &mut state, &CrawlerConfig::default(), FOREVER);
    println!(
        "E4: pipeline throughput — {} raw pages crawled",
        reports.len()
    );

    // The real extractor (trained CRF) so the extract stage has CPU weight,
    // as in the paper's deployment.
    let trained = train_ner(
        &web,
        &TrainingConfig {
            articles: 200,
            ..TrainingConfig::default()
        },
    );
    let ner = Arc::new(trained.into_pipeline());
    let registry = ParserRegistry::new();
    println!();

    let extractor = NerExtractor {
        pipeline: Arc::clone(&ner),
    };
    let seq = run_sequential(
        reports.clone(),
        &registry,
        &extractor,
        GraphConnector::with_resolver(ResolverConfig::standard()),
        &PipelineConfig::default(),
    );
    let seq_rate = seq.metrics.reports_per_second();
    let reference = digest(&seq.connector);

    let cells: Vec<Cell> = [
        ("pipelined, 1 extract + 1 connect", 1usize, 1usize, false),
        ("pipelined, 2 extract + 1 connect", 2, 1, false),
        ("pipelined, 4 extract + 1 connect", 4, 1, false),
        ("pipelined, 4 extract + 2 connect", 4, 2, false),
        ("pipelined, 4 extract + 4 connect", 4, 4, false),
        ("pipelined, 8 extract + 4 connect", 8, 4, false),
        ("pipelined, 4+4 serialized transport", 4, 4, true),
    ]
    .iter()
    .map(|&(name, extract, connect, ser)| {
        run_cell(name, &reports, &registry, &extractor, extract, connect, ser)
    })
    .collect();

    let mut table = Table::new(&[
        "configuration",
        "connected",
        "wall ms",
        "reports/s",
        "speedup",
        "writer busy",
        "digest ok",
    ]);
    table.row(vec![
        "sequential (1 thread)".into(),
        seq.metrics.connected.to_string(),
        seq.metrics.wall_ms.to_string(),
        format!("{seq_rate:.1}"),
        "1.00x".into(),
        format!("{:.0}%", writer_busy_share(&seq.metrics) * 100.0),
        "ref".into(),
    ]);
    for cell in &cells {
        let rate = cell.metrics.reports_per_second();
        table.row(vec![
            cell.name.clone(),
            cell.metrics.connected.to_string(),
            cell.metrics.wall_ms.to_string(),
            format!("{rate:.1}"),
            format!("{:.2}x", rate / seq_rate.max(1e-9)),
            format!("{:.0}%", writer_busy_share(&cell.metrics) * 100.0),
            (cell.digest == reference).to_string(),
        ]);
        if cell.extract_workers == 8 && cell.connect_workers == 4 {
            println!("-- per-stage breakdown (8 extract + 4 connect workers) --");
            print!("{}", cell.metrics.stage_report());
            println!();
        }
    }
    table.print();

    let rows: Vec<serde_json::Value> = std::iter::once(serde_json::json!({
        "name": "sequential",
        "extract_workers": 1,
        "connect_workers": 0,
        "serialized": false,
        "connected": seq.metrics.connected,
        "wall_ms": seq.metrics.wall_ms,
        "reports_per_s": seq_rate,
        "speedup": 1.0,
        "writer_busy_share": writer_busy_share(&seq.metrics),
        "canon_conflicts": seq.metrics.canon_conflicts,
        "digest_ok": true,
    }))
    .chain(cells.iter().map(|cell| {
        serde_json::json!({
            "name": cell.name,
            "extract_workers": cell.extract_workers,
            "connect_workers": cell.connect_workers,
            "serialized": cell.serialized,
            "connected": cell.metrics.connected,
            "wall_ms": cell.metrics.wall_ms,
            "reports_per_s": cell.metrics.reports_per_second(),
            "speedup": cell.metrics.reports_per_second() / seq_rate.max(1e-9),
            "writer_busy_share": writer_busy_share(&cell.metrics),
            "canon_conflicts": cell.metrics.canon_conflicts,
            "digest_ok": cell.digest == reference,
        })
    }))
    .collect();
    let payload = serde_json::json!({
        "experiment": "E4",
        "pages": reports.len(),
        "reference_digest": format!("{reference:016x}"),
        "rows": rows,
    });
    std::fs::write(
        "BENCH_e4.json",
        serde_json::to_string_pretty(&payload).expect("results serialise"),
    )
    .expect("write BENCH_e4.json");
    println!();
    println!("wrote BENCH_e4.json");

    let all_ok = cells.iter().all(|c| c.digest == reference);
    println!(
        "digest check: {} (every pipelined configuration vs sequential)",
        if all_ok { "byte-identical" } else { "DIVERGED" }
    );
    println!(
        "paper claim (qualitative): pipelining + per-stage parallelism improves throughput; \
         serialised hand-off (multi-host mode) costs a modest constant factor."
    );
    assert!(all_ok, "graph digest diverged from the sequential baseline");
}
