//! Shared fixtures and table formatting for the experiment harnesses
//! (E1–E8 in DESIGN.md) and the Criterion benches.

use kg_corpus::{standard_sources, SimulatedWeb, World, WorldConfig};

/// Far-future simulated timestamp: every article is published.
pub const FOREVER: u64 = u64::MAX / 4;

/// Build the standard simulated web at a given per-source article scale.
pub fn standard_web(articles_per_source: usize, seed: u64) -> SimulatedWeb {
    let world = World::generate(WorldConfig {
        seed,
        ..WorldConfig::default()
    });
    SimulatedWeb::new(world, standard_sources(articles_per_source), seed)
}

/// Build a small web for fast benches.
pub fn small_web(seed: u64) -> SimulatedWeb {
    let world = World::generate(WorldConfig::tiny(seed));
    SimulatedWeb::new(world, standard_sources(10), seed)
}

/// Minimal fixed-width table printer for experiment output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}-|", "-".repeat(w + 2 - 1)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("| name  | value |"), "{s}");
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn webs_build() {
        assert_eq!(small_web(1).sources().len(), 42);
        assert_eq!(standard_web(2, 1).sources().len(), 42);
    }
}
