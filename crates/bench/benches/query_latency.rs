//! Criterion bench for E8: query latency over a built knowledge graph —
//! the keyword (BM25) path vs the Cypher path, as in the paper's UI (§2.6).

use criterion::{criterion_group, criterion_main, Criterion};
use kg_bench::{small_web, FOREVER};
use kg_crawler::{crawl_all, CrawlState, CrawlerConfig};
use kg_extract::RegexNerBaseline;
use kg_ontology::EntityKind;
use kg_pipeline::{
    run_sequential, GraphConnector, IocOnlyExtractor, ParserRegistry, PipelineConfig,
};
use std::hint::black_box;
use std::sync::Arc;

fn built_backend() -> GraphConnector {
    let web = small_web(0xBE8);
    let mut state = CrawlState::new();
    let (reports, _) = crawl_all(&web, &mut state, &CrawlerConfig::default(), FOREVER);
    let curated = web.world().curated_lists(1.0, 1);
    let extractor = IocOnlyExtractor {
        baseline: Arc::new(RegexNerBaseline::new(vec![
            (EntityKind::Malware, curated.malware),
            (EntityKind::ThreatActor, curated.actors),
        ])),
    };
    run_sequential(
        reports,
        &ParserRegistry::new(),
        &extractor,
        GraphConnector::new(),
        &PipelineConfig::default(),
    )
    .connector
}

fn bench_queries(c: &mut Criterion) {
    let backend = built_backend();
    let graph = backend.graph;
    let search = backend.search;

    c.bench_function("query/keyword_bm25", |b| {
        b.iter(|| black_box(search.search("wannacry ransomware", 10)));
    });

    c.bench_function("query/cypher_name_equality_full_scan", |b| {
        b.iter(|| {
            black_box(
                graph
                    .query_readonly("match (n) where n.name = \"wannacry\" return n")
                    .unwrap()
                    .rows
                    .len(),
            )
        });
    });

    c.bench_function("query/cypher_indexed_prop_map", |b| {
        b.iter(|| {
            black_box(
                graph
                    .query_readonly("MATCH (n:Malware {name: 'wannacry'}) RETURN n")
                    .unwrap()
                    .rows
                    .len(),
            )
        });
    });

    c.bench_function("query/cypher_one_hop", |b| {
        b.iter(|| {
            black_box(
                graph
                    .query_readonly("MATCH (m:Malware)-[:MENTIONS]-(r) RETURN m.name LIMIT 20")
                    .unwrap()
                    .rows
                    .len(),
            )
        });
    });

    c.bench_function("query/cypher_aggregation", |b| {
        b.iter(|| {
            black_box(
                graph
                    .query_readonly(
                        "MATCH (v:CtiVendor)-[:PUBLISHES]->(r) \
                         RETURN v.name, count(r) ORDER BY count(r) DESC LIMIT 5",
                    )
                    .unwrap()
                    .rows
                    .len(),
            )
        });
    });
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
