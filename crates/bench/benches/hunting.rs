//! Criterion bench for E9: threat-hunting scan throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kg_graph::{GraphStore, Value};
use kg_hunting::{behavior, AuditGenerator, Hunter};
use std::hint::black_box;

/// A KG with `n` malware, each with 3 IOC indicators.
fn kg(n: usize) -> GraphStore {
    let mut g = GraphStore::new();
    for i in 0..n {
        let m = g.create_node("Malware", [("name", Value::from(format!("fam{i}")))]);
        let f = g.create_node("FileName", [("name", Value::from(format!("p{i}.exe")))]);
        let d = g.create_node("Domain", [("name", Value::from(format!("c{i}.evil.ru")))]);
        let r = g.create_node(
            "RegistryKey",
            [("name", Value::from(format!("hklm\\run\\k{i}")))],
        );
        g.create_edge(m, "DROP", f, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(m, "CONNECTS_TO", d, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(m, "PERSISTS_VIA", r, [] as [(&str, Value); 0])
            .unwrap();
    }
    g
}

fn bench_hunting(c: &mut Criterion) {
    let mut group = c.benchmark_group("hunting/scan");
    for (threats, events) in [(50usize, 5_000usize), (200, 5_000), (200, 50_000)] {
        let graph = kg(threats);
        let behaviors = behavior::behaviors_with_label(&graph, "Malware", 1);
        let hunter = Hunter::new(behaviors);
        let log = AuditGenerator::new(1).benign_log(events, 0);
        group.throughput(Throughput::Elements(events as u64));
        group.sample_size(10);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threats}threats_{events}events")),
            &(),
            |b, ()| b.iter(|| black_box(hunter.scan(&log).len())),
        );
    }
    group.finish();

    c.bench_function("hunting/behavior_extraction_200", |b| {
        let graph = kg(200);
        b.iter(|| black_box(behavior::behaviors_with_label(&graph, "Malware", 1).len()));
    });
}

criterion_group!(benches, bench_hunting);
criterion_main!(benches);
