//! Criterion bench for E3 (runtime half): extraction throughput.
//!
//! CRF decode speed, IOC scanning, tokenization with protection, and the
//! full NER+relation pipeline per report.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kg_bench::small_web;
use kg_nlp::{tokenize_protected, IocMatcher};
use securitykg::{collect_gold, train_ner, TrainingConfig};
use std::hint::black_box;

fn bench_extraction(c: &mut Criterion) {
    let web = small_web(0xBE3);
    let gold = collect_gold(&web, 50, |i| i % 2 == 1);
    let texts: Vec<&str> = gold.iter().map(|g| g.text.as_str()).collect();
    let total_bytes: usize = texts.iter().map(|t| t.len()).sum();

    let matcher = IocMatcher::standard();
    let mut group = c.benchmark_group("extraction");
    group.throughput(Throughput::Bytes(total_bytes as u64));
    group.bench_function("ioc_scan", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for t in &texts {
                n += matcher.find_all(t).len();
            }
            black_box(n)
        });
    });
    group.bench_function("tokenize_protected", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for t in &texts {
                n += tokenize_protected(t, &matcher).len();
            }
            black_box(n)
        });
    });
    group.finish();

    let trained = train_ner(
        &web,
        &TrainingConfig {
            articles: 80,
            ..TrainingConfig::default()
        },
    );
    let pipeline = trained.into_pipeline();
    let mut group = c.benchmark_group("extraction/model");
    group.sample_size(20);
    group.throughput(Throughput::Elements(texts.len() as u64));
    group.bench_function("crf_ner_plus_relations_per_report", |b| {
        b.iter(|| {
            let mut mentions = 0usize;
            for t in &texts {
                mentions += pipeline.mentions(t).len();
            }
            black_box(mentions)
        });
    });
    group.finish();

    // Training cost (the offline phase).
    let mut group = c.benchmark_group("extraction/training");
    group.sample_size(10);
    group.bench_function("train_80_articles", |b| {
        b.iter(|| {
            let t = train_ner(
                &web,
                &TrainingConfig {
                    articles: 80,
                    ..TrainingConfig::default()
                },
            );
            black_box(t.lf_accuracies.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
