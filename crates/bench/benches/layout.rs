//! Criterion bench for E7: Barnes–Hut vs naive layout (paper §2.6).
//!
//! The shape to reproduce: naive all-pairs repulsion is O(n²) per step,
//! Barnes–Hut is O(n log n) — the gap must widen with n, with θ trading
//! accuracy for speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kg_layout::{ForceLayout, LayoutConfig, LayoutGraph, RepulsionMethod};
use std::hint::black_box;

/// A scale-free-ish test graph: node i links to i/2 and i/3.
fn test_graph(n: usize) -> LayoutGraph {
    let edges: Vec<(usize, usize)> = (1..n)
        .flat_map(|i| {
            let mut es = vec![(i / 2, i)];
            if i % 3 == 0 && i / 3 != i / 2 {
                es.push((i / 3, i));
            }
            es
        })
        .collect();
    LayoutGraph::seeded(n, edges)
}

fn bench_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout/step");
    for n in [100usize, 1000, 5000] {
        group.sample_size(if n >= 5000 { 10 } else { 30 });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, &n| {
            let mut graph = test_graph(n);
            let mut engine = ForceLayout::new(LayoutConfig {
                method: RepulsionMethod::Naive,
                ..LayoutConfig::default()
            });
            b.iter(|| black_box(engine.step(&mut graph)));
        });
        for theta in [0.5f32, 0.8, 1.2] {
            group.bench_with_input(
                BenchmarkId::new(format!("barnes_hut_theta_{theta}"), n),
                &n,
                |b, &n| {
                    let mut graph = test_graph(n);
                    let mut engine = ForceLayout::new(LayoutConfig {
                        method: RepulsionMethod::BarnesHut { theta },
                        ..LayoutConfig::default()
                    });
                    b.iter(|| black_box(engine.step(&mut graph)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_layout);
criterion_main!(benches);
