//! Criterion bench for E6 (storage half): knowledge-graph construction.
//!
//! Measures connector ingest rate (merge-heavy, since reports share
//! entities), raw node/edge creation, and `MERGE` lookups.

use criterion::{criterion_group, criterion_main, Criterion};
use kg_bench::{small_web, FOREVER};
use kg_crawler::{crawl_all, CrawlState, CrawlerConfig};
use kg_extract::RegexNerBaseline;
use kg_graph::{GraphStore, Value};
use kg_ir::IntermediateCti;
use kg_pipeline::{
    run_sequential, Connector, GraphConnector, IocOnlyExtractor, ParserRegistry, PipelineConfig,
    TabularConnector,
};
use std::hint::black_box;
use std::sync::Arc;

/// Pre-parse a corpus into CTIs by running the pipeline with a capturing
/// connector.
fn prepared_ctis() -> Vec<IntermediateCti> {
    #[derive(Default)]
    struct Capture(Vec<IntermediateCti>);
    impl Connector for Capture {
        fn connect(&mut self, cti: &IntermediateCti) {
            self.0.push(cti.clone());
        }
    }
    let web = small_web(0xBE6);
    let mut state = CrawlState::new();
    let (reports, _) = crawl_all(&web, &mut state, &CrawlerConfig::default(), FOREVER);
    let extractor = IocOnlyExtractor {
        baseline: Arc::new(RegexNerBaseline::new(vec![])),
    };
    run_sequential(
        reports,
        &ParserRegistry::new(),
        &extractor,
        Capture::default(),
        &PipelineConfig::default(),
    )
    .connector
    .0
}

fn bench_construction(c: &mut Criterion) {
    let ctis = prepared_ctis();
    assert!(!ctis.is_empty());

    let mut group = c.benchmark_group("kg/construction");
    group.sample_size(20);
    group.throughput(criterion::Throughput::Elements(ctis.len() as u64));
    group.bench_function("graph_connector_ingest", |b| {
        b.iter(|| {
            let mut connector = GraphConnector::new();
            for cti in &ctis {
                connector.connect(cti);
            }
            black_box(connector.graph.node_count())
        });
    });
    group.bench_function("tabular_connector_ingest", |b| {
        b.iter(|| {
            let mut connector = TabularConnector::new();
            for cti in &ctis {
                connector.connect(cti);
            }
            black_box(connector.entities.len())
        });
    });
    group.finish();

    c.bench_function("kg/merge_node_hit", |b| {
        let mut g = GraphStore::new();
        for i in 0..10_000 {
            g.create_node("Malware", [("name", Value::from(format!("m{i}")))]);
        }
        b.iter(|| black_box(g.merge_node("Malware", "m5000", [] as [(&str, Value); 0])));
    });

    c.bench_function("kg/create_edge", |b| {
        let mut g = GraphStore::new();
        let nodes: Vec<_> = (0..1000)
            .map(|i| g.create_node("Malware", [("name", Value::from(format!("m{i}")))]))
            .collect();
        let mut i = 0usize;
        b.iter(|| {
            let from = nodes[i % nodes.len()];
            let to = nodes[(i * 7 + 1) % nodes.len()];
            i += 1;
            black_box(
                g.create_edge(from, "RELATED_TO", to, [] as [(&str, Value); 0])
                    .unwrap(),
            )
        });
    });
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
