//! Criterion bench for E1: crawl cycle cost across worker counts.
//!
//! Measures the software cost of a full incremental crawl cycle over 42
//! sources (virtual-time latency accounting, no real sleeps), at 1/4/8
//! worker threads. The companion binary `exp_crawler` reports the
//! virtual-time throughput figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kg_bench::{small_web, FOREVER};
use kg_crawler::{crawl_all, CrawlState, CrawlerConfig};
use std::hint::black_box;

fn bench_crawl(c: &mut Criterion) {
    let web = small_web(0xBE1);
    let mut group = c.benchmark_group("crawler/full_cycle");
    group.sample_size(10);
    for threads in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let config = CrawlerConfig {
                    threads,
                    ..CrawlerConfig::default()
                };
                b.iter(|| {
                    let mut state = CrawlState::new();
                    let (reports, metrics) = crawl_all(&web, &mut state, &config, FOREVER);
                    black_box((reports.len(), metrics.new_reports))
                });
            },
        );
    }
    group.finish();

    // Incremental second cycle (index-only refetch).
    c.bench_function("crawler/incremental_noop_cycle", |b| {
        let config = CrawlerConfig::default();
        let mut state = CrawlState::new();
        let _ = crawl_all(&web, &mut state, &config, FOREVER);
        b.iter(|| {
            let (reports, _) = crawl_all(&web, &mut state, &config, FOREVER);
            black_box(reports.len())
        });
    });
}

criterion_group!(benches, bench_crawl);
criterion_main!(benches);
