//! Criterion bench for E6 (fusion half): the knowledge-fusion pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kg_fusion::{fuse, similarity, FusionConfig};
use kg_graph::{GraphStore, Value};
use std::hint::black_box;

/// A graph with `n` malware nodes of which every 5th has a near-alias, each
/// linked to a couple of IOC nodes.
fn aliased_graph(n: usize) -> GraphStore {
    let mut g = GraphStore::new();
    for i in 0..n {
        let name = format!("family{i:05}");
        let m = g.create_node("Malware", [("name", Value::from(name.clone()))]);
        let f = g.create_node(
            "FileName",
            [("name", Value::from(format!("payload{i}.exe")))],
        );
        g.create_edge(m, "DROP", f, [] as [(&str, Value); 0])
            .unwrap();
        if i % 5 == 0 {
            let alias = g.create_node("Malware", [("name", Value::from(format!("family {i:05}")))]);
            let d = g.create_node("Domain", [("name", Value::from(format!("c2-{i}.evil.ru")))]);
            g.create_edge(alias, "CONNECTS_TO", d, [] as [(&str, Value); 0])
                .unwrap();
        }
    }
    g
}

fn bench_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("fusion/pass");
    group.sample_size(10);
    for n in [200usize, 1000, 3000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let graph = aliased_graph(n);
            b.iter(|| {
                let mut g = graph.clone();
                let report = fuse(&mut g, &FusionConfig::default());
                black_box(report.nodes_removed)
            });
        });
    }
    group.finish();

    c.bench_function("fusion/jaro_winkler", |b| {
        b.iter(|| black_box(similarity::jaro_winkler("wannacry", "wannacrypt")));
    });
    c.bench_function("fusion/levenshtein", |b| {
        b.iter(|| black_box(similarity::levenshtein("wanna decryptor", "wannacry")));
    });
}

criterion_group!(benches, bench_fusion);
criterion_main!(benches);
