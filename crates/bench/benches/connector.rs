//! Microbench for the split connector (E4 tentpole): the parallelisable
//! resolve phase vs the serial apply phase, against the fused classic path.
//!
//! The split pays off when `resolve` (canonicalisation + relation schema
//! checks + BM25 pre-tokenization) dominates `apply` (graph merges under
//! the writer lock): resolve shards across workers while apply stays
//! single-threaded. This bench measures both halves per report so the
//! writer's serial share can be compared with E4's end-to-end numbers.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kg_bench::{small_web, FOREVER};
use kg_crawler::{crawl_all, CrawlState, CrawlerConfig};
use kg_extract::RegexNerBaseline;
use kg_fusion::ResolverConfig;
use kg_ir::IntermediateCti;
use kg_ontology::EntityKind;
use kg_pipeline::{
    run_sequential, Connector, GraphConnector, GraphDelta, IocOnlyExtractor, ParserRegistry,
    PipelineConfig,
};
use std::hint::black_box;
use std::sync::Arc;

/// Pre-parse a corpus into CTIs by running the pipeline with a capturing
/// connector; the gazetteer extractor keeps mentions (and so fusion work)
/// realistic without CRF training cost.
fn prepared_ctis() -> Vec<IntermediateCti> {
    #[derive(Default)]
    struct Capture(Vec<IntermediateCti>);
    impl Connector for Capture {
        fn connect(&mut self, cti: &IntermediateCti) {
            self.0.push(cti.clone());
        }
    }
    let web = small_web(0xBE8);
    let curated = web.world().curated_lists(1.0, 0xBE8);
    let extractor = IocOnlyExtractor {
        baseline: Arc::new(RegexNerBaseline::new(vec![
            (EntityKind::Malware, curated.malware),
            (EntityKind::ThreatActor, curated.actors),
            (EntityKind::Technique, curated.techniques),
            (EntityKind::Tool, curated.tools),
            (EntityKind::Software, curated.software),
        ])),
    };
    let mut state = CrawlState::new();
    let (reports, _) = crawl_all(&web, &mut state, &CrawlerConfig::default(), FOREVER);
    run_sequential(
        reports,
        &ParserRegistry::new(),
        &extractor,
        Capture::default(),
        &PipelineConfig::default(),
    )
    .connector
    .0
}

fn resolve_all(ctis: &[IntermediateCti]) -> Vec<GraphDelta> {
    let connector = GraphConnector::with_resolver(ResolverConfig::standard());
    let resolver = connector.resolver().expect("graph connector resolves");
    ctis.iter()
        .enumerate()
        .map(|(i, cti)| {
            let mut delta = resolver.resolve(cti);
            delta.seq = i as u64;
            delta
        })
        .collect()
}

fn bench_connector(c: &mut Criterion) {
    let ctis = prepared_ctis();
    assert!(!ctis.is_empty());
    let deltas = resolve_all(&ctis);

    let mut group = c.benchmark_group("connector/split");
    group.sample_size(20);
    group.throughput(Throughput::Elements(ctis.len() as u64));
    group.bench_function("resolve_phase_per_report", |b| {
        let connector = GraphConnector::with_resolver(ResolverConfig::standard());
        let resolver = connector.resolver().expect("graph connector resolves");
        b.iter(|| {
            let mut entities = 0usize;
            for cti in &ctis {
                entities += resolver.resolve(cti).entities.len();
            }
            black_box(entities)
        });
    });
    group.bench_function("apply_phase_per_delta", |b| {
        b.iter(|| {
            let mut connector = GraphConnector::with_resolver(ResolverConfig::standard());
            for delta in deltas.iter().cloned() {
                connector.apply_delta(delta);
            }
            black_box(connector.graph.node_count())
        });
    });
    group.bench_function("fused_classic_connect", |b| {
        b.iter(|| {
            let mut connector = GraphConnector::with_resolver(ResolverConfig::standard());
            for cti in &ctis {
                connector.connect(cti);
            }
            black_box(connector.graph.node_count())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_connector);
criterion_main!(benches);
