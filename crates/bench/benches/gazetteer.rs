//! Microbench for the gazetteer window matcher (ISSUE satellite: zero
//! per-window heap allocation).
//!
//! "after" = the fingerprint-probed fast path: per-word FNV hashes computed
//! once per sentence, each candidate window extended by one rolling
//! `fnv1a64_extend` step, and the real entry set consulted only on a
//! fingerprint hit. "before" = the direct path (what a freshly
//! deserialised gazetteer falls back to): probe the entry set with a
//! borrowed window at every (start, len) pair, longest first.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kg_bench::small_web;
use kg_extract::features::Gazetteer;
use std::hint::black_box;

fn fixtures() -> (Gazetteer, Vec<Vec<String>>) {
    let web = small_web(0xBE7);
    let curated = web.world().curated_lists(1.0, 0xBE7);
    let entries: Vec<String> = curated
        .malware
        .into_iter()
        .chain(curated.actors)
        .chain(curated.techniques)
        .chain(curated.tools)
        .chain(curated.software)
        .collect();
    let gaz = Gazetteer::new("bench", entries.clone());

    // Sentences mixing gazetteer entries into filler prose, pre-lowered the
    // way the featurizer hands them to `match_tokens`.
    let filler = [
        "the",
        "campaign",
        "dropped",
        "a",
        "loader",
        "on",
        "victims",
        "and",
        "then",
        "pivoted",
        "to",
        "the",
        "domain",
        "controller",
        "before",
        "exfiltrating",
        "credentials",
    ];
    let mut sentences = Vec::new();
    for (i, entry) in entries.iter().enumerate().take(200) {
        let mut words: Vec<String> = filler.iter().map(|w| (*w).to_owned()).collect();
        let at = 3 + i % 7;
        for (k, part) in entry.split_whitespace().enumerate() {
            words.insert(at + k, part.to_lowercase());
        }
        sentences.push(words);
    }
    (gaz, sentences)
}

fn bench_gazetteer(c: &mut Criterion) {
    let (gaz, sentences) = fixtures();
    // Round-trip through serde to obtain the fingerprint-less "before"
    // matcher (serialisation skips the derived hashes).
    let direct: Gazetteer = serde_json::from_str(&serde_json::to_string(&gaz).unwrap()).unwrap();
    let tokens: usize = sentences.iter().map(Vec::len).sum();

    let mut group = c.benchmark_group("gazetteer/match_tokens");
    group.throughput(Throughput::Elements(tokens as u64));
    group.bench_function("fingerprint_probe (after)", |b| {
        b.iter(|| {
            let mut covered = 0usize;
            for sentence in &sentences {
                covered += gaz
                    .match_tokens(sentence)
                    .iter()
                    .filter(|(c, _)| *c)
                    .count();
            }
            black_box(covered)
        });
    });
    group.bench_function("direct_set_probe (before)", |b| {
        b.iter(|| {
            let mut covered = 0usize;
            for sentence in &sentences {
                covered += direct
                    .match_tokens(sentence)
                    .iter()
                    .filter(|(c, _)| *c)
                    .count();
            }
            black_box(covered)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_gazetteer);
criterion_main!(benches);
