//! Criterion bench for E4: processing-pipeline throughput.
//!
//! Sequential vs pipelined, and direct vs serialised transport, over a
//! pre-crawled raw-page corpus with the IOC extractor (model-free, so the
//! bench isolates pipeline mechanics; `exp_pipeline` measures the trained
//! extractor).

use criterion::{criterion_group, criterion_main, Criterion};
use kg_bench::{small_web, FOREVER};
use kg_crawler::{crawl_all, CrawlState, CrawlerConfig};
use kg_extract::RegexNerBaseline;
use kg_ir::RawReport;
use kg_pipeline::{
    run_pipelined, run_sequential, GraphConnector, IocOnlyExtractor, ParserRegistry, PipelineConfig,
};
use std::hint::black_box;
use std::sync::Arc;

fn corpus() -> Vec<RawReport> {
    let web = small_web(0xBE4);
    let mut state = CrawlState::new();
    crawl_all(&web, &mut state, &CrawlerConfig::default(), FOREVER).0
}

fn bench_pipeline(c: &mut Criterion) {
    let reports = corpus();
    let registry = ParserRegistry::new();
    let extractor = IocOnlyExtractor {
        baseline: Arc::new(RegexNerBaseline::new(vec![])),
    };

    let mut group = c.benchmark_group("pipeline/end_to_end");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let out = run_sequential(
                reports.clone(),
                &registry,
                &extractor,
                GraphConnector::new(),
                &PipelineConfig::default(),
            );
            black_box(out.metrics.connected)
        });
    });
    group.bench_function("pipelined_default", |b| {
        b.iter(|| {
            let out = run_pipelined(
                reports.clone(),
                &registry,
                &extractor,
                GraphConnector::new(),
                &PipelineConfig::default(),
            );
            black_box(out.metrics.connected)
        });
    });
    group.bench_function("pipelined_serialized_transport", |b| {
        let config = PipelineConfig {
            serialize_transport: true,
            ..PipelineConfig::default()
        };
        b.iter(|| {
            let out = run_pipelined(
                reports.clone(),
                &registry,
                &extractor,
                GraphConnector::new(),
                &config,
            );
            black_box(out.metrics.connected)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
