//! Knowledge fusion (paper §2.5).
//!
//! The storage stage only merges nodes "with exactly the same description
//! text"; nodes with *similar* names that refer to the same entity ("same
//! malware represented in different naming conventions by different CTI
//! vendors") are merged here, in a separate stage, "by creating a new node
//! with unified attributes and migrating all the relation edges". Keeping
//! fusion out of the ingest pipeline "can prevent early deletion of useful
//! information" — an unfused graph is always recoverable.
//!
//! - [`similarity`] — Jaro–Winkler, Levenshtein and token-Jaccard string
//!   similarity with name normalisation.
//! - [`union_find`] — disjoint-set clustering of alias candidates.
//! - [`fuse`] — the fusion pass over a [`kg_graph::GraphStore`].
//! - [`resolver`] — ingest-time canonicalisation against a snapshot of the
//!   canon table (the parallel connector's resolve phase).

pub mod resolver;
pub mod similarity;
pub mod union_find;

pub use resolver::{
    CanonEntry, CanonSnapshot, CanonTable, Committed, Resolution, ResolveBasis, ResolverConfig,
};

use kg_graph::{GraphStore, NodeId, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Fusion configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FusionConfig {
    /// Similarity threshold for merging two names of the same label.
    pub threshold: f64,
    /// Node labels eligible for fusion (IOC labels are never fused: two
    /// different hashes are different facts even at edit distance 1).
    pub labels: Vec<String>,
    /// Explicit alias groups (analyst-curated), each a set of equivalent
    /// names. Handles vendor naming conventions with no string similarity
    /// (e.g. "cozyduke" / "apt29").
    pub alias_groups: Vec<Vec<String>>,
    /// Require similarity-driven merges to be corroborated by at least one
    /// shared non-report neighbour (same dropped file, same C2 domain, ...).
    /// Two genuinely-aliased names accumulate the same facts from different
    /// vendors, while coincidentally-similar names do not — this is what
    /// keeps fusion precision high in a dense name space. Alias-table merges
    /// are trusted without corroboration.
    pub require_shared_neighbor: bool,
}

impl Default for FusionConfig {
    fn default() -> Self {
        FusionConfig {
            threshold: 0.88,
            labels: vec![
                "Malware".into(),
                "ThreatActor".into(),
                "Campaign".into(),
                "Tool".into(),
                "Software".into(),
            ],
            alias_groups: Vec::new(),
            require_shared_neighbor: true,
        }
    }
}

/// What a fusion pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FusionReport {
    /// Clusters that contained more than one node.
    pub clusters_merged: usize,
    /// Nodes removed (absorbed into canonical nodes).
    pub nodes_removed: usize,
    /// Edges re-pointed to canonical nodes.
    pub edges_migrated: usize,
    /// The merges performed: (kept name, absorbed names), per cluster.
    pub merges: Vec<(String, Vec<String>)>,
}

/// Run fusion to fixpoint: merging two aliases can create the shared
/// neighbourhood (or the closer canonical name) that lets a third alias
/// merge, so passes repeat until nothing changes (bounded, since every
/// pass strictly removes nodes).
pub fn fuse(store: &mut GraphStore, config: &FusionConfig) -> FusionReport {
    let mut total = FusionReport::default();
    loop {
        let pass = fuse_once(store, config);
        let progressed = pass.nodes_removed > 0;
        total.clusters_merged += pass.clusters_merged;
        total.nodes_removed += pass.nodes_removed;
        total.edges_migrated += pass.edges_migrated;
        total.merges.extend(pass.merges);
        if !progressed {
            return total;
        }
    }
}

/// One fusion pass over the store.
pub fn fuse_once(store: &mut GraphStore, config: &FusionConfig) -> FusionReport {
    let mut report = FusionReport::default();

    // Normalised alias lookup: name → group id.
    let mut alias_of: HashMap<String, usize> = HashMap::new();
    for (gid, group) in config.alias_groups.iter().enumerate() {
        for name in group {
            alias_of.insert(similarity::normalize(name), gid);
        }
    }

    for label in &config.labels {
        let ids = store.nodes_with_label(label);
        if ids.len() < 2 {
            continue;
        }
        let names: Vec<String> = ids
            .iter()
            .map(|&id| {
                store
                    .node(id)
                    .and_then(|n| n.name())
                    .unwrap_or("")
                    .to_owned()
            })
            .collect();
        let normalized: Vec<String> = names.iter().map(|n| similarity::normalize(n)).collect();

        // Cluster by explicit aliases and string similarity.
        let mut dsu = union_find::UnionFind::new(ids.len());
        // Alias-group blocking: O(n) pass.
        let mut group_first: HashMap<usize, usize> = HashMap::new();
        for (i, norm) in normalized.iter().enumerate() {
            if let Some(&gid) = alias_of.get(norm) {
                match group_first.get(&gid) {
                    Some(&j) => {
                        dsu.union(i, j);
                    }
                    None => {
                        group_first.insert(gid, i);
                    }
                }
            }
        }
        // Similarity pass with a cheap length/prefix prefilter; merges need
        // structural corroboration when configured.
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                if dsu.find(i) == dsu.find(j) {
                    continue;
                }
                let (a, b) = (&normalized[i], &normalized[j]);
                if a.is_empty() || b.is_empty() {
                    continue;
                }
                // Prefilter: wildly different lengths with no shared first
                // character cannot clear the threshold.
                let len_ratio = a.len().min(b.len()) as f64 / a.len().max(b.len()) as f64;
                if len_ratio < 0.4 && a.as_bytes()[0] != b.as_bytes()[0] {
                    continue;
                }
                if similarity::name_similarity(a, b) < config.threshold {
                    continue;
                }
                if config.require_shared_neighbor && !shares_fact_neighbor(store, ids[i], ids[j]) {
                    continue;
                }
                dsu.union(i, j);
            }
        }

        // Merge each non-trivial cluster.
        let mut clusters: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..ids.len() {
            clusters.entry(dsu.find(i)).or_default().push(i);
        }
        for members in clusters.into_values() {
            if members.len() < 2 {
                continue;
            }
            // Canonical: the highest-degree node (most corroborated name);
            // ties break toward the oldest (lowest id).
            let canonical = *members
                .iter()
                .max_by_key(|&&i| (store.degree(ids[i]), std::cmp::Reverse(ids[i])))
                .unwrap();
            let kept = ids[canonical];
            let mut absorbed_names = Vec::new();
            for &m in &members {
                if m == canonical {
                    continue;
                }
                let migrated = merge_into(store, kept, ids[m]);
                report.edges_migrated += migrated;
                report.nodes_removed += 1;
                absorbed_names.push(names[m].clone());
            }
            // Record aliases on the canonical node.
            append_aliases(store, kept, &absorbed_names);
            report.clusters_merged += 1;
            report
                .merges
                .push((names[canonical].clone(), absorbed_names));
        }
    }
    report
}

/// Whether two nodes share at least one *discriminating* neighbour: an
/// IOC-kind node (file, path, hash, domain, IP, URL, email, registry key).
/// IOCs are essentially unique to a threat, so sharing one is strong
/// evidence of identity; hub neighbours (techniques, tools, software,
/// report/vendor provenance) are shared by unrelated threats all the time
/// and corroborate nothing.
fn shares_fact_neighbor(store: &GraphStore, a: NodeId, b: NodeId) -> bool {
    let is_ioc = |id: NodeId| {
        store.node(id).is_some_and(|n| {
            n.label
                .parse::<kg_ontology::EntityKind>()
                .map(|k| k.is_ioc())
                .unwrap_or(false)
        })
    };
    let a_neighbors: std::collections::HashSet<NodeId> =
        store.neighbors_iter(a).filter(|&n| is_ioc(n)).collect();
    if a_neighbors.is_empty() {
        return false;
    }
    store.neighbors_iter(b).any(|n| a_neighbors.contains(&n))
}

/// Migrate all edges of `absorbed` onto `kept`, merge properties, delete
/// `absorbed`. Returns the number of edges migrated.
fn merge_into(store: &mut GraphStore, kept: NodeId, absorbed: NodeId) -> usize {
    let out: Vec<(String, NodeId)> = store
        .outgoing(absorbed)
        .into_iter()
        .map(|e| (e.rel_type.clone(), e.to))
        .collect();
    let inc: Vec<(String, NodeId)> = store
        .incoming(absorbed)
        .into_iter()
        .map(|e| (e.rel_type.clone(), e.from))
        .collect();
    let mut migrated = 0;
    for (rel, to) in out {
        if to != kept && store.merge_edge(kept, &rel, to).is_ok() {
            migrated += 1;
        }
    }
    for (rel, from) in inc {
        if from != kept && store.merge_edge(from, &rel, kept).is_ok() {
            migrated += 1;
        }
    }
    // Unified attributes: keep the canonical node's values, fill gaps from
    // the absorbed node.
    let absorbed_props: Vec<(String, Value)> = store
        .node(absorbed)
        .map(|n| {
            n.props
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect()
        })
        .unwrap_or_default();
    if let Some(node) = store.node_mut(kept) {
        for (k, v) in absorbed_props {
            if k != "name" {
                node.props.entry(k).or_insert(v);
            }
        }
    }
    let _ = store.delete_node(absorbed);
    migrated
}

fn append_aliases(store: &mut GraphStore, node: NodeId, aliases: &[String]) {
    if aliases.is_empty() {
        return;
    }
    let Some(n) = store.node_mut(node) else {
        return;
    };
    let list = n
        .props
        .entry("aliases".to_owned())
        .or_insert_with(|| Value::List(Vec::new()));
    if let Value::List(xs) = list {
        for a in aliases {
            let v = Value::Text(a.clone());
            if !xs.contains(&v) {
                xs.push(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(names: &[(&str, &str)]) -> (GraphStore, Vec<NodeId>) {
        let mut g = GraphStore::new();
        let ids = names
            .iter()
            .map(|(label, name)| g.create_node(label, [("name", Value::from(*name))]))
            .collect();
        (g, ids)
    }

    #[test]
    fn string_similar_names_merge() {
        let (mut g, ids) = store_with(&[
            ("Malware", "wannacry"),
            ("Malware", "wannacrypt"),
            ("Malware", "emotet"),
        ]);
        let f = g.create_node("FileName", [("name", Value::from("x.exe"))]);
        let d = g.create_node("Domain", [("name", Value::from("kill.switch.com"))]);
        // The canonical-to-be (higher degree) drops a file; the alias node
        // carries a distinct fact that must survive migration.
        g.create_edge(ids[0], "DROP", f, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(ids[0], "RESOLVES", d, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(ids[1], "ENCRYPTS", f, [] as [(&str, Value); 0])
            .unwrap();
        let report = fuse(&mut g, &FusionConfig::default());
        assert_eq!(report.clusters_merged, 1);
        assert_eq!(report.nodes_removed, 1);
        assert_eq!(g.nodes_with_label("Malware").len(), 2);
        // The alias's ENCRYPTS edge survived onto the canonical node.
        let survivor = g
            .node_by_name("Malware", "wannacry")
            .expect("canonical kept");
        let rels: Vec<&str> = g
            .outgoing(survivor)
            .iter()
            .map(|e| e.rel_type.as_str())
            .collect();
        assert_eq!(rels.len(), 3, "{rels:?}");
        assert!(rels.contains(&"ENCRYPTS"));
        assert_eq!(report.edges_migrated, 1);
    }

    #[test]
    fn alias_table_merges_dissimilar_names() {
        let (mut g, _) = store_with(&[
            ("ThreatActor", "cozyduke"),
            ("ThreatActor", "APT29"),
            ("ThreatActor", "lazarus group"),
        ]);
        let config = FusionConfig {
            alias_groups: vec![vec!["cozyduke".into(), "apt29".into()]],
            ..FusionConfig::default()
        };
        let report = fuse(&mut g, &config);
        assert_eq!(report.clusters_merged, 1);
        assert_eq!(g.nodes_with_label("ThreatActor").len(), 2);
        // Without the table the names are too dissimilar.
        let (mut g2, _) = store_with(&[("ThreatActor", "cozyduke"), ("ThreatActor", "APT29")]);
        let r2 = fuse(&mut g2, &FusionConfig::default());
        assert_eq!(r2.clusters_merged, 0);
    }

    #[test]
    fn canonical_node_is_highest_degree_and_gains_aliases() {
        let (mut g, ids) = store_with(&[("Malware", "notpetya"), ("Malware", "not petya")]);
        let f = g.create_node("FileName", [("name", Value::from("a.exe"))]);
        let d = g.create_node("Domain", [("name", Value::from("x.evil.ru"))]);
        g.create_edge(ids[0], "DROP", f, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(ids[0], "CONNECTS_TO", d, [] as [(&str, Value); 0])
            .unwrap();
        // The alias corroborates via the shared dropped file.
        g.create_edge(ids[1], "DROP", f, [] as [(&str, Value); 0])
            .unwrap();
        let report = fuse(&mut g, &FusionConfig::default());
        assert_eq!(report.merges.len(), 1);
        assert_eq!(report.merges[0].0, "notpetya", "higher degree wins");
        let kept = g.node_by_name("Malware", "notpetya").unwrap();
        match &g.node(kept).unwrap().props["aliases"] {
            Value::List(xs) => assert_eq!(xs, &vec![Value::from("not petya")]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn different_labels_never_merge() {
        let (mut g, _) = store_with(&[("Malware", "mimikatz"), ("Tool", "mimikatz")]);
        let report = fuse(&mut g, &FusionConfig::default());
        assert_eq!(report.clusters_merged, 0);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn ioc_labels_are_exempt() {
        let (mut g, _) = store_with(&[
            ("HashMd5", "d41d8cd98f00b204e9800998ecf8427e"),
            ("HashMd5", "d41d8cd98f00b204e9800998ecf8427f"),
        ]);
        let report = fuse(&mut g, &FusionConfig::default());
        assert_eq!(
            report.clusters_merged, 0,
            "near-identical hashes must not fuse"
        );
    }

    #[test]
    fn edge_dedup_during_migration() {
        let (mut g, ids) = store_with(&[("Malware", "ryuk"), ("Malware", "ryuk ransomware")]);
        let f = g.create_node("FileName", [("name", Value::from("r.exe"))]);
        g.create_edge(ids[0], "DROP", f, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(ids[1], "DROP", f, [] as [(&str, Value); 0])
            .unwrap();
        let report = fuse(&mut g, &FusionConfig::default());
        assert_eq!(report.clusters_merged, 1);
        // Both nodes dropped the same file; after fusion exactly one edge.
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn fusion_is_idempotent() {
        let (mut g, _) = store_with(&[
            ("Malware", "wannacry"),
            ("Malware", "wannacrypt"),
            ("Malware", "wanna cry"),
        ]);
        let config = FusionConfig {
            require_shared_neighbor: false,
            ..FusionConfig::default()
        };
        let r1 = fuse(&mut g, &config);
        assert!(r1.nodes_removed > 0);
        let r2 = fuse(&mut g, &config);
        assert_eq!(r2.nodes_removed, 0);
        assert_eq!(r2.clusters_merged, 0);
    }
}
