//! Disjoint-set union (path compression + union by size).

/// A union-find structure over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets of `a` and `b`; returns false if already joined.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        true
    }

    /// Size of `x`'s set.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unions_and_finds() {
        let mut dsu = UnionFind::new(6);
        assert!(dsu.union(0, 1));
        assert!(dsu.union(1, 2));
        assert!(!dsu.union(0, 2), "already same set");
        assert_eq!(dsu.find(0), dsu.find(2));
        assert_ne!(dsu.find(0), dsu.find(3));
        assert_eq!(dsu.set_size(1), 3);
        assert_eq!(dsu.set_size(5), 1);
    }

    #[test]
    fn chain_compresses() {
        let mut dsu = UnionFind::new(100);
        for i in 0..99 {
            dsu.union(i, i + 1);
        }
        let root = dsu.find(0);
        for i in 0..100 {
            assert_eq!(dsu.find(i), root);
        }
        assert_eq!(dsu.set_size(42), 100);
    }
}
