//! Ingest-time entity canonicalisation against a snapshot of the canon table.
//!
//! The pipeline's parallel connector splits graph construction into a
//! *resolve* phase (N workers) and an *apply* phase (one writer). Workers
//! canonicalise entity names against a read-only [`CanonSnapshot`] — a frozen
//! prefix of the writer's [`CanonTable`] — and record *how* they resolved
//! each name as a [`ResolveBasis`]. The writer then commits each resolution
//! against the live table: exact and alias lookups are re-probed O(1), and
//! only the table suffix appended after the worker's snapshot is re-scanned
//! for similarity. Because the table is append-only and the resolution rule
//! is deterministic (exact > alias claim > best similarity by `(max score,
//! min entry index)`), the committed name equals what a sequential build
//! resolving against the always-live table would produce — for *any*
//! snapshot staleness. A worker prediction invalidated by entries appended
//! since its snapshot is a **conflict**: detected at commit, re-resolved
//! there, counted.
//!
//! Structural corroboration (shared-neighbour checks) stays in the post-hoc
//! [`crate::fuse`] pass — workers have no graph. The resolver therefore
//! ships disabled by default and, when enabled, should run with a stricter
//! threshold than offline fusion.

use crate::similarity;
use kg_graph::GraphStore;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Ingest-time canonicalisation policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResolverConfig {
    /// Master switch. Disabled (the default) means every name resolves to
    /// itself and the canon table stays empty — byte-identical to the
    /// pre-resolver connector.
    pub enabled: bool,
    /// Similarity threshold for resolving a new mention onto an existing
    /// canon entry. Stricter than offline fusion's, since there is no
    /// shared-neighbour corroboration at ingest time.
    pub threshold: f64,
    /// Labels eligible for canonicalisation (IOC labels never are: two
    /// different hashes are different facts even at edit distance 1).
    pub labels: Vec<String>,
    /// Analyst-curated alias groups, same semantics as
    /// [`crate::FusionConfig::alias_groups`].
    pub alias_groups: Vec<Vec<String>>,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            enabled: false,
            threshold: 0.92,
            labels: vec![
                "Malware".into(),
                "ThreatActor".into(),
                "Campaign".into(),
                "Tool".into(),
                "Software".into(),
            ],
            alias_groups: Vec::new(),
        }
    }
}

impl ResolverConfig {
    /// The default policy with canonicalisation switched on.
    pub fn standard() -> Self {
        ResolverConfig {
            enabled: true,
            ..ResolverConfig::default()
        }
    }
}

/// One canonical name the table has accepted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CanonEntry {
    pub label: String,
    pub name: String,
    /// [`similarity::normalize`] of `name`, precomputed.
    pub norm: String,
}

/// How a worker resolved one `(label, name)` against its snapshot. Travels
/// inside a `GraphDelta` so the writer can commit with O(1) + suffix work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResolveBasis {
    /// Resolver disabled or label not eligible: identity, nothing to commit.
    Exempt,
    /// The snapshot already held this exact `(label, name)` at `entry`.
    Exact { entry: usize },
    /// The name belongs to alias group `group`; `claimed` is the entry that
    /// had claimed the group in the snapshot (`None` = unclaimed there).
    Alias {
        group: usize,
        claimed: Option<usize>,
    },
    /// Best similarity match in the snapshot prefix.
    Similar { entry: usize, sim: f64 },
    /// Nothing in the snapshot matched — the name would become a new canon
    /// entry.
    New,
}

/// A worker-side resolution: the predicted canonical name, the evidence, and
/// the snapshot length it was computed against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Resolution {
    pub name: String,
    pub basis: ResolveBasis,
    pub upto: usize,
}

/// What the writer's commit decided.
#[derive(Debug, Clone, PartialEq)]
pub struct Committed {
    /// The authoritative canonical name.
    pub name: String,
    /// The worker's prediction was invalidated by entries appended since its
    /// snapshot and had to be re-resolved.
    pub conflict: bool,
}

#[derive(Debug, Default)]
struct SnapshotInner {
    entries: Vec<CanonEntry>,
    /// `label\0name` → entry index.
    by_exact: HashMap<String, usize>,
    /// alias group id → claiming entry index.
    claims: HashMap<usize, usize>,
}

/// A frozen, shareable view of a [`CanonTable`] prefix. Cloning is an `Arc`
/// bump; resolve workers hold one and swap it when the writer republishes.
#[derive(Debug, Clone, Default)]
pub struct CanonSnapshot {
    config: Arc<ResolverConfig>,
    alias_of: Arc<HashMap<String, usize>>,
    inner: Arc<SnapshotInner>,
}

impl CanonSnapshot {
    /// Number of entries visible to this snapshot (the commit-time `upto`).
    pub fn upto(&self) -> usize {
        self.inner.entries.len()
    }

    /// Resolve `(label, name)` against this snapshot. Deterministic rule:
    /// exact entry > claimed alias group > best similarity `(max score, min
    /// entry index)` at or above the threshold > the name itself.
    pub fn resolve(&self, label: &str, name: &str) -> Resolution {
        let upto = self.upto();
        if !applies(&self.config, label) {
            return Resolution {
                name: name.to_owned(),
                basis: ResolveBasis::Exempt,
                upto,
            };
        }
        if let Some(&entry) = self.inner.by_exact.get(&exact_key(label, name)) {
            return Resolution {
                name: name.to_owned(),
                basis: ResolveBasis::Exact { entry },
                upto,
            };
        }
        let norm = similarity::normalize(name);
        if let Some(&group) = self.alias_of.get(&norm) {
            let claimed = self.inner.claims.get(&group).copied();
            let resolved = claimed
                .map(|e| self.inner.entries[e].name.clone())
                .unwrap_or_else(|| name.to_owned());
            return Resolution {
                name: resolved,
                basis: ResolveBasis::Alias { group, claimed },
                upto,
            };
        }
        match best_similar(
            &self.inner.entries,
            0..upto,
            label,
            &norm,
            self.config.threshold,
        ) {
            Some((entry, sim)) => Resolution {
                name: self.inner.entries[entry].name.clone(),
                basis: ResolveBasis::Similar { entry, sim },
                upto,
            },
            None => Resolution {
                name: name.to_owned(),
                basis: ResolveBasis::New,
                upto,
            },
        }
    }
}

/// The writer's live, append-only canon table.
#[derive(Debug, Default)]
pub struct CanonTable {
    config: Arc<ResolverConfig>,
    /// Normalised alias name → group id (from config, immutable).
    alias_of: Arc<HashMap<String, usize>>,
    entries: Vec<CanonEntry>,
    by_exact: HashMap<String, usize>,
    claims: HashMap<usize, usize>,
}

impl CanonTable {
    pub fn new(config: ResolverConfig) -> Self {
        let mut alias_of = HashMap::new();
        for (gid, group) in config.alias_groups.iter().enumerate() {
            for name in group {
                alias_of.insert(similarity::normalize(name), gid);
            }
        }
        CanonTable {
            config: Arc::new(config),
            alias_of: Arc::new(alias_of),
            entries: Vec::new(),
            by_exact: HashMap::new(),
            claims: HashMap::new(),
        }
    }

    pub fn config(&self) -> &ResolverConfig {
        &self.config
    }

    /// Entries accepted so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Freeze the current table state into a shareable snapshot.
    pub fn snapshot(&self) -> CanonSnapshot {
        CanonSnapshot {
            config: Arc::clone(&self.config),
            alias_of: Arc::clone(&self.alias_of),
            inner: Arc::new(SnapshotInner {
                entries: self.entries.clone(),
                by_exact: self.by_exact.clone(),
                claims: self.claims.clone(),
            }),
        }
    }

    /// Seed the table from an existing graph (durable resume): canon-eligible
    /// nodes in creation order re-create the entries the original run
    /// appended, in the same order.
    pub fn seed_from_graph(&mut self, store: &GraphStore) {
        if !self.config.enabled {
            return;
        }
        for node in store.all_nodes() {
            if !self.config.labels.iter().any(|l| l == &node.label) {
                continue;
            }
            if let Some(name) = node.name() {
                let key = exact_key(&node.label, name);
                if !self.by_exact.contains_key(&key) {
                    self.push_entry(node.label.clone(), name.to_owned());
                }
            }
        }
    }

    /// Commit a worker resolution against the live table. Re-derives the
    /// authoritative resolution — exact and alias by O(1) live probes, and
    /// similarity as the better of the worker's snapshot-prefix best and a
    /// scan of only the entries appended since (`resolution.upto ..`). If
    /// the name stays canonical, it is appended to the table.
    pub fn commit(&mut self, label: &str, raw: &str, resolution: &Resolution) -> Committed {
        if !applies(&self.config, label) {
            return Committed {
                name: raw.to_owned(),
                conflict: false,
            };
        }
        let norm = similarity::normalize(raw);
        let final_name = if self.by_exact.contains_key(&exact_key(label, raw)) {
            raw.to_owned()
        } else if let Some(&group) = self.alias_of.get(&norm) {
            match self.claims.get(&group) {
                Some(&e) => self.entries[e].name.clone(),
                None => raw.to_owned(),
            }
        } else {
            let prefix_best = match resolution.basis {
                ResolveBasis::Similar { entry, sim } => Some((entry, sim)),
                _ => None,
            };
            let suffix_best = best_similar(
                &self.entries,
                resolution.upto..self.entries.len(),
                label,
                &norm,
                self.config.threshold,
            );
            match combine_best(prefix_best, suffix_best) {
                Some((entry, _)) => self.entries[entry].name.clone(),
                None => raw.to_owned(),
            }
        };
        if final_name == raw && !self.by_exact.contains_key(&exact_key(label, raw)) {
            self.push_entry(label.to_owned(), raw.to_owned());
        }
        let conflict = final_name != resolution.name;
        Committed {
            name: final_name,
            conflict,
        }
    }

    fn push_entry(&mut self, label: String, name: String) {
        let norm = similarity::normalize(&name);
        let idx = self.entries.len();
        self.by_exact.insert(exact_key(&label, &name), idx);
        if let Some(&gid) = self.alias_of.get(&norm) {
            self.claims.entry(gid).or_insert(idx);
        }
        self.entries.push(CanonEntry { label, name, norm });
    }
}

fn applies(config: &ResolverConfig, label: &str) -> bool {
    config.enabled && config.labels.iter().any(|l| l == label)
}

fn exact_key(label: &str, name: &str) -> String {
    format!("{label}\u{0}{name}")
}

/// Best similarity match for `norm` among `entries[range]` with `label`:
/// highest score wins, ties break toward the lowest entry index (so prefix
/// and suffix bests compose associatively to the full-table best).
fn best_similar(
    entries: &[CanonEntry],
    range: std::ops::Range<usize>,
    label: &str,
    norm: &str,
    threshold: f64,
) -> Option<(usize, f64)> {
    if norm.is_empty() {
        return None;
    }
    let mut best: Option<(usize, f64)> = None;
    for idx in range {
        let entry = &entries[idx];
        if entry.label != label || entry.norm.is_empty() {
            continue;
        }
        let (a, b) = (norm, entry.norm.as_str());
        let len_ratio = a.len().min(b.len()) as f64 / a.len().max(b.len()) as f64;
        if len_ratio < 0.4 && a.as_bytes()[0] != b.as_bytes()[0] {
            continue;
        }
        let sim = similarity::name_similarity(a, b);
        if sim < threshold {
            continue;
        }
        if best.is_none_or(|(_, s)| sim > s) {
            best = Some((idx, sim));
        }
    }
    best
}

fn combine_best(a: Option<(usize, f64)>, b: Option<(usize, f64)>) -> Option<(usize, f64)> {
    match (a, b) {
        (Some((ia, sa)), Some((ib, sb))) => {
            if sb > sa || (sb == sa && ib < ia) {
                Some((ib, sb))
            } else {
                Some((ia, sa))
            }
        }
        (x, None) => x,
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> CanonTable {
        CanonTable::new(ResolverConfig {
            alias_groups: vec![vec!["cozyduke".into(), "apt29".into()]],
            ..ResolverConfig::standard()
        })
    }

    fn commit_raw(table: &mut CanonTable, label: &str, name: &str) -> Committed {
        let resolution = table.snapshot().resolve(label, name);
        table.commit(label, name, &resolution)
    }

    #[test]
    fn disabled_resolver_is_identity_and_keeps_table_empty() {
        let mut t = CanonTable::new(ResolverConfig::default());
        let c = commit_raw(&mut t, "Malware", "wannacry");
        assert_eq!(c.name, "wannacry");
        assert!(!c.conflict);
        assert!(t.is_empty());
    }

    #[test]
    fn ineligible_labels_are_exempt() {
        let mut t = table();
        let c = commit_raw(&mut t, "HashMd5", "44d88612fea8a8f36de82e1278abb02f");
        assert_eq!(c.name, "44d88612fea8a8f36de82e1278abb02f");
        assert!(t.is_empty());
    }

    #[test]
    fn first_name_claims_then_similar_names_resolve_onto_it() {
        let mut t = table();
        assert_eq!(commit_raw(&mut t, "Malware", "wannacry").name, "wannacry");
        // Same name: exact hit, no new entry.
        assert_eq!(commit_raw(&mut t, "Malware", "wannacry").name, "wannacry");
        assert_eq!(t.len(), 1);
        // Similar spelling resolves onto the canonical.
        assert_eq!(commit_raw(&mut t, "Malware", "wanna-cry").name, "wannacry");
        assert_eq!(t.len(), 1);
        // Same name under a different label is a different entity.
        assert_eq!(commit_raw(&mut t, "Tool", "wannacry").name, "wannacry");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn alias_groups_resolve_without_similarity() {
        let mut t = table();
        assert_eq!(
            commit_raw(&mut t, "ThreatActor", "cozyduke").name,
            "cozyduke"
        );
        // No string similarity between the names, but the group claims it.
        assert_eq!(commit_raw(&mut t, "ThreatActor", "apt29").name, "cozyduke");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn stale_snapshot_conflict_is_reresolved_at_commit() {
        let mut t = table();
        let stale = t.snapshot(); // empty prefix
        assert_eq!(commit_raw(&mut t, "Malware", "wannacry").name, "wannacry");
        // A worker holding the stale snapshot misses the new entry...
        let r = stale.resolve("Malware", "wanacry");
        assert_eq!(r.name, "wanacry");
        assert_eq!(r.basis, ResolveBasis::New);
        // ...and the commit re-resolves it onto the live canonical.
        let c = t.commit("Malware", "wanacry", &r);
        assert_eq!(c.name, "wannacry");
        assert!(c.conflict);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn stale_and_fresh_snapshots_commit_identically() {
        // The digest-identity property in miniature: resolution committed
        // through any snapshot staleness equals live sequential resolution.
        let names = ["wannacry", "wanna-cry", "emotet", "emotett", "wannacry 2"];
        let mut live = table();
        let live_names: Vec<String> = names
            .iter()
            .map(|n| commit_raw(&mut live, "Malware", n).name)
            .collect();
        let mut stale = table();
        let frozen = stale.snapshot(); // never refreshed
        let stale_names: Vec<String> = names
            .iter()
            .map(|n| {
                let r = frozen.resolve("Malware", n);
                stale.commit("Malware", n, &r).name
            })
            .collect();
        assert_eq!(live_names, stale_names);
    }

    #[test]
    fn seed_from_graph_recreates_entries_in_creation_order() {
        use kg_graph::Value;
        let mut g = GraphStore::new();
        g.create_node("Malware", [("name", Value::from("wannacry"))]);
        g.create_node("HashMd5", [("name", Value::from("abcd"))]);
        g.create_node("ThreatActor", [("name", Value::from("cozyduke"))]);
        let mut t = table();
        t.seed_from_graph(&g);
        assert_eq!(t.len(), 2);
        // The seeded table resolves like the original live table would.
        assert_eq!(commit_raw(&mut t, "Malware", "wanna_cry").name, "wannacry");
        assert_eq!(commit_raw(&mut t, "ThreatActor", "apt29").name, "cozyduke");
    }
}
