//! String similarity for alias detection.

/// Normalise a name: lowercase, separators (space, `-`, `_`, `.`) removed.
/// "Wanna-Cry" and "wannacry" normalise identically; token structure is
/// still available to [`token_jaccard`] via the original strings.
pub fn normalize(name: &str) -> String {
    name.chars()
        .filter(|c| !matches!(c, ' ' | '-' | '_' | '.'))
        .flat_map(char::to_lowercase)
        .collect()
}

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push((i, j));
                break;
            }
        }
    }
    let m = matches_a.len() as f64;
    if m == 0.0 {
        return 0.0;
    }
    // Transpositions: matched characters out of order.
    let mut b_seq: Vec<usize> = matches_a.iter().map(|&(_, j)| j).collect();
    let mut transpositions = 0;
    let sorted = {
        let mut s = b_seq.clone();
        s.sort_unstable();
        s
    };
    for (x, y) in b_seq.iter().zip(&sorted) {
        if x != y {
            transpositions += 1;
        }
    }
    b_seq.clear();
    let t = transpositions as f64 / 2.0;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro–Winkler: Jaro boosted by the common prefix (up to 4 chars).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

/// Levenshtein edit distance.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalised Levenshtein similarity in `[0, 1]`.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

/// Jaccard similarity over whitespace tokens.
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    let sa: std::collections::HashSet<&str> = a.split_whitespace().collect();
    let sb: std::collections::HashSet<&str> = b.split_whitespace().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

/// Composite name similarity used by the fusion pass: the maximum of
/// Jaro–Winkler and normalised Levenshtein over *normalised* names, plus a
/// containment bonus ("notpetya" ⊂ "notpetya ransomware" normalised).
pub fn name_similarity(a_norm: &str, b_norm: &str) -> f64 {
    if a_norm == b_norm {
        return 1.0;
    }
    let base = jaro_winkler(a_norm, b_norm).max(levenshtein_similarity(a_norm, b_norm));
    let containment = if (a_norm.len() >= 4 && b_norm.contains(a_norm))
        || (b_norm.len() >= 4 && a_norm.contains(b_norm))
    {
        0.9
    } else {
        0.0
    };
    base.max(containment)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation() {
        assert_eq!(normalize("Wanna-Cry"), "wannacry");
        assert_eq!(normalize("wanna decryptor"), "wannadecryptor");
        assert_eq!(normalize("APT_29"), "apt29");
    }

    #[test]
    fn jaro_known_values() {
        assert!((jaro("martha", "marhta") - 0.944).abs() < 0.01);
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
    }

    #[test]
    fn winkler_boosts_prefix() {
        let j = jaro("wannacry", "wannacrypt");
        let jw = jaro_winkler("wannacry", "wannacrypt");
        assert!(jw > j);
        assert!(jw > 0.9);
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert!((levenshtein_similarity("abcd", "abce") - 0.75).abs() < 1e-9);
    }

    #[test]
    fn token_jaccard_values() {
        assert_eq!(token_jaccard("lazarus group", "lazarus group"), 1.0);
        assert!((token_jaccard("lazarus group", "lazarus team") - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(token_jaccard("", ""), 1.0);
    }

    #[test]
    fn composite_similarity_behaviour() {
        // Alias-like pairs clear the default 0.88 threshold...
        assert!(name_similarity(&normalize("wannacry"), &normalize("wannacrypt")) >= 0.88);
        assert!(name_similarity(&normalize("notpetya"), &normalize("not petya")) >= 0.88);
        assert!(
            name_similarity(&normalize("ryuk"), &normalize("ryuk ransomware")) >= 0.88,
            "containment"
        );
        // ... unrelated names do not.
        assert!(name_similarity(&normalize("emotet"), &normalize("wannacry")) < 0.88);
        assert!(name_similarity(&normalize("mirai"), &normalize("maze")) < 0.88);
        // Near-identical hex strings stay below threshold too? They differ in
        // one char out of 32 → very similar; fusion exempts IOC labels
        // instead of relying on the metric.
    }
}
