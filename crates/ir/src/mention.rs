//! Entity and relation mentions produced by the extractors (§2.4).

use kg_ontology::{EntityKind, RelationKind};
use serde::{Deserialize, Serialize};

/// Which extractor produced a mention — kept for provenance and for the
/// extraction-quality experiments (E3 separates CRF and regex output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MentionOrigin {
    /// Parsed from a structured field (HTML table / list) by a parser.
    Structured,
    /// Emitted by the IOC regex extractor.
    Regex,
    /// Emitted by the CRF sequence tagger.
    Ner,
}

/// One entity mention in a report's text or structured fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntityMention {
    /// Ontology kind of the mentioned entity.
    pub kind: EntityKind,
    /// Surface text exactly as it appeared.
    pub text: String,
    /// Byte offset of the mention start in [`crate::IntermediateCti::text`]
    /// (0 for structured-field mentions, which have no text span).
    pub start: usize,
    /// Byte offset one past the mention end.
    pub end: usize,
    /// Extractor confidence in `[0, 1]`.
    pub confidence: f64,
    /// Which extractor found it.
    pub origin: MentionOrigin,
}

impl EntityMention {
    /// A CRF-produced mention with default confidence 1.0.
    pub fn new(kind: EntityKind, text: impl Into<String>, start: usize, end: usize) -> Self {
        EntityMention {
            kind,
            text: text.into(),
            start,
            end,
            confidence: 1.0,
            origin: MentionOrigin::Ner,
        }
    }

    /// Builder-style origin override.
    pub fn with_origin(mut self, origin: MentionOrigin) -> Self {
        self.origin = origin;
        self
    }

    /// Builder-style confidence override.
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        self.confidence = confidence;
        self
    }

    /// Normalised form of the surface text used as the entity's canonical
    /// name when inserting into the knowledge graph: lower-cased with
    /// whitespace collapsed. IOC kinds keep their case-sensitive parts
    /// (paths, registry keys, hashes are case-normalised to lowercase too —
    /// hex digests and Windows paths are case-insensitive in practice).
    pub fn canonical_name(&self) -> String {
        let mut out = String::with_capacity(self.text.len());
        let mut last_space = false;
        for ch in self.text.trim().chars() {
            if ch.is_whitespace() {
                if !last_space {
                    out.push(' ');
                }
                last_space = true;
            } else {
                for lc in ch.to_lowercase() {
                    out.push(lc);
                }
                last_space = false;
            }
        }
        out
    }
}

/// One extracted relation between two entity mentions of the same report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationMention {
    /// Index of the subject mention in [`crate::IntermediateCti::mentions`].
    pub subject: usize,
    /// Index of the object mention.
    pub object: usize,
    /// The connecting verb lemma as extracted from text.
    pub verb: String,
    /// The ontology relation kind, once resolved against the schema (`None`
    /// until the connector resolves it).
    pub kind: Option<RelationKind>,
    /// Extractor confidence in `[0, 1]`.
    pub confidence: f64,
}

impl RelationMention {
    /// A relation mention with default confidence 1.0 and unresolved kind.
    pub fn new(subject: usize, object: usize, verb: impl Into<String>) -> Self {
        RelationMention {
            subject,
            object,
            verb: verb.into(),
            kind: None,
            confidence: 1.0,
        }
    }

    /// Builder-style kind override.
    pub fn with_kind(mut self, kind: RelationKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Builder-style confidence override.
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        self.confidence = confidence;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_name_normalises_case_and_space() {
        let m = EntityMention::new(EntityKind::ThreatActor, "  Cozy\t Duke ", 0, 10);
        assert_eq!(m.canonical_name(), "cozy duke");
    }

    #[test]
    fn canonical_name_keeps_ioc_punctuation() {
        let m = EntityMention::new(EntityKind::FilePath, r"C:\Windows\mssecsvc.exe", 0, 23);
        assert_eq!(m.canonical_name(), r"c:\windows\mssecsvc.exe");
    }

    #[test]
    fn builders_set_fields() {
        let m = EntityMention::new(EntityKind::Malware, "emotet", 5, 11)
            .with_origin(MentionOrigin::Regex)
            .with_confidence(0.5);
        assert_eq!(m.origin, MentionOrigin::Regex);
        assert_eq!(m.confidence, 0.5);
        let r = RelationMention::new(0, 1, "drop")
            .with_kind(RelationKind::Drop)
            .with_confidence(0.9);
        assert_eq!(r.kind, Some(RelationKind::Drop));
        assert_eq!(r.confidence, 0.9);
    }
}
