//! Intermediate representations flowing through the SecurityKG pipeline
//! (paper §2.1 "Unified knowledge representation" and §2.4).
//!
//! Three representations, in pipeline order:
//!
//! 1. [`RawReport`] — what a crawler fetches: one page of one report.
//! 2. [`IntermediateReport`] — what the *porter* produces: multi-page reports
//!    grouped, with metadata (id, source, title, original location,
//!    timestamps) attached.
//! 3. [`IntermediateCti`] — the *unified CTI schema*: structured fields parsed
//!    by source-dependent parsers plus entity/relation mentions filled in by
//!    source-independent extractors.
//!
//! All three are `serde`-serialisable; the pipeline ships them between stages
//! as bytes, which is what makes multi-host deployment possible (§2.1
//! "Scalability").

pub mod hash;
pub mod mention;
pub mod raw;
pub mod report;

pub use hash::{combine_hashes, fnv1a64, fnv1a64_extend};
pub use mention::{EntityMention, MentionOrigin, RelationMention};
pub use raw::{FetchStatus, RawReport};
pub use report::{IntermediateCti, IntermediateReport, ReportId, ReportMeta, Section, SourceId};

#[cfg(test)]
mod tests {
    use super::*;
    use kg_ontology::{EntityKind, ReportCategory};

    fn sample_cti() -> IntermediateCti {
        let meta = ReportMeta {
            id: ReportId::new("securelist", "wannacry-2017"),
            source: SourceId(3),
            vendor: "securelist".into(),
            title: "WannaCry ransomware attack".into(),
            url: "https://securelist.example/wannacry-2017".into(),
            fetched_at_ms: 1_600_000_000_000,
            published_at_ms: Some(1_494_806_400_000),
        };
        let mut cti = IntermediateCti::new(meta, ReportCategory::Malware);
        cti.text = "wannacry drops tasksche.exe".into();
        let m0 = cti.push_mention(EntityMention::new(EntityKind::Malware, "wannacry", 0, 8));
        let m1 = cti.push_mention(EntityMention::new(
            EntityKind::FileName,
            "tasksche.exe",
            15,
            27,
        ));
        cti.relations.push(RelationMention::new(m0, m1, "drop"));
        cti
    }

    #[test]
    fn full_pipeline_representation_round_trips_as_bytes() {
        let cti = sample_cti();
        let bytes = cti.to_bytes().unwrap();
        let back = IntermediateCti::from_bytes(&bytes).unwrap();
        assert_eq!(back, cti);
    }

    #[test]
    fn mention_indices_stay_valid() {
        let cti = sample_cti();
        for rel in &cti.relations {
            assert!(rel.subject < cti.mentions.len());
            assert!(rel.object < cti.mentions.len());
        }
    }
}
