//! The raw fetch result a crawler hands to the pipeline.

use crate::hash::fnv1a64;
use crate::report::SourceId;
use serde::{Deserialize, Serialize};

/// Outcome of one HTTP-like fetch in the simulated web substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FetchStatus {
    /// 200-class response with a body.
    Ok,
    /// 404: the page does not exist.
    NotFound,
    /// 500-class transient server error; the scheduler should retry.
    ServerError,
    /// The fetch exceeded the deadline; the scheduler should retry.
    TimedOut,
    /// 429: the source throttled us and told us when to come back.
    RateLimited {
        /// Milliseconds the server asks us to wait before retrying.
        retry_after_ms: u64,
    },
}

impl FetchStatus {
    /// Whether a retry could plausibly succeed.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            FetchStatus::ServerError | FetchStatus::TimedOut | FetchStatus::RateLimited { .. }
        )
    }

    /// Whether the fetch produced a usable body.
    pub fn is_ok(self) -> bool {
        matches!(self, FetchStatus::Ok)
    }
}

/// One fetched page of one OSCTI report.
///
/// Multi-page reports produce several `RawReport`s sharing `url` stem and
/// `report_key`; the porter groups them (paper §2.4: porters "group
/// multi-page reports").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawReport {
    /// The source this page was crawled from.
    pub source: SourceId,
    /// Human-readable source name (e.g. "securelist").
    pub source_name: String,
    /// Full URL of the fetched page.
    pub url: String,
    /// Source-local key identifying the report this page belongs to.
    pub report_key: String,
    /// 1-based page number within the report.
    pub page: u32,
    /// Total pages of the report, if the source exposes it.
    pub total_pages: Option<u32>,
    /// Fetch outcome.
    pub status: FetchStatus,
    /// Raw page body (HTML); empty unless `status.is_ok()`.
    pub body: String,
    /// Simulated epoch milliseconds at fetch time.
    pub fetched_at_ms: u64,
}

impl RawReport {
    /// Fingerprint of the body, for change detection on re-crawl.
    pub fn content_hash(&self) -> u64 {
        fnv1a64(self.body.as_bytes())
    }

    /// Serialise for cross-stage transport.
    pub fn to_bytes(&self) -> Result<Vec<u8>, serde_json::Error> {
        serde_json::to_vec(self)
    }

    /// Deserialise from cross-stage transport bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, serde_json::Error> {
        serde_json::from_slice(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(status: FetchStatus, body: &str) -> RawReport {
        RawReport {
            source: SourceId(1),
            source_name: "securelist".into(),
            url: "https://securelist.example/a?page=1".into(),
            report_key: "a".into(),
            page: 1,
            total_pages: Some(2),
            status,
            body: body.into(),
            fetched_at_ms: 42,
        }
    }

    #[test]
    fn retryability() {
        assert!(FetchStatus::ServerError.is_retryable());
        assert!(FetchStatus::TimedOut.is_retryable());
        assert!(FetchStatus::RateLimited {
            retry_after_ms: 750
        }
        .is_retryable());
        assert!(!FetchStatus::NotFound.is_retryable());
        assert!(!FetchStatus::Ok.is_retryable());
        assert!(FetchStatus::Ok.is_ok());
    }

    #[test]
    fn rate_limited_round_trips() {
        let mut page = raw(
            FetchStatus::RateLimited {
                retry_after_ms: 1_250,
            },
            "",
        );
        page.total_pages = None;
        let back = RawReport::from_bytes(&page.to_bytes().unwrap()).unwrap();
        assert_eq!(back, page);
    }

    #[test]
    fn content_hash_tracks_body() {
        let a = raw(FetchStatus::Ok, "<html>one</html>");
        let b = raw(FetchStatus::Ok, "<html>two</html>");
        assert_ne!(a.content_hash(), b.content_hash());
        assert_eq!(
            a.content_hash(),
            raw(FetchStatus::Ok, "<html>one</html>").content_hash()
        );
    }

    #[test]
    fn transport_round_trip() {
        let a = raw(FetchStatus::Ok, "<html>body</html>");
        let back = RawReport::from_bytes(&a.to_bytes().unwrap()).unwrap();
        assert_eq!(back, a);
    }
}
