//! Content hashing for deduplication.
//!
//! FNV-1a is implemented locally so the workspace needs no extra hashing
//! dependency; it is fast, stable across runs and platforms, and good enough
//! for content fingerprinting (the crawler additionally dedups by URL, so an
//! astronomically unlikely collision only suppresses a duplicate fetch).

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn distinct_inputs_differ() {
        assert_ne!(fnv1a64(b"wannacry"), fnv1a64(b"wannacrypt"));
    }
}
