//! Content hashing for deduplication.
//!
//! FNV-1a is implemented locally so the workspace needs no extra hashing
//! dependency; it is fast, stable across runs and platforms, and good enough
//! for content fingerprinting (the crawler additionally dedups by URL, so an
//! astronomically unlikely collision only suppresses a duplicate fetch).

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_extend(OFFSET, bytes)
}

/// Continue an FNV-1a hash over more bytes (streaming form of [`fnv1a64`]).
pub fn fnv1a64_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Order-sensitive combination of several hashes into one fingerprint.
///
/// Feeds each hash's little-endian bytes through FNV-1a, so swapping,
/// dropping or duplicating a constituent changes the result. Used to
/// fingerprint multi-page reports from their per-page body hashes.
pub fn combine_hashes<I: IntoIterator<Item = u64>>(hashes: I) -> u64 {
    let mut h = OFFSET;
    for part in hashes {
        h = fnv1a64_extend(h, &part.to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn distinct_inputs_differ() {
        assert_ne!(fnv1a64(b"wannacry"), fnv1a64(b"wannacrypt"));
    }

    #[test]
    fn extend_matches_one_shot() {
        let h = fnv1a64_extend(fnv1a64(b"foo"), b"bar");
        assert_eq!(h, fnv1a64(b"foobar"));
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = fnv1a64(b"page one");
        let b = fnv1a64(b"page two");
        assert_ne!(combine_hashes([a, b]), combine_hashes([b, a]));
        assert_ne!(combine_hashes([a]), combine_hashes([a, a]));
        assert_eq!(combine_hashes([a, b]), combine_hashes([a, b]));
        // A single-page report keeps a distinct fingerprint from its raw hash
        // being reused elsewhere only by construction, but must be stable.
        assert_eq!(combine_hashes([a]), combine_hashes([a]));
    }
}
