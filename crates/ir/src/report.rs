//! Report-level intermediate representations (porter and parser outputs).

use crate::mention::{EntityMention, RelationMention};
use kg_ontology::ReportCategory;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Numeric id of a data source (index into the source registry).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SourceId(pub u32);

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "src{}", self.0)
    }
}

/// Globally unique, stable report identifier: `source_name/report_key`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ReportId(String);

impl ReportId {
    /// Compose an id from a source name and a source-local report key.
    pub fn new(source_name: &str, report_key: &str) -> Self {
        ReportId(format!("{source_name}/{report_key}"))
    }

    /// The full id string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The source-name prefix.
    pub fn source_name(&self) -> &str {
        self.0.split_once('/').map_or(&self.0[..], |(s, _)| s)
    }

    /// The source-local key suffix.
    pub fn report_key(&self) -> &str {
        self.0.split_once('/').map_or("", |(_, k)| k)
    }
}

impl fmt::Display for ReportId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Porter output: a whole report with its pages grouped and metadata attached
/// (paper §2.4: porters "group multi-page reports and add metadata like ids,
/// sources, titles, and original file locations and timestamps").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntermediateReport {
    /// Stable report id.
    pub id: ReportId,
    /// Source the report came from.
    pub source: SourceId,
    /// Human-readable source name.
    pub source_name: String,
    /// Report title (from the first page's `<title>`, or empty).
    pub title: String,
    /// URL of the first page.
    pub url: String,
    /// Raw page bodies in page order.
    pub pages: Vec<String>,
    /// Simulated fetch time of the newest page.
    pub fetched_at_ms: u64,
    /// Original file location, if the crawler archived the body to disk.
    pub location: Option<String>,
    /// Source-specific metadata the porter preserved verbatim.
    pub metadata: BTreeMap<String, String>,
}

impl IntermediateReport {
    /// Concatenated raw body of all pages, in order.
    pub fn full_body(&self) -> String {
        self.pages.join("\n")
    }

    /// Serialise for cross-stage transport.
    pub fn to_bytes(&self) -> Result<Vec<u8>, serde_json::Error> {
        serde_json::to_vec(self)
    }

    /// Deserialise from cross-stage transport bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, serde_json::Error> {
        serde_json::from_slice(bytes)
    }
}

/// Report-level metadata carried into the unified CTI representation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportMeta {
    pub id: ReportId,
    pub source: SourceId,
    /// CTI vendor (source organisation) name.
    pub vendor: String,
    pub title: String,
    pub url: String,
    pub fetched_at_ms: u64,
    /// Publication date parsed from the page, if present.
    pub published_at_ms: Option<u64>,
}

/// One titled text section of a report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Section {
    pub heading: String,
    pub text: String,
}

/// The unified *intermediate CTI representation* (paper §2.1): one schema
/// covering all data sources. Source-dependent parsers fill the structured
/// half; source-independent extractors fill the mention half.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntermediateCti {
    /// Report metadata.
    pub meta: ReportMeta,
    /// Report category (malware / vulnerability / attack).
    pub category: ReportCategory,
    /// Key-value pairs parsed from structured fields (HTML tables, defn
    /// lists). Keys are source vocabulary, normalised to lowercase.
    pub structured: BTreeMap<String, String>,
    /// The unstructured body text, extracted from HTML, with markup removed.
    pub text: String,
    /// Titled sections, when the source structures its articles.
    pub sections: Vec<Section>,
    /// Entity mentions (filled by parsers for structured fields and by
    /// extractors for text).
    pub mentions: Vec<EntityMention>,
    /// Relation mentions between entries of `mentions`.
    pub relations: Vec<RelationMention>,
}

impl IntermediateCti {
    /// An empty representation for a report.
    pub fn new(meta: ReportMeta, category: ReportCategory) -> Self {
        IntermediateCti {
            meta,
            category,
            structured: BTreeMap::new(),
            text: String::new(),
            sections: Vec::new(),
            mentions: Vec::new(),
            relations: Vec::new(),
        }
    }

    /// Append a mention and return its index (for relation linking).
    pub fn push_mention(&mut self, mention: EntityMention) -> usize {
        self.mentions.push(mention);
        self.mentions.len() - 1
    }

    /// Whether every relation's subject/object index is in range.
    pub fn relations_are_consistent(&self) -> bool {
        self.relations
            .iter()
            .all(|r| r.subject < self.mentions.len() && r.object < self.mentions.len())
    }

    /// Serialise for cross-stage transport.
    pub fn to_bytes(&self) -> Result<Vec<u8>, serde_json::Error> {
        serde_json::to_vec(self)
    }

    /// Deserialise from cross-stage transport bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, serde_json::Error> {
        serde_json::from_slice(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_id_parts() {
        let id = ReportId::new("securelist", "2017/wannacry");
        assert_eq!(id.as_str(), "securelist/2017/wannacry");
        assert_eq!(id.source_name(), "securelist");
        assert_eq!(id.report_key(), "2017/wannacry");
    }

    #[test]
    fn intermediate_report_full_body_joins_pages() {
        let r = IntermediateReport {
            id: ReportId::new("s", "k"),
            source: SourceId(0),
            source_name: "s".into(),
            title: "t".into(),
            url: "u".into(),
            pages: vec!["<p>a</p>".into(), "<p>b</p>".into()],
            fetched_at_ms: 0,
            location: None,
            metadata: BTreeMap::new(),
        };
        assert_eq!(r.full_body(), "<p>a</p>\n<p>b</p>");
        let back = IntermediateReport::from_bytes(&r.to_bytes().unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn consistency_check_catches_dangling_relation() {
        let meta = ReportMeta {
            id: ReportId::new("s", "k"),
            source: SourceId(0),
            vendor: "s".into(),
            title: String::new(),
            url: String::new(),
            fetched_at_ms: 0,
            published_at_ms: None,
        };
        let mut cti = IntermediateCti::new(meta, ReportCategory::Attack);
        cti.relations.push(RelationMention::new(0, 1, "use"));
        assert!(!cti.relations_are_consistent());
    }
}
