//! Umbrella crate for the SecurityKG reproduction workspace.
//!
//! Re-exports the public crates so the root `examples/` and `tests/`
//! can use a single dependency surface.

pub use kg_corpus as corpus;
pub use kg_crawler as crawler;
pub use kg_extract as extract;
pub use kg_fusion as fusion;
pub use kg_graph as graph;
pub use kg_ir as ir;
pub use kg_layout as layout;
pub use kg_nlp as nlp;
pub use kg_ontology as ontology;
pub use kg_pipeline as pipeline;
pub use kg_search as search;
pub use securitykg as kg;
