//! Property tests for the sharded scatter-gather serving path: a
//! [`ShardSet`] partitioned over any shard count, driven by arbitrary
//! mutate/publish interleavings, must stay **indistinguishable** from the
//! unsharded full-rebuild oracle `KgSnapshot::build` — same search ranking
//! (bit-identical scores, so identical orderings), same Cypher rows, same
//! BFS frontiers, same error strings — and its per-shard partial digests
//! must reassemble the live graph's canonical digest at every all-shard
//! publish barrier.
//!
//! The op set deliberately includes deletes, renames (which migrate a
//! node's canon-key ownership — and its outgoing edges — across shards) and
//! arbitrary-endpoint edges (cross-shard by construction once hashing
//! spreads the nodes).

use proptest::prelude::*;
use securitykg::graph::{GraphStore, NodeId, Value};
use securitykg::search::SearchIndex;
use securitykg::serve::{KgSnapshot, Query, ShardSet, ShardedServe};

const LABELS: [&str; 3] = ["Malware", "Tool", "FileName"];
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Apply one encoded mutation to the live graph/index (same op alphabet as
/// `epoch_props`). Operands index into the *current* live sets, so every op
/// is valid by construction.
fn apply_op(graph: &mut GraphStore, search: &mut SearchIndex<NodeId>, op: u8, a: u8, b: u8) {
    let live_nodes: Vec<NodeId> = graph.all_nodes().map(|n| n.id).collect();
    let pick = |sel: u8| {
        live_nodes
            .get(sel as usize % live_nodes.len().max(1))
            .copied()
    };
    match op % 8 {
        0 => {
            let label = LABELS[a as usize % LABELS.len()];
            graph.merge_node(
                label,
                &format!("entity-{}", b % 12),
                [("seen", Value::from(1i64))],
            );
        }
        1 => {
            let label = LABELS[a as usize % LABELS.len()];
            graph.create_node(label, [("name", Value::from(format!("dup-{}", b % 6)))]);
        }
        2 => {
            if let Some(id) = pick(a) {
                let _ = graph.set_node_prop(id, "weight", Value::from(b as i64));
            }
        }
        3 => {
            // Rename: moves the node's canon key, so its shard ownership —
            // and that of every edge hanging off it — migrates.
            if let Some(id) = pick(a) {
                let _ = graph.set_node_prop(id, "name", Value::from(format!("renamed-{}", b % 10)));
            }
        }
        4 => {
            if let Some(id) = pick(a) {
                let _ = graph.delete_node(id);
            }
        }
        5 => {
            if let (Some(from), Some(to)) = (pick(a), pick(b.wrapping_add(1))) {
                let _ = graph.merge_edge(from, "RELATED_TO", to);
            }
        }
        6 => {
            let live_edges: Vec<_> = graph.all_edges().map(|e| e.id).collect();
            if !live_edges.is_empty() {
                let _ = graph.delete_edge(live_edges[a as usize % live_edges.len()]);
            }
        }
        _ => {
            if let Some(id) = pick(a) {
                search.add(id, &format!("report about entity-{} campaign", b % 12));
            }
        }
    }
}

/// Every query class the serving layer answers, including duplicate search
/// terms (the BM25 accumulation-order trap), aggregates, DISTINCT/SKIP/
/// LIMIT, multi-hop patterns, a write rejection and a parse error.
fn probe_queries() -> Vec<Query> {
    vec![
        Query::Search {
            q: "entity-3 entity-3 campaign".into(),
            k: 8,
        },
        Query::Search {
            q: "renamed-4 report".into(),
            k: 5,
        },
        Query::Cypher {
            q: "MATCH (n:Malware) RETURN count(*)".into(),
        },
        Query::Cypher {
            q: "MATCH (a)-[:RELATED_TO]->(b) RETURN a, b".into(),
        },
        Query::Cypher {
            q: "MATCH (n) RETURN DISTINCT n.name ORDER BY n.name SKIP 1 LIMIT 6".into(),
        },
        Query::Cypher {
            q: "MATCH (a)-[:RELATED_TO]->(b) RETURN a.name, count(b) ORDER BY count(b) DESC LIMIT 4"
                .into(),
        },
        Query::Cypher {
            q: "CREATE (n:Intruder {name: 'nope'})".into(),
        },
        Query::Cypher {
            q: "MATCH (((".into(),
        },
        Query::Expand {
            name: "entity-3".into(),
            hops: 2,
            cap: 20,
        },
        Query::Expand {
            name: "no-such-entity".into(),
            hops: 1,
            cap: 10,
        },
    ]
}

/// The differential oracle: at an all-shard barrier the scatter-gather
/// answer must byte-match the unsharded snapshot on every probe, and the
/// response's stamp vector must reassemble the live graph digest.
fn assert_matches_oracle(
    serve: &ShardedServe,
    oracle: &KgSnapshot,
    live_digest: u64,
) -> Result<(), TestCaseError> {
    for query in probe_queries() {
        let response = serve.execute(&query);
        prop_assert_eq!(
            &response.answer,
            &oracle.answer(&query),
            "answer diverged at {} shard(s) for {:?}",
            serve.shards(),
            query
        );
        prop_assert_eq!(response.vector.len(), serve.shards());
        prop_assert_eq!(
            response.combined_digest(),
            live_digest,
            "stamp vector does not reassemble the live digest at {} shard(s)",
            serve.shards()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random mutation sequences with all-shard publish barriers sprinkled
    /// between them: at every barrier, every shard count answers byte-
    /// identically to the N=1 rebuild oracle.
    #[test]
    fn sharded_answers_equal_the_unsharded_oracle(
        ops in prop::collection::vec((0u8..16, 0u8..32, 0u8..32), 1..45),
        freeze_every in 1usize..7
    ) {
        for shards in SHARD_COUNTS {
            let mut graph = GraphStore::new();
            let mut search: SearchIndex<NodeId> = SearchIndex::default();
            graph.merge_node("Malware", "entity-3", [("seen", Value::from(1i64))]);
            let mut set = ShardSet::new(&mut graph, &search, shards);
            let serve = ShardedServe::new(set.freeze_all(&mut graph, &search));
            for (i, (op, a, b)) in ops.iter().enumerate() {
                apply_op(&mut graph, &mut search, *op, *a, *b);
                if i % freeze_every == 0 {
                    for snapshot in set.freeze_all(&mut graph, &search) {
                        serve.publish_shard(snapshot);
                    }
                    let oracle = KgSnapshot::build(graph.clone(), search.clone());
                    assert_matches_oracle(&serve, &oracle, graph.digest())?;
                }
            }
            for snapshot in set.freeze_all(&mut graph, &search) {
                serve.publish_shard(snapshot);
            }
            let oracle = KgSnapshot::build(graph.clone(), search.clone());
            assert_matches_oracle(&serve, &oracle, graph.digest())?;
        }
    }

    /// Single-shard publishes interleaved with mutations: between barriers
    /// the cells intentionally hold mixed epochs (responses stay well-formed
    /// and stamped), and the next all-shard barrier snaps everything back to
    /// oracle equality — per-shard builders never miss deltas addressed to
    /// shards that published late.
    #[test]
    fn staggered_per_shard_publishes_converge_at_barriers(
        ops in prop::collection::vec((0u8..16, 0u8..32, 0u8..32), 1..40),
    ) {
        for shards in [2usize, 4, 7] {
            let mut graph = GraphStore::new();
            let mut search: SearchIndex<NodeId> = SearchIndex::default();
            graph.merge_node("Malware", "entity-3", [("seen", Value::from(1i64))]);
            let mut set = ShardSet::new(&mut graph, &search, shards);
            let serve = ShardedServe::new(set.freeze_all(&mut graph, &search));
            let mut versions = vec![0u64; shards];
            for (i, (op, a, b)) in ops.iter().enumerate() {
                apply_op(&mut graph, &mut search, *op, *a, *b);
                // Publish exactly one (rotating) shard: the others keep
                // serving stale epochs.
                let lone = i % shards;
                serve.publish_shard(set.freeze_shard(lone, &mut graph, &search));
                let response = serve.execute(&Query::Cypher {
                    q: "MATCH (n) RETURN count(*)".into(),
                });
                prop_assert_eq!(response.vector.len(), shards);
                for stamp in &response.vector {
                    // Versions are per-shard monotonic across the global
                    // publish counter.
                    prop_assert!(stamp.version >= versions[stamp.shard]);
                    versions[stamp.shard] = stamp.version;
                }
            }
            for snapshot in set.freeze_all(&mut graph, &search) {
                serve.publish_shard(snapshot);
            }
            let oracle = KgSnapshot::build(graph.clone(), search.clone());
            assert_matches_oracle(&serve, &oracle, graph.digest())?;
        }
    }

    /// Seeding the shard set at an arbitrary mid-history point (the
    /// recovery path) changes nothing: the first freeze already matches the
    /// oracle and reassembles the digest.
    #[test]
    fn late_seeded_shard_set_matches_oracle(
        pre in prop::collection::vec((0u8..16, 0u8..32, 0u8..32), 1..20),
        post in prop::collection::vec((0u8..16, 0u8..32, 0u8..32), 1..20)
    ) {
        let mut graph = GraphStore::new();
        let mut search: SearchIndex<NodeId> = SearchIndex::default();
        graph.merge_node("Malware", "entity-3", [("seen", Value::from(1i64))]);
        for (op, a, b) in pre {
            apply_op(&mut graph, &mut search, op, a, b);
        }
        let mut set = ShardSet::new(&mut graph, &search, 4);
        for (op, a, b) in post {
            apply_op(&mut graph, &mut search, op, a, b);
        }
        let serve = ShardedServe::new(set.freeze_all(&mut graph, &search));
        let oracle = KgSnapshot::build(graph.clone(), search.clone());
        assert_matches_oracle(&serve, &oracle, graph.digest())?;
    }
}
