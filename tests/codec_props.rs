//! Property tests for the `KGBIN001` binary payload codec, with the JSON
//! encoding as the differential oracle: for every generated segment the
//! binary round trip must agree byte-for-value with the serde_json round
//! trip (`binary decode ≡ JSON decode ≡ original`), the one-pass validator
//! must accept exactly what the decoder accepts, and adversarial inputs —
//! every truncation, strided bit flips — must come back as clean errors,
//! never a panic or an over-read.

use kg_codec::{
    decode_doc_segment, decode_doc_segment_auto, decode_edge_segment, decode_edge_segment_auto,
    decode_node_segment, decode_node_segment_auto, decode_posting_shard, decode_posting_shard_auto,
    encode_doc_segment, encode_edge_segment, encode_node_segment, encode_posting_shard,
    validate_payload,
};
use proptest::prelude::*;
use securitykg::graph::{Edge, EdgeId, Node, NodeId, Value};
use securitykg::search::ShardTerms;
use std::collections::BTreeMap;

/// Build one property value from generated primitives, covering every
/// `Value` variant (lists nest one level, enough to exercise recursion).
fn value_from(tag: u8, i: i64, s: &str) -> Value {
    match tag % 8 {
        0 => Value::Null,
        1 => Value::Bool(i & 1 == 1),
        2 => Value::Int(i),
        // Halves round-trip exactly through both JSON and f64 bits.
        3 => Value::Float((i % 1_000_000) as f64 / 2.0),
        4 => Value::Text(s.to_owned()),
        5 => Value::List(vec![Value::Int(i), Value::Text(s.to_owned()), Value::Null]),
        6 => Value::Node(NodeId(i as u64 & 0xFFFF)),
        _ => Value::Edge(EdgeId(i as u64 & 0xFFFF)),
    }
}

type PropSpec = (String, u8, i64, String);

fn props_from(specs: &[PropSpec]) -> BTreeMap<String, Value> {
    specs
        .iter()
        .map(|(key, tag, i, s)| (key.clone(), value_from(*tag, *i, s)))
        .collect()
}

type NodeSpec = (bool, u64, String, Vec<PropSpec>);

fn nodes_from(specs: &[NodeSpec]) -> Vec<Option<Node>> {
    specs
        .iter()
        .map(|(live, id, label, props)| {
            live.then(|| Node {
                id: NodeId(*id),
                label: label.clone(),
                props: props_from(props),
            })
        })
        .collect()
}

fn prop_spec() -> impl Strategy<Value = PropSpec> {
    ("[a-z_]{1,6}", any::<u8>(), any::<i64>(), "\\PC{0,12}")
}

fn node_spec() -> impl Strategy<Value = NodeSpec> {
    (
        any::<bool>(),
        any::<u64>(),
        "[A-Za-z]{1,10}",
        prop::collection::vec(prop_spec(), 0..5),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn node_segment_binary_decode_equals_json_decode(
        specs in prop::collection::vec(node_spec(), 0..20)
    ) {
        let slots = nodes_from(&specs);
        let bin = encode_node_segment(&slots);
        let json = serde_json::to_vec(&slots).expect("segment serialises");

        validate_payload(&bin).expect("canonical encoding validates");
        let from_bin = decode_node_segment(&bin).expect("canonical encoding decodes");
        let from_json: Vec<Option<Node>> =
            serde_json::from_slice(&json).expect("oracle decodes");
        prop_assert_eq!(&from_bin, &from_json);
        prop_assert_eq!(&from_bin, &slots);
        // The auto decoder sniffs both wire formats to the same value.
        prop_assert_eq!(decode_node_segment_auto(&bin).unwrap(), slots.clone());
        prop_assert_eq!(decode_node_segment_auto(&json).unwrap(), slots);
    }

    #[test]
    fn edge_segment_binary_decode_equals_json_decode(
        specs in prop::collection::vec(
            (any::<bool>(), (any::<u64>(), any::<u64>(), any::<u64>()), "[A-Z_]{1,12}",
             prop::collection::vec(prop_spec(), 0..4)),
            0..20,
        )
    ) {
        let slots: Vec<Option<Edge>> = specs
            .iter()
            .map(|(live, (id, from, to), rel, props)| {
                live.then(|| Edge {
                    id: EdgeId(*id),
                    from: NodeId(*from),
                    to: NodeId(*to),
                    rel_type: rel.clone(),
                    props: props_from(props),
                })
            })
            .collect();
        let bin = encode_edge_segment(&slots);
        let json = serde_json::to_vec(&slots).expect("segment serialises");

        validate_payload(&bin).expect("canonical encoding validates");
        let from_bin = decode_edge_segment(&bin).expect("canonical encoding decodes");
        let from_json: Vec<Option<Edge>> =
            serde_json::from_slice(&json).expect("oracle decodes");
        prop_assert_eq!(&from_bin, &from_json);
        prop_assert_eq!(&from_bin, &slots);
        prop_assert_eq!(decode_edge_segment_auto(&json).unwrap(), slots);
    }

    #[test]
    fn doc_segment_and_shard_binary_decode_equals_json_decode(
        docs in prop::collection::vec((any::<u64>(), any::<u32>()), 0..256),
        terms in prop::collection::vec(
            ("[a-z]{1,8}", prop::collection::vec((1u32..50, 1u32..9), 0..6)),
            0..12,
        )
    ) {
        let docs: Vec<(NodeId, u32)> =
            docs.into_iter().map(|(id, n)| (NodeId(id), n)).collect();
        let bin = encode_doc_segment(&docs);
        validate_payload(&bin).expect("doc segment validates");
        prop_assert_eq!(decode_doc_segment(&bin).unwrap(), docs.clone());
        let json = serde_json::to_vec(&docs).expect("doc segment serialises");
        prop_assert_eq!(decode_doc_segment_auto(&json).unwrap(), docs);

        // Posting shards need strictly-ascending unique terms and ascending
        // docs per term: dedup via a BTreeMap and prefix-sum the doc gaps.
        let shard: ShardTerms = terms
            .into_iter()
            .map(|(term, posts)| {
                let mut doc = 0u32;
                let postings = posts
                    .into_iter()
                    .map(|(gap, tf)| {
                        doc += gap;
                        (doc, tf)
                    })
                    .collect();
                (term, postings)
            })
            .collect::<BTreeMap<String, Vec<(u32, u32)>>>()
            .into_iter()
            .collect();
        let bin = encode_posting_shard(&shard);
        validate_payload(&bin).expect("shard validates");
        prop_assert_eq!(decode_posting_shard(&bin).unwrap(), shard.clone());
        let json = serde_json::to_vec(&shard).expect("shard serialises");
        let from_json: ShardTerms = serde_json::from_slice(&json).expect("oracle decodes");
        prop_assert_eq!(decode_posting_shard_auto(&bin).unwrap(), from_json);
    }

    #[test]
    fn truncations_and_bit_flips_err_cleanly_never_panic(
        specs in prop::collection::vec(node_spec(), 1..10)
    ) {
        let slots = nodes_from(&specs);
        let bin = encode_node_segment(&slots);
        // Every truncation must be a clean error (the payload is
        // length-exact: nothing shorter can be structurally complete).
        for cut in 0..bin.len() {
            prop_assert!(decode_node_segment(&bin[..cut]).is_err(), "cut {}", cut);
            prop_assert!(validate_payload(&bin[..cut]).is_err(), "cut {}", cut);
        }
        // Strided bit flips: the frame checksum upstream owns integrity, so
        // a flip may still decode — but it must never panic or over-read,
        // and validator and decoder must agree on acceptance.
        for byte in (0..bin.len()).step_by(3) {
            let mut flipped = bin.clone();
            flipped[byte] ^= 0x10;
            let decoded = decode_node_segment(&flipped);
            let validated = validate_payload(&flipped);
            prop_assert_eq!(decoded.is_ok(), validated.is_ok(), "byte {}", byte);
        }
    }
}
