//! Concurrency stress over the serving layer: one ingest writer publishing
//! snapshots while several readers hammer mixed search/Cypher/expand
//! queries. The invariants under test:
//!
//! - **No torn reads**: every response is stamped with a digest that was
//!   actually published, and the pinned snapshot's node/edge counts match
//!   what the writer registered for exactly that digest.
//! - **Answer consistency**: answers reference only nodes that exist in the
//!   pinned snapshot, and cached answers equal fresh evaluation on it.
//! - **No writer starvation**: the publish count advances to the writer's
//!   full target while readers run flat out.
//! - **Plan-cache epoch survival**: each distinct valid Cypher text compiles
//!   exactly once across the whole run — publishing new snapshots never
//!   invalidates a compiled plan, so `compiles` stays flat while epochs roll.
//!
//! Reader count defaults to 4 and can be raised via `SERVE_STRESS_READERS`
//! (scripts/check.sh runs an elevated pass).

use securitykg::corpus::WorldConfig;
use securitykg::serve::{KgServe, KgSnapshot, Query};
use securitykg::{SecurityKg, SystemConfig, TrainingConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

fn built_kg() -> SecurityKg {
    let config = SystemConfig {
        world: WorldConfig::tiny(7),
        articles_per_source: 4,
        training: TrainingConfig {
            articles: 40,
            ..TrainingConfig::default()
        },
        ..SystemConfig::default()
    };
    let mut kg = SecurityKg::bootstrap_without_ner(&config);
    kg.crawl_and_ingest();
    kg
}

/// A mixed query workload drawn from the built graph: keyword searches,
/// Cypher (valid and deliberately malformed), k-hop expansions.
fn mixed_queries(kg: &SecurityKg) -> Vec<Query> {
    let name_of = |id| {
        kg.graph()
            .node(id)
            .and_then(|n| n.name())
            .unwrap_or("")
            .to_owned()
    };
    let mut queries = vec![
        Query::Cypher {
            q: "MATCH (v:CtiVendor)-[:PUBLISHES]->(r) RETURN count(*)".into(),
        },
        Query::Cypher {
            q: "MATCH (m:Malware)-[:DROP]->(f:FileName) RETURN m, f LIMIT 10".into(),
        },
        Query::Cypher {
            q: "THIS IS NOT CYPHER".into(),
        },
        Query::Search {
            q: "ransomware campaign".into(),
            k: 10,
        },
    ];
    for id in kg.graph().nodes_with_label("Malware").into_iter().take(3) {
        queries.push(Query::Search {
            q: name_of(id),
            k: 8,
        });
        queries.push(Query::Expand {
            name: name_of(id),
            hops: 2,
            cap: 30,
        });
    }
    for id in kg.graph().nodes_with_label("CtiVendor").into_iter().take(2) {
        queries.push(Query::Search {
            q: name_of(id),
            k: 5,
        });
    }
    queries
}

#[test]
fn readers_never_observe_torn_state_and_writer_is_never_starved() {
    const PUBLISHES: u64 = 10;
    let readers: usize = std::env::var("SERVE_STRESS_READERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
        .max(4);

    let kg = built_kg();
    let queries = mixed_queries(&kg);
    let base_graph = kg.graph().clone();
    let base_search = kg.search_index().clone();

    // Digest → (nodes, edges), registered by the writer *before* each
    // publish, so a reader can always validate whatever epoch it pinned.
    let published: Mutex<HashMap<u64, (usize, usize)>> = Mutex::new(HashMap::new());
    let first = kg.serving_snapshot();
    published
        .lock()
        .unwrap()
        .insert(first.digest(), (first.node_count(), first.edge_count()));
    let serve = KgServe::new(first, 256);
    let writer_done = AtomicBool::new(false);

    let reader_counts: Vec<u64> = std::thread::scope(|scope| {
        // ---- the writer: keeps ingesting (here: merging new entities) and
        // publishing fresh epochs.
        scope.spawn(|| {
            let mut graph = base_graph;
            let mut search = base_search;
            for i in 0..PUBLISHES {
                let m = graph.merge_node(
                    "Malware",
                    &format!("stress-malware-{i}"),
                    [("vendor", securitykg::graph::Value::from("stress"))],
                );
                let f = graph.create_node(
                    "FileName",
                    [(
                        "name",
                        securitykg::graph::Value::from(format!("stress-{i}.exe")),
                    )],
                );
                graph.merge_edge(m, "DROP", f).unwrap();
                search.add(m, &format!("stress malware {i} drops stress-{i}.exe"));
                let snapshot = KgSnapshot::build(graph.clone(), search.clone());
                published.lock().unwrap().insert(
                    snapshot.digest(),
                    (snapshot.node_count(), snapshot.edge_count()),
                );
                serve.publish(snapshot);
                // Give readers a slice of the core between epochs.
                std::thread::sleep(Duration::from_millis(2));
            }
            writer_done.store(true, Ordering::SeqCst);
        });

        // ---- the readers: hammer the mixed workload until the writer is
        // done (and always at least 3 full passes).
        let mut handles = Vec::new();
        for reader in 0..readers {
            let serve = &serve;
            let queries = &queries;
            let published = &published;
            let writer_done = &writer_done;
            handles.push(scope.spawn(move || {
                let mut executed = 0u64;
                let mut passes = 0u32;
                while passes < 3 || !writer_done.load(Ordering::SeqCst) {
                    for (i, query) in queries.iter().enumerate() {
                        let snap = serve.pin();
                        let response = serve.execute_on(&snap, query);
                        executed += 1;

                        // The response is stamped with the pinned epoch.
                        assert_eq!(response.digest, snap.digest());
                        // ...which is exactly one registered publication,
                        // and the whole snapshot is coherent with it.
                        let registered = published
                            .lock()
                            .unwrap()
                            .get(&response.digest)
                            .copied()
                            .unwrap_or_else(|| {
                                panic!("unpublished digest {:016x}", response.digest)
                            });
                        assert_eq!(
                            registered,
                            (snap.node_count(), snap.edge_count()),
                            "torn snapshot for digest {:016x}",
                            response.digest
                        );
                        // Answers reference only nodes of that epoch.
                        for id in response.answer.node_ids() {
                            assert!(
                                snap.graph().node(id).is_some(),
                                "answer leaked node {id:?} missing from its snapshot"
                            );
                        }
                        // Cached answers equal fresh evaluation (sampled).
                        if (i + reader) % 5 == 0 {
                            assert_eq!(response.answer, snap.answer(query));
                        }
                    }
                    passes += 1;
                }
                executed
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("reader"))
            .collect()
    });

    // Writer was never starved: every planned epoch went out.
    let stats = serve.stats();
    assert_eq!(stats.publishes, 1 + PUBLISHES, "writer starved");
    // Every reader made progress and the workload actually hit the cache.
    assert!(reader_counts.iter().all(|&n| n > 0), "{reader_counts:?}");
    assert_eq!(stats.queries, reader_counts.iter().sum::<u64>());
    assert!(stats.cache.hits > 0, "{:?}", stats.cache);
    // Zero recompiles across publishes: the workload carries exactly two
    // valid Cypher texts, and each compiled once for the entire run — every
    // later execution on every epoch re-bound the cached plan. (The
    // deliberately malformed query misses every pass but never compiles, so
    // it can't inflate the counter.)
    assert_eq!(stats.plans.compiles, 2, "{:?}", stats.plans);
    assert_eq!(stats.plans.entries, 2, "{:?}", stats.plans);
    assert!(stats.plans.hits > stats.plans.compiles, "{:?}", stats.plans);
    // The final epoch is the writer's last publication.
    let last = serve.pin();
    assert_eq!(last.version(), 1 + PUBLISHES);
    assert!(last
        .graph()
        .node_by_name("Malware", &format!("stress-malware-{}", PUBLISHES - 1))
        .is_some());
}

/// The same torn-read/starvation battery, but the writer publishes through
/// the O(delta) incremental path ([`securitykg::serve::EpochBuilder`]) and
/// every epoch is digest-checked against a full `KgSnapshot::build` of the
/// same graph state before it goes out — readers pinned on older epochs keep
/// working while the builder patches digest and adjacency in place.
#[test]
fn incremental_writer_publishes_while_readers_pinned() {
    use securitykg::serve::{EpochBuilder, SnapshotMode};
    const PUBLISHES: u64 = 10;
    let readers: usize = std::env::var("SERVE_STRESS_READERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
        .max(4);

    let kg = built_kg();
    let queries = mixed_queries(&kg);
    let base_graph = kg.graph().clone();
    let base_search = kg.search_index().clone();

    let published: Mutex<HashMap<u64, (usize, usize)>> = Mutex::new(HashMap::new());
    let first = kg.serving_snapshot();
    published
        .lock()
        .unwrap()
        .insert(first.digest(), (first.node_count(), first.edge_count()));
    let serve = KgServe::new(first, 256);
    let writer_done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // ---- the writer: mutates (adds, renames, deletes) and freezes
        // every epoch incrementally.
        scope.spawn(|| {
            let mut graph = base_graph;
            let search = base_search;
            let mut epoch = EpochBuilder::new(&mut graph);
            let mut victims = Vec::new();
            for i in 0..PUBLISHES {
                let m = graph.merge_node(
                    "Malware",
                    &format!("inc-malware-{i}"),
                    [("vendor", securitykg::graph::Value::from("inc"))],
                );
                let f = graph.create_node(
                    "FileName",
                    [(
                        "name",
                        securitykg::graph::Value::from(format!("inc-{i}.exe")),
                    )],
                );
                graph.merge_edge(m, "DROP", f).unwrap();
                victims.push(f);
                // Every third epoch also deletes an earlier node, so the
                // incremental path covers removals under concurrency.
                if i % 3 == 2 {
                    let victim = victims.remove(0);
                    graph.delete_node(victim).unwrap();
                }
                let snapshot = epoch.freeze(&mut graph, &search);
                assert_eq!(snapshot.mode(), SnapshotMode::Incremental);
                // The incremental epoch is digest-identical to a full
                // rebuild of the same state — checked on every publish.
                assert_eq!(snapshot.digest(), graph.digest());
                published.lock().unwrap().insert(
                    snapshot.digest(),
                    (snapshot.node_count(), snapshot.edge_count()),
                );
                serve.publish(snapshot);
                std::thread::sleep(Duration::from_millis(2));
            }
            writer_done.store(true, Ordering::SeqCst);
        });

        // ---- the readers: same torn-read battery as the full-build test.
        let mut handles = Vec::new();
        for reader in 0..readers {
            let serve = &serve;
            let queries = &queries;
            let published = &published;
            let writer_done = &writer_done;
            handles.push(scope.spawn(move || {
                let mut passes = 0u32;
                while passes < 3 || !writer_done.load(Ordering::SeqCst) {
                    for (i, query) in queries.iter().enumerate() {
                        let snap = serve.pin();
                        let response = serve.execute_on(&snap, query);
                        assert_eq!(response.digest, snap.digest());
                        let registered = published
                            .lock()
                            .unwrap()
                            .get(&response.digest)
                            .copied()
                            .unwrap_or_else(|| {
                                panic!("unpublished digest {:016x}", response.digest)
                            });
                        assert_eq!(
                            registered,
                            (snap.node_count(), snap.edge_count()),
                            "torn snapshot for digest {:016x}",
                            response.digest
                        );
                        for id in response.answer.node_ids() {
                            assert!(snap.graph().node(id).is_some());
                        }
                        if (i + reader) % 5 == 0 {
                            assert_eq!(response.answer, snap.answer(query));
                        }
                    }
                    passes += 1;
                }
            }));
        }
        for handle in handles {
            handle.join().expect("reader");
        }
    });

    let stats = serve.stats();
    assert_eq!(stats.publishes, 1 + PUBLISHES, "writer starved");
    // Incremental publishes don't invalidate compiled plans either.
    assert_eq!(stats.plans.compiles, 2, "{:?}", stats.plans);
    let last = serve.pin();
    assert_eq!(last.version(), 1 + PUBLISHES);
    assert!(last
        .graph()
        .node_by_name("Malware", &format!("inc-malware-{}", PUBLISHES - 1))
        .is_some());
    // Publish trace carries the new observability fields.
    assert!(serve.trace().snapshot().iter().any(|r| matches!(
        r.event,
        securitykg::pipeline::TraceEvent::SnapshotPublished {
            mode: "incremental",
            ..
        }
    )));
    serve.record_plan_cache_report();
    assert!(serve.trace().snapshot().iter().any(|r| matches!(
        r.event,
        securitykg::pipeline::TraceEvent::PlanCacheReport { compiles: 2, .. }
    )));
}

/// The scale-out variant of the torn-read battery: one writer keeps
/// mutating the graph and republishing **one shard at a time** while ≥4
/// readers hammer scatter-gather queries. Readers see mixed per-shard
/// epochs by design; the invariants are:
///
/// - **No torn cross-shard reads**: every `(shard, version, digest)` stamp
///   in a response's vector is one the writer registered *before* that
///   publish — a reader can never observe a shard state that was not a
///   published epoch of exactly that shard.
/// - **Per-shard monotonicity**: a reader's successive responses never see
///   a shard's version go backwards.
/// - **No starvation**: the writer lands every planned per-shard epoch and
///   every reader makes progress.
/// - **Barrier coherence**: after the writer's final all-shard barrier, the
///   pinned vector's partial digests reassemble the live graph digest.
#[test]
fn sharded_readers_never_observe_unpublished_shard_epochs() {
    use securitykg::serve::{combined_digest, ShardSet, ShardedServe};
    use std::sync::atomic::AtomicU64;

    const SHARDS: usize = 4;
    const PUBLISHES: u64 = 24;
    let readers: usize = std::env::var("SERVE_STRESS_READERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
        .max(4);

    let kg = built_kg();
    let queries = mixed_queries(&kg);
    let mut graph = kg.graph().clone();
    let mut search = kg.search_index().clone();

    // (shard, version) → partial digest, registered by the writer *before*
    // each publish; versions are deterministic under a single writer (the
    // initial snapshots take 1..=SHARDS, then the global counter advances
    // one per publish).
    let published: Mutex<HashMap<(usize, u64), u64>> = Mutex::new(HashMap::new());
    let mut set = ShardSet::new(&mut graph, &search, SHARDS);
    let initial = set.freeze_all(&mut graph, &search);
    {
        let mut registry = published.lock().unwrap();
        for (i, snapshot) in initial.iter().enumerate() {
            registry.insert((snapshot.shard(), i as u64 + 1), snapshot.partial_digest());
        }
    }
    let serve = ShardedServe::new(initial);
    let writer_done = AtomicBool::new(false);
    let final_digest = AtomicU64::new(0);

    let reader_counts: Vec<u64> = std::thread::scope(|scope| {
        // ---- the writer: mutate, then freeze + publish a single rotating
        // shard per epoch; finish with an all-shard barrier.
        scope.spawn(|| {
            let mut next_version = SHARDS as u64;
            let mut victims = Vec::new();
            for i in 0..PUBLISHES {
                let m = graph.merge_node(
                    "Malware",
                    &format!("shard-stress-{i}"),
                    [("vendor", securitykg::graph::Value::from("stress"))],
                );
                let f = graph.create_node(
                    "FileName",
                    [(
                        "name",
                        securitykg::graph::Value::from(format!("shard-{i}.exe")),
                    )],
                );
                graph.merge_edge(m, "DROP", f).unwrap();
                search.add(m, &format!("sharded stress malware {i}"));
                victims.push(f);
                if i % 3 == 2 {
                    let victim = victims.remove(0);
                    graph.delete_node(victim).unwrap();
                }
                let snapshot = set.freeze_shard(i as usize % SHARDS, &mut graph, &search);
                next_version += 1;
                published
                    .lock()
                    .unwrap()
                    .insert((snapshot.shard(), next_version), snapshot.partial_digest());
                let version = serve.publish_shard(snapshot);
                assert_eq!(version, next_version, "publish numbering raced");
                std::thread::sleep(Duration::from_millis(1));
            }
            // Final barrier: bring every shard to the latest state.
            for snapshot in set.freeze_all(&mut graph, &search) {
                next_version += 1;
                published
                    .lock()
                    .unwrap()
                    .insert((snapshot.shard(), next_version), snapshot.partial_digest());
                serve.publish_shard(snapshot);
            }
            final_digest.store(graph.digest(), Ordering::SeqCst);
            writer_done.store(true, Ordering::SeqCst);
        });

        // ---- the readers: every response's stamp vector must consist of
        // registered per-shard epochs, at non-decreasing versions.
        let mut handles = Vec::new();
        for _reader in 0..readers {
            let serve = &serve;
            let queries = &queries;
            let published = &published;
            let writer_done = &writer_done;
            handles.push(scope.spawn(move || {
                let mut executed = 0u64;
                let mut passes = 0u32;
                let mut seen = [0u64; SHARDS];
                while passes < 3 || !writer_done.load(Ordering::SeqCst) {
                    for query in queries.iter() {
                        let pins = serve.pin_all();
                        let response = serve.execute_on(&pins, query);
                        executed += 1;
                        assert_eq!(response.vector.len(), SHARDS);
                        for stamp in &response.vector {
                            let registered = published
                                .lock()
                                .unwrap()
                                .get(&(stamp.shard, stamp.version))
                                .copied()
                                .unwrap_or_else(|| {
                                    panic!(
                                        "shard {} v{} was never published",
                                        stamp.shard, stamp.version
                                    )
                                });
                            assert_eq!(
                                registered, stamp.digest,
                                "torn shard {} at v{}",
                                stamp.shard, stamp.version
                            );
                            assert!(
                                stamp.version >= seen[stamp.shard],
                                "shard {} went backwards: v{} after v{}",
                                stamp.shard,
                                stamp.version,
                                seen[stamp.shard]
                            );
                            seen[stamp.shard] = stamp.version;
                        }
                        // Answers reference only nodes present in the
                        // pinned replicas.
                        for id in response.answer.node_ids() {
                            assert!(
                                pins.iter().any(|p| p.graph().node(id).is_some()),
                                "answer leaked node {id:?} missing from every pin"
                            );
                        }
                    }
                    passes += 1;
                }
                executed
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("reader"))
            .collect()
    });

    // No starvation: every planned epoch (initial + rotating + barrier)
    // went out, and every reader made progress.
    let stats = serve.stats();
    assert_eq!(
        stats.publishes,
        SHARDS as u64 + PUBLISHES + SHARDS as u64,
        "writer starved"
    );
    assert!(reader_counts.iter().all(|&n| n > 0), "{reader_counts:?}");
    assert_eq!(stats.queries, reader_counts.iter().sum::<u64>());
    // After the barrier the pinned vector reassembles the live digest.
    assert_eq!(
        combined_digest(&serve.pin_all()),
        final_digest.load(Ordering::SeqCst)
    );
    // The last rotating epoch's mutation is visible post-barrier.
    let wanted = format!("shard-stress-{}", PUBLISHES - 1);
    assert!(serve
        .pin_all()
        .iter()
        .any(|p| p.graph().node_by_name("Malware", &wanted).is_some()));
}

#[test]
fn held_pins_do_not_block_publication() {
    let kg = built_kg();
    let first = kg.serving_snapshot();
    let digest_v1 = first.digest();
    let serve = KgServe::new(first, 64);

    // A long-lived analyst session pins the first epoch...
    let session = serve.pin();
    // ...while the writer publishes several more.
    let mut graph = kg.graph().clone();
    for i in 0..3 {
        graph.merge_node("Tool", &format!("pin-tool-{i}"), [] as [(&str, &str); 0]);
        serve.publish(KgSnapshot::build(graph.clone(), kg.search_index().clone()));
    }
    assert_eq!(serve.stats().publishes, 4);
    // The session still sees its original epoch, fully queryable.
    assert_eq!(session.digest(), digest_v1);
    assert!(session.graph().node_by_name("Tool", "pin-tool-0").is_none());
    assert!(serve
        .pin()
        .graph()
        .node_by_name("Tool", "pin-tool-2")
        .is_some());
}
