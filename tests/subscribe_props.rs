//! Property tests for standing queries over the epoch delta stream: for
//! arbitrary interleavings of graph mutations and epoch publishes, the
//! **incremental** subscription evaluation (touched elements only, via the
//! hub's delta-log cursor) must produce exactly the match set of the
//! O(graph) full-rescan oracle [`rescan_matches`] — per subscription, per
//! publish — and the mailbox accounting must stay exact
//! (`matched == delivered + dropped`) even under tiny capacities.

use proptest::prelude::*;
use securitykg::graph::{GraphStore, NodeId, Value};
use securitykg::search::SearchIndex;
use securitykg::serve::{
    rescan_matches, CompiledPredicate, EpochBuilder, MatchEvent, Subscription, SubscriptionHub,
    WatchSpec,
};

const LABELS: [&str; 3] = ["Malware", "Tool", "FileName"];

/// Apply one encoded mutation (same op encoding as `epoch_props.rs`, minus
/// the search-index op — subscriptions never look at the index). Operands
/// index into the *current* live node/edge sets, so every op is valid by
/// construction; deletes cascade and `merge_edge` re-points are covered.
fn apply_op(graph: &mut GraphStore, op: u8, a: u8, b: u8) {
    let live_nodes: Vec<NodeId> = graph.all_nodes().map(|n| n.id).collect();
    let pick = |sel: u8| {
        live_nodes
            .get(sel as usize % live_nodes.len().max(1))
            .copied()
    };
    match op % 8 {
        0 => {
            let label = LABELS[a as usize % LABELS.len()];
            graph.merge_node(
                label,
                &format!("entity-{}", b % 12),
                [("seen", Value::from(1i64))],
            );
        }
        1 => {
            let label = LABELS[a as usize % LABELS.len()];
            graph.create_node(label, [("name", Value::from(format!("dup-{}", b % 6)))]);
        }
        2 => {
            if let Some(id) = pick(a) {
                let _ = graph.set_node_prop(id, "weight", Value::from(b as i64));
            }
        }
        3 => {
            if let Some(id) = pick(a) {
                let _ = graph.set_node_prop(id, "name", Value::from(format!("renamed-{}", b % 10)));
            }
        }
        4 => {
            if let Some(id) = pick(a) {
                let _ = graph.delete_node(id);
            }
        }
        5 => {
            if let (Some(from), Some(to)) = (pick(a), pick(b.wrapping_add(1))) {
                let _ = graph.merge_edge(from, "RELATED_TO", to);
            }
        }
        6 => {
            let live_edges: Vec<_> = graph.all_edges().map(|e| e.id).collect();
            if !live_edges.is_empty() {
                let _ = graph.delete_edge(live_edges[a as usize % live_edges.len()]);
            }
        }
        _ => {
            // Conservative no-op touch: re-write a prop to its current
            // value. The element lands in the delta but its content is
            // unchanged — neither the incremental path nor the oracle may
            // fire an event for it.
            if let Some(id) = pick(a) {
                if let Some(current) = graph.node(id).and_then(|n| n.props.get("seen")).cloned() {
                    let _ = graph.set_node_prop(id, "seen", current);
                }
            }
        }
    }
}

/// The subscription mix under test: label-only, label+predicate,
/// any-label-with-predicate, and an edge watch on the seed entity.
fn specs(seed: NodeId) -> Vec<WatchSpec> {
    vec![
        WatchSpec::Node {
            label: Some("Malware".into()),
            predicate: None,
        },
        WatchSpec::Node {
            label: Some("Tool".into()),
            predicate: Some(CompiledPredicate::compile("n.weight >= 16").unwrap()),
        },
        WatchSpec::Node {
            label: None,
            predicate: Some(CompiledPredicate::compile("n.name STARTS WITH 'renamed'").unwrap()),
        },
        WatchSpec::EdgeTouching(seed),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Arbitrary mutate/publish interleavings: at every publish, each
    /// subscription's incremental match set equals the full-rescan oracle's
    /// (node deletion and edge re-point included), and delivery accounting
    /// is exact under a tiny bounded mailbox.
    #[test]
    fn incremental_evaluation_equals_full_rescan(
        ops in prop::collection::vec((0u8..16, 0u8..32, 0u8..32), 1..60),
        publish_every in 1usize..7,
        capacity in 0usize..5
    ) {
        let mut graph = GraphStore::new();
        let search: SearchIndex<NodeId> = SearchIndex::default();
        let seed = graph.merge_node("Malware", "entity-3", [("seen", Value::from(1i64))]);
        let hub = SubscriptionHub::new(&mut graph);
        let mut epoch = EpochBuilder::new(&mut graph);
        let subs: Vec<Subscription> = specs(seed)
            .iter()
            .map(|spec| hub.subscribe(spec.clone(), capacity))
            .collect();
        let mut prev = epoch.freeze(&mut graph, &search);

        let check_publish = |graph: &mut GraphStore,
                                 epoch: &mut EpochBuilder,
                                 prev: &mut securitykg::serve::KgSnapshot|
         -> Result<(), TestCaseError> {
            let next = epoch.freeze(graph, &search);
            let report = hub.evaluate(graph, prev, &next, None);
            for (spec, sub) in specs(seed).iter().zip(&subs) {
                let oracle = rescan_matches(spec, sub.id(), prev, &next);
                let got: Vec<MatchEvent> = report
                    .matches
                    .iter()
                    .filter(|e| e.subscription == sub.id())
                    .cloned()
                    .collect();
                prop_assert_eq!(got, oracle, "subscription {} diverged", sub.id());
            }
            prop_assert_eq!(report.matched, report.delivered + report.dropped);
            *prev = next;
            Ok(())
        };

        for (i, (op, a, b)) in ops.into_iter().enumerate() {
            apply_op(&mut graph, op, a, b);
            if i % publish_every == 0 {
                check_publish(&mut graph, &mut epoch, &mut prev)?;
            }
        }
        check_publish(&mut graph, &mut epoch, &mut prev)?;

        // Lifetime accounting stays exact per subscription, and a bounded
        // mailbox never retains more than its capacity.
        for sub in &subs {
            let stats = sub.stats();
            prop_assert_eq!(stats.matched, stats.delivered + stats.dropped);
            prop_assert!(stats.queued <= capacity, "mailbox exceeded its bound");
            prop_assert!(sub.drain().len() as u64 <= stats.delivered);
        }
    }

    /// The writer keeps mutating *after* the freeze that defines an epoch:
    /// evaluation must still agree with the oracle over the frozen pair —
    /// post-freeze changes stay sealed away for the next epoch.
    #[test]
    fn post_freeze_writer_noise_never_leaks_into_the_epoch(
        ops in prop::collection::vec((0u8..16, 0u8..32, 0u8..32), 1..30),
        noise in prop::collection::vec((0u8..16, 0u8..32, 0u8..32), 1..10)
    ) {
        let mut graph = GraphStore::new();
        let search: SearchIndex<NodeId> = SearchIndex::default();
        let seed = graph.merge_node("Malware", "entity-3", [("seen", Value::from(1i64))]);
        let hub = SubscriptionHub::new(&mut graph);
        let mut epoch = EpochBuilder::new(&mut graph);
        let subs: Vec<Subscription> = specs(seed)
            .iter()
            .map(|spec| hub.subscribe(spec.clone(), usize::MAX))
            .collect();
        let prev = epoch.freeze(&mut graph, &search);
        for (op, a, b) in ops {
            apply_op(&mut graph, op, a, b);
        }
        let next = epoch.freeze(&mut graph, &search);
        // Writer races ahead before the hub gets to run.
        for (op, a, b) in noise {
            apply_op(&mut graph, op, a, b);
        }
        let report = hub.evaluate(&mut graph, &prev, &next, None);
        for (spec, sub) in specs(seed).iter().zip(&subs) {
            let oracle = rescan_matches(spec, sub.id(), &prev, &next);
            let got: Vec<MatchEvent> = report
                .matches
                .iter()
                .filter(|e| e.subscription == sub.id())
                .cloned()
                .collect();
            prop_assert_eq!(got, oracle, "subscription {} leaked post-freeze noise", sub.id());
        }
    }
}
