//! Property tests for the O(delta) publication path: an incremental
//! [`EpochBuilder`] driven by arbitrary mutation sequences must stay
//! **indistinguishable** from the full-rebuild oracle `KgSnapshot::build` —
//! same digest, same adjacency table, same search/Cypher/expand answers —
//! at every freeze point, no matter how creates, merges, property updates,
//! renames and deletes interleave with epoch boundaries.

use proptest::prelude::*;
use securitykg::graph::{GraphStore, NodeId, Value};
use securitykg::search::SearchIndex;
use securitykg::serve::{EpochBuilder, KgSnapshot, Query, SnapshotMode};

const LABELS: [&str; 3] = ["Malware", "Tool", "FileName"];

/// Apply one encoded mutation to the live graph/index. Operands index into
/// the *current* live node/edge sets, so every op is valid by construction.
fn apply_op(graph: &mut GraphStore, search: &mut SearchIndex<NodeId>, op: u8, a: u8, b: u8) {
    let live_nodes: Vec<NodeId> = graph.all_nodes().map(|n| n.id).collect();
    let pick = |sel: u8| {
        live_nodes
            .get(sel as usize % live_nodes.len().max(1))
            .copied()
    };
    match op % 8 {
        0 => {
            let label = LABELS[a as usize % LABELS.len()];
            graph.merge_node(
                label,
                &format!("entity-{}", b % 12),
                [("seen", Value::from(1i64))],
            );
        }
        1 => {
            let label = LABELS[a as usize % LABELS.len()];
            graph.create_node(label, [("name", Value::from(format!("dup-{}", b % 6)))]);
        }
        2 => {
            if let Some(id) = pick(a) {
                let _ = graph.set_node_prop(id, "weight", Value::from(b as i64));
            }
        }
        3 => {
            // Rename: exercises the name index and changes the digest term.
            if let Some(id) = pick(a) {
                let _ = graph.set_node_prop(id, "name", Value::from(format!("renamed-{}", b % 10)));
            }
        }
        4 => {
            if let Some(id) = pick(a) {
                let _ = graph.delete_node(id);
            }
        }
        5 => {
            if let (Some(from), Some(to)) = (pick(a), pick(b.wrapping_add(1))) {
                let _ = graph.merge_edge(from, "RELATED_TO", to);
            }
        }
        6 => {
            let live_edges: Vec<_> = graph.all_edges().map(|e| e.id).collect();
            if !live_edges.is_empty() {
                let _ = graph.delete_edge(live_edges[a as usize % live_edges.len()]);
            }
        }
        _ => {
            if let Some(id) = pick(a) {
                search.add(id, &format!("report about entity-{} campaign", b % 12));
            }
        }
    }
}

/// The equivalence oracle: digest, adjacency (entry by entry, both ways)
/// and the three read paths must agree between the incremental freeze and a
/// full rebuild of the same state.
fn assert_equivalent(inc: &KgSnapshot, full: &KgSnapshot) -> Result<(), TestCaseError> {
    prop_assert_eq!(inc.mode(), SnapshotMode::Incremental);
    prop_assert_eq!(full.mode(), SnapshotMode::Full);
    prop_assert_eq!(inc.digest(), full.digest());
    prop_assert_eq!(inc.node_count(), full.node_count());
    prop_assert_eq!(inc.edge_count(), full.edge_count());
    prop_assert_eq!(inc.adjacency_len(), full.adjacency_len());
    for node in full.graph().all_nodes() {
        prop_assert_eq!(
            inc.neighbors(node.id),
            full.neighbors(node.id),
            "adjacency diverged at {:?}",
            node.id
        );
    }
    for query in [
        Query::Search {
            q: "entity-3 campaign".into(),
            k: 8,
        },
        Query::Search {
            q: "renamed-4".into(),
            k: 5,
        },
        Query::Cypher {
            q: "MATCH (n:Malware) RETURN count(*)".into(),
        },
        Query::Cypher {
            q: "MATCH (a)-[:RELATED_TO]->(b) RETURN a, b".into(),
        },
        Query::Expand {
            name: "entity-3".into(),
            hops: 2,
            cap: 20,
        },
    ] {
        prop_assert_eq!(
            inc.answer(&query),
            full.answer(&query),
            "answer diverged for {:?}",
            query
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random mutation sequences with freezes sprinkled between them:
    /// every incremental freeze equals the full rebuild of that state.
    #[test]
    fn incremental_freeze_equals_full_rebuild(
        ops in prop::collection::vec((0u8..16, 0u8..32, 0u8..32), 1..60),
        freeze_every in 1usize..7
    ) {
        let mut graph = GraphStore::new();
        let mut search: SearchIndex<NodeId> = SearchIndex::default();
        // Non-empty start so early ops have nodes to hit.
        graph.merge_node("Malware", "entity-3", [("seen", Value::from(1i64))]);
        let mut epoch = EpochBuilder::new(&mut graph);

        for (i, (op, a, b)) in ops.into_iter().enumerate() {
            apply_op(&mut graph, &mut search, op, a, b);
            if i % freeze_every == 0 {
                let inc = epoch.freeze(&mut graph, &search);
                let full = KgSnapshot::build(graph.clone(), search.clone());
                assert_equivalent(&inc, &full)?;
            }
        }
        // Always compare the final state too.
        let inc = epoch.freeze(&mut graph, &search);
        let full = KgSnapshot::build(graph.clone(), search.clone());
        assert_equivalent(&inc, &full)?;
    }

    /// Seeding an EpochBuilder at an arbitrary mid-history point (instead of
    /// on an empty graph) changes nothing: the freeze still matches the
    /// oracle. This is the "recovery re-seeds from a full scan" contract.
    #[test]
    fn late_seeded_builder_matches_oracle(
        pre in prop::collection::vec((0u8..16, 0u8..32, 0u8..32), 1..25),
        post in prop::collection::vec((0u8..16, 0u8..32, 0u8..32), 1..25)
    ) {
        let mut graph = GraphStore::new();
        let mut search: SearchIndex<NodeId> = SearchIndex::default();
        graph.merge_node("Malware", "entity-3", [("seen", Value::from(1i64))]);
        for (op, a, b) in pre {
            apply_op(&mut graph, &mut search, op, a, b);
        }
        let mut epoch = EpochBuilder::new(&mut graph);
        for (op, a, b) in post {
            apply_op(&mut graph, &mut search, op, a, b);
        }
        let inc = epoch.freeze(&mut graph, &search);
        let full = KgSnapshot::build(graph.clone(), search.clone());
        assert_equivalent(&inc, &full)?;
    }
}
