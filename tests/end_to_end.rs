//! Cross-crate integration tests: the full SecurityKG flow, checked against
//! the simulated world's ground truth.

use securitykg::corpus::WorldConfig;
use securitykg::{SecurityKg, SystemConfig, TrainingConfig};

fn dense_config(seed: u64) -> SystemConfig {
    SystemConfig {
        world: WorldConfig {
            malware_count: 20,
            actor_count: 10,
            cve_count: 30,
            campaign_count: 8,
            seed,
        },
        articles_per_source: 20,
        training: TrainingConfig {
            articles: 120,
            ..TrainingConfig::default()
        },
        ..SystemConfig::default()
    }
}

#[test]
fn knowledge_graph_contains_world_facts() {
    let mut kg = SecurityKg::bootstrap(&dense_config(0xFACE));
    let report = kg.crawl_and_ingest();
    assert!(report.reports_ingested > 300, "{}", report.reports_ingested);

    // The wannacry facts pinned in the world must surface in the graph.
    let graph = kg.graph();
    let wannacry = graph
        .node_by_name("Malware", "wannacry")
        .expect("wannacry node");
    let dropped: Vec<&str> = graph
        .outgoing(wannacry)
        .iter()
        .filter(|e| e.rel_type == "DROP")
        .map(|e| graph.node(e.to).unwrap().name().unwrap())
        .collect();
    assert!(
        dropped.contains(&"tasksche.exe") || dropped.contains(&"mssecsvc.exe"),
        "wannacry DROP edges: {dropped:?}"
    );
    let exploits: Vec<&str> = graph
        .outgoing(wannacry)
        .iter()
        .filter(|e| e.rel_type == "EXPLOITS")
        .map(|e| graph.node(e.to).unwrap().name().unwrap())
        .collect();
    assert!(exploits.contains(&"cve-2017-0144"), "{exploits:?}");
}

#[test]
fn every_stored_relation_is_ontology_legal() {
    let mut kg = SecurityKg::bootstrap_without_ner(&dense_config(0xBEEF));
    kg.crawl_and_ingest();
    let ontology = securitykg::ontology::Ontology::standard();
    let graph = kg.graph();
    for edge in graph.all_edges() {
        let s: securitykg::ontology::EntityKind =
            graph.node(edge.from).unwrap().label.parse().unwrap();
        let o: securitykg::ontology::EntityKind =
            graph.node(edge.to).unwrap().label.parse().unwrap();
        let r: securitykg::ontology::RelationKind = edge.rel_type.parse().unwrap();
        assert!(
            ontology.allows(s, r, o),
            "illegal stored triplet <{s}, {r}, {o}>"
        );
    }
}

#[test]
fn incremental_crawl_grows_the_graph_monotonically() {
    let mut config = dense_config(0xCAFE);
    config.articles_per_source = 30;
    let mut kg = SecurityKg::bootstrap_without_ner(&config);
    // Start the clock early so only part of the catalog is published.
    kg.now_ms = kg.web().sources()[0].publish_time_ms(8);
    let first = kg.crawl_and_ingest();
    let nodes_after_first = kg.graph().node_count();
    assert!(first.reports_ingested > 0);

    // Advance time: more articles publish; second crawl is incremental.
    kg.now_ms = u64::MAX / 4;
    let second = kg.crawl_and_ingest();
    assert!(
        second.reports_ingested > 0,
        "new publications must be crawled"
    );
    assert!(kg.graph().node_count() > nodes_after_first);

    // Subsequent crawls converge: articles that hard-failed on flaky
    // sources may still trickle in for a cycle or two, but with no new
    // publications the crawl reaches a fixpoint of zero new reports.
    let mut converged = false;
    for _ in 0..6 {
        if kg.crawl_and_ingest().reports_ingested == 0 {
            converged = true;
            break;
        }
    }
    assert!(
        converged,
        "crawl must reach a fixpoint once the catalog is exhausted"
    );
}

#[test]
fn fusion_unifies_vendor_naming_conventions() {
    let mut kg = SecurityKg::bootstrap_without_ner(&dense_config(0xA11A));
    kg.crawl_and_ingest();
    // Sources use per-vendor aliases, so alias groups appear as separate
    // nodes pre-fusion whenever ≥2 aliases were written about.
    let graph = kg.graph();
    let alias_groups = &securitykg::corpus::names::MALWARE_ALIASES;
    let mut splittable = 0;
    for group in alias_groups.iter() {
        let present = group
            .iter()
            .filter(|a| graph.node_by_name("Malware", &a.to_lowercase()).is_some())
            .count();
        if present >= 2 {
            splittable += 1;
        }
    }
    assert!(splittable > 0, "corpus should produce alias duplicates");

    let report = kg.fuse();
    assert!(report.clusters_merged > 0);
    // After fusion with the default (similarity-only) config, the
    // string-similar alias groups collapse.
    let graph = kg.graph();
    let wannacry_variants = ["wannacry", "wannacrypt", "wanna decryptor"]
        .iter()
        .filter(|a| graph.node_by_name("Malware", a).is_some())
        .count();
    assert!(wannacry_variants <= 1, "similar aliases must have merged");
}

#[test]
fn demo_cypher_and_keyword_agree() {
    let mut kg = SecurityKg::bootstrap_without_ner(&dense_config(0xD00D));
    kg.crawl_and_ingest();
    let from_keyword = kg
        .graph()
        .node_by_name("Malware", "wannacry")
        .expect("wannacry");
    let result = kg
        .cypher("match (n) where n.name = \"wannacry\" return n")
        .unwrap();
    assert_eq!(result.node_ids(), vec![from_keyword]);
    // And the keyword path surfaces it too.
    assert!(kg.keyword_search("wannacry", 10).contains(&from_keyword));
}

#[test]
fn graph_persistence_round_trips_a_real_build() {
    let mut kg = SecurityKg::bootstrap_without_ner(&dense_config(0x5A5A));
    kg.crawl_and_ingest();
    // Round-trip through the binary segment payloads (the checkpoint wire
    // format): encode every arena segment, validate + decode, reassemble.
    let graph = kg.graph();
    let node_parts: Vec<_> = (0..graph.node_segment_count())
        .map(|i| {
            let bytes = kg_codec::encode_node_segment(graph.node_segment_slots(i).unwrap());
            kg_codec::validate_payload(&bytes).unwrap();
            kg_codec::decode_node_segment(&bytes).unwrap()
        })
        .collect();
    let edge_parts: Vec<_> = (0..graph.edge_segment_count())
        .map(|i| {
            let bytes = kg_codec::encode_edge_segment(graph.edge_segment_slots(i).unwrap());
            kg_codec::decode_edge_segment(&bytes).unwrap()
        })
        .collect();
    let restored = securitykg::graph::GraphStore::from_segments(node_parts, edge_parts).unwrap();
    assert_eq!(restored.digest(), kg.graph().digest());
    assert_eq!(restored.node_count(), kg.graph().node_count());
    assert_eq!(restored.edge_count(), kg.graph().edge_count());
    // Indexes rebuilt: lookups still work.
    let malware = restored.nodes_with_label("Malware");
    assert!(!malware.is_empty());
    let name = restored.node(malware[0]).unwrap().name().unwrap();
    assert_eq!(restored.node_by_name("Malware", name), Some(malware[0]));
}
