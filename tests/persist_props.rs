//! Property tests for the segment store: arbitrary interleavings of blob
//! mutation, checkpointing, injected kills (clean and torn), pruning and
//! compaction must keep recovery exact.
//!
//! The oracle is an in-memory model of the blob set. After every simulated
//! crash the store is reopened and recovered; the recovered blob set must
//! be **byte-identical** to either the last committed model or the model of
//! the checkpoint that was in flight when the kill fired (whose manifest
//! record may or may not have reached the log) — never a mix, never a
//! panic, never a torn half-state.

use proptest::prelude::*;
use securitykg::persist::{FaultHook, PersistError, SegmentStore, StoreOptions};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmp_dir() -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("kg-pprops-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

type Model = BTreeMap<String, Vec<u8>>;

fn model_digest(model: &Model) -> u64 {
    let mut bytes = Vec::new();
    for (key, value) in model {
        bytes.extend_from_slice(key.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(value);
        bytes.push(0xFF);
    }
    securitykg::ir::fnv1a64(&bytes)
}

/// Small store options so compaction thresholds are actually reachable.
fn opts(hook: FaultHook) -> StoreOptions {
    StoreOptions {
        retention: 2,
        compact_manifest_bytes: 8 * 1024,
        compact_min_bytes: 256,
        hook: Some(hook),
        ..StoreOptions::default()
    }
}

/// Collect the blobs a checkpoint must write: dirty keys, or everything
/// when the store has no carry-forward baseline.
fn blobs_for(
    store: &SegmentStore,
    model: &Model,
    dirty: &BTreeSet<String>,
) -> Vec<(String, Vec<u8>)> {
    let keys: Vec<&String> = if store.baseline_seq().is_none() {
        model.keys().collect()
    } else {
        dirty.iter().collect()
    };
    keys.into_iter()
        .map(|k| (k.clone(), model[k].clone()))
        .collect()
}

/// Recover the store's blob set, verifying the recorded digest.
fn recover(store: &mut SegmentStore) -> Option<(u64, Model)> {
    store
        .recover_with(|record, blobs| {
            let model: Model = blobs.clone();
            if model_digest(&model) != record.kg_digest {
                return Err("digest mismatch".to_owned());
            }
            Ok((record.seq, model))
        })
        .expect("recovery itself must not hard-fail")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Ops encode as (op, a, b): mutate a keyed blob, checkpoint (+ prune,
    /// + compact when due), or checkpoint under an armed kill and restart.
    #[test]
    fn crash_restart_interleavings_recover_exactly(
        ops in prop::collection::vec((0u8..8, 0u8..32, 0u8..32), 4..48)
    ) {
        let dir = tmp_dir();
        let mut hook = FaultHook::new();
        let mut store = SegmentStore::open(&dir, opts(hook.clone())).unwrap();

        let mut model: Model = Model::new();
        let mut committed: Model = Model::new();
        let mut dirty: BTreeSet<String> = BTreeSet::new();
        let mut seq = 0u64;
        let mut payload_salt = 0u8;

        for (op, a, b) in ops {
            match op {
                // Mutate: most ops touch the model, marking the key dirty.
                0..=4 => {
                    payload_salt = payload_salt.wrapping_add(1);
                    let key = format!("b{}", a % 12);
                    let value = vec![b ^ payload_salt; (a as usize % 48) + 1];
                    model.insert(key.clone(), value);
                    dirty.insert(key);
                }
                // Checkpoint, then the maintenance the durable driver runs.
                5 | 6 => {
                    seq += 1;
                    let blobs = blobs_for(&store, &model, &dirty);
                    store.checkpoint(seq, seq, model_digest(&model), blobs).unwrap();
                    committed = model.clone();
                    dirty.clear();
                    store.prune().unwrap();
                    if store.should_compact() {
                        store.compact().unwrap();
                    }
                }
                // Kill: arm the hook a few ops ahead, attempt the same
                // checkpoint+maintenance sequence, then "restart".
                _ => {
                    seq += 1;
                    let in_flight = model.clone();
                    hook.arm_kill_after(hook.ops_done() + u64::from(b % 12), b % 2 == 0);
                    let blobs = blobs_for(&store, &model, &dirty);
                    let attempt = store
                        .checkpoint(seq, seq, model_digest(&model), blobs)
                        .and_then(|()| store.prune().map(|_| ()))
                        .and_then(|()| {
                            if store.should_compact() {
                                store.compact()
                            } else {
                                Ok(())
                            }
                        });
                    match attempt {
                        Ok(()) => {
                            // The kill never fired inside this window.
                            hook.disarm();
                            committed = model.clone();
                            dirty.clear();
                        }
                        Err(PersistError::InjectedCrash { .. }) => {
                            // Process death: reopen from disk with a fresh
                            // hook and recover.
                            drop(store);
                            hook = FaultHook::new();
                            store = SegmentStore::open(&dir, opts(hook.clone())).unwrap();
                            let recovered = recover(&mut store);
                            match recovered {
                                Some((_, state)) => {
                                    prop_assert!(
                                        state == committed || state == in_flight,
                                        "recovered neither the committed nor the in-flight state\n\
                                         recovered: {state:?}\ncommitted: {committed:?}\nin-flight: {in_flight:?}"
                                    );
                                    model = state.clone();
                                    committed = state;
                                }
                                None => {
                                    // Nothing ever committed durably.
                                    prop_assert!(
                                        committed.is_empty(),
                                        "store lost committed state {committed:?}"
                                    );
                                    model = Model::new();
                                    committed = Model::new();
                                }
                            }
                            dirty.clear();
                        }
                        Err(other) => prop_assert!(false, "unexpected store error: {other}"),
                    }
                }
            }
        }

        // Epilogue: a final clean restart always lands on the committed set.
        seq += 1;
        let blobs = blobs_for(&store, &model, &dirty);
        store.checkpoint(seq, seq, model_digest(&model), blobs).unwrap();
        let final_model = model.clone();
        drop(store);
        let mut reopened = SegmentStore::open(&dir, StoreOptions::default()).unwrap();
        let recovered = recover(&mut reopened);
        prop_assert_eq!(
            recovered.map(|(_, state)| state),
            Some(final_model),
            "clean reopen diverged"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
