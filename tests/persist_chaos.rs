//! Chaos harness for the segmented persistence layer, driven through the
//! durable ingest driver (`run_durable`) — the level at which journal,
//! segment store, retention and compaction all interact.
//!
//! Three batteries:
//!
//! 1. **Kill-at-every-I/O-boundary**: arm the shared [`FaultHook`] to die
//!    before global durable I/O op N and sweep N across a whole run —
//!    every syscall boundary of the checkpoint, prune, journal-truncation
//!    and compaction paths gets a kill (half of them torn). Resuming must
//!    always reproduce the uninterrupted run's digest.
//! 2. **Bit flips**: corrupt single bytes across every persistent file of a
//!    completed run. `recover --verify` semantics must never panic, and a
//!    resume must either reproduce the reference digest exactly (falling
//!    back past quarantined checkpoints, redoing from scratch if need be)
//!    or fail *cleanly* — only for a destroyed file header.
//! 3. **Disk bound**: a long run checkpointing every cycle must keep data
//!    bytes within a small multiple of live bytes (compaction), the
//!    manifest bounded (rewrite), and the journal truncated below the
//!    retention horizon.
//!
//! Plus a barrier-order audit: the recorded I/O log must show every data
//! frame fsynced before the manifest record referencing it, and every
//! manifest append fsynced immediately (the commit point).

use securitykg::corpus::{FaultProfile, WorldConfig};
use securitykg::crawler::SchedulerConfig;
use securitykg::persist::{FaultHook, IoOp};
use securitykg::{
    run_durable, verify_dir, DurableOptions, DurableReport, JournalError, SystemConfig,
};
use std::path::{Path, PathBuf};

fn system(seed: u64) -> SystemConfig {
    SystemConfig {
        world: WorldConfig::tiny(seed),
        articles_per_source: 2,
        seed,
        faults: FaultProfile::default(),
        ..SystemConfig::default()
    }
}

fn sched_config() -> SchedulerConfig {
    SchedulerConfig {
        breaker_threshold: 2,
        breaker_cooldown_ms: 2 * 3_600_000,
        ..SchedulerConfig::default()
    }
}

fn tmp_dir(name: &str, k: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kg-pchaos-{}-{name}-{k}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run(dir: &Path, system: &SystemConfig, until_ms: u64, opts: &DurableOptions) -> DurableReport {
    run_durable(system, &sched_config(), dir, until_ms, opts).expect("durable run")
}

const START: u64 = securitykg::DEFAULT_START_MS;

#[test]
fn kill_at_every_io_boundary_recovers_to_identical_digest() {
    let system = system(23);
    let opts = DurableOptions {
        snapshot_every_cycles: 3,
        retention: 2,
        ..DurableOptions::default()
    };

    // Reference run with a passive hook: same digest as an unhooked run,
    // plus the total I/O op count to sweep over.
    let dir = tmp_dir("io-ref", 0);
    let hook = FaultHook::new();
    let counted = run(
        &dir,
        &system,
        START,
        &DurableOptions {
            fault_hook: Some(hook.clone()),
            ..opts.clone()
        },
    );
    let _ = std::fs::remove_dir_all(&dir);
    let total_ops = hook.ops_done();
    assert!(
        total_ops > 60,
        "want a run worth killing, got {total_ops} I/O ops"
    );

    // Exhaustive over the run's opening (journal + manifest creation, first
    // full checkpoint), then strided through the steady state.
    let mut kill_points: Vec<u64> = (0..24.min(total_ops)).collect();
    kill_points.extend((24..total_ops).step_by(13));
    for k in kill_points {
        let dir = tmp_dir("io-kill", k);
        let crash = DurableOptions {
            io_kill_after: Some(k),
            io_kill_torn: k % 2 == 1,
            ..opts.clone()
        };
        match run_durable(&system, &sched_config(), &dir, START, &crash) {
            Err(JournalError::InjectedCrash) => {}
            other => panic!("kill at I/O op {k}: expected injected crash, got {other:?}"),
        }
        let resumed = run(&dir, &system, START, &opts);
        assert_eq!(
            resumed.kg_digest, counted.kg_digest,
            "kill at I/O op {k}: recovered digest diverged \
             (quarantine: {:?})",
            resumed.recovery_events
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

#[test]
fn bit_flips_never_panic_and_resume_reproduces_the_reference() {
    let system = system(29);
    let opts = DurableOptions {
        snapshot_every_cycles: 4,
        ..DurableOptions::default()
    };
    let src = tmp_dir("flip-src", 0);
    let reference = run(&src, &system, START, &opts);

    let mut files: Vec<String> = std::fs::read_dir(&src)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    files.sort();
    assert!(files.iter().any(|f| f.starts_with("data-")));
    assert!(files.contains(&"manifest.log".to_owned()));

    let mut case = 0u64;
    for name in &files {
        let bytes = std::fs::read(src.join(name)).unwrap();
        // Dense over the header, strided through the body.
        let mut offsets: Vec<usize> = (0..bytes.len().min(12)).collect();
        offsets.extend((12..bytes.len()).step_by((bytes.len() / 32).max(1)));
        for off in offsets {
            let dir = tmp_dir("flip", case);
            case += 1;
            copy_dir(&src, &dir);
            let mut corrupt = bytes.clone();
            corrupt[off] ^= 0xFF;
            std::fs::write(dir.join(name), &corrupt).unwrap();

            // Inspection must never panic, whatever it concludes.
            let _ = verify_dir(&dir, true);

            match run_durable(&system, &sched_config(), &dir, START, &opts) {
                Ok(resumed) => assert_eq!(
                    resumed.kg_digest, reference.kg_digest,
                    "flip {name}[{off}]: resumed digest diverged \
                     (quarantine: {:?})",
                    resumed.recovery_events
                ),
                // A clean failure is allowed only for a destroyed file
                // header (manifest/journal magic) — anything deeper must
                // degrade gracefully.
                Err(e) => assert!(
                    off < 8 && (name == "manifest.log" || name == "journal.log"),
                    "flip {name}[{off}]: hard failure {e} for a non-header flip"
                ),
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn bit_flips_inside_binary_payloads_degrade_gracefully() {
    let system = system(41);
    let opts = DurableOptions {
        snapshot_every_cycles: 3,
        ..DurableOptions::default()
    };
    let src = tmp_dir("binflip-src", 0);
    let reference = run(&src, &system, START, &opts);

    // Target the flips at the KGBIN001 payload regions specifically: the
    // newest checkpoint's blob entries give us exact (file, offset, len)
    // coordinates of every binary segment inside the data files.
    let replay = securitykg::persist::manifest::replay_manifest(&src.join("manifest.log"))
        .expect("manifest replays");
    let record = replay.records.last().expect("at least one checkpoint");
    let blobs: Vec<_> = record
        .entries
        .iter()
        .filter(|e| e.logical != "meta")
        .collect();
    assert!(
        blobs.len() > 8,
        "want many binary blobs, got {}",
        blobs.len()
    );

    let mut case = 0u64;
    let mut magic_seen = 0usize;
    for entry in blobs.iter().step_by((blobs.len() / 6).max(1)) {
        let bytes = std::fs::read(src.join(&entry.file)).unwrap();
        let payload_at = entry.offset as usize + securitykg::persist::FRAME_HEADER;
        if bytes[payload_at..].starts_with(kg_codec::BIN_MAGIC) {
            magic_seen += 1;
        }
        let len = entry.len as usize;
        for rel in [0, len / 4, len / 2, len - 1] {
            let dir = tmp_dir("binflip", case);
            case += 1;
            copy_dir(&src, &dir);
            let mut corrupt = bytes.clone();
            corrupt[payload_at + rel] ^= 0xFF;
            std::fs::write(dir.join(&entry.file), &corrupt).unwrap();

            // Inspection (including format sniffing) must never panic.
            let _ = verify_dir(&dir, true);

            // The frame checksum quarantines the flipped blob's checkpoint;
            // resume falls back (redoing from scratch if need be) and must
            // reproduce the reference digest — payload flips are never fatal.
            let resumed = run(&dir, &system, START, &opts);
            assert_eq!(
                resumed.kg_digest, reference.kg_digest,
                "flip {}[{rel}] in {}: resumed digest diverged (quarantine: {:?})",
                entry.logical, entry.file, resumed.recovery_events
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    assert!(
        magic_seen > 0,
        "sweep never touched a KGBIN001 payload — wrong coordinates?"
    );
    let _ = std::fs::remove_dir_all(&src);
}

#[test]
fn mixed_format_manifests_recover_and_report_their_formats() {
    let system = system(43);
    let bin_opts = DurableOptions {
        snapshot_every_cycles: 3,
        ..DurableOptions::default()
    };
    let json_opts = DurableOptions {
        json_payloads: true,
        ..bin_opts.clone()
    };
    let horizon = START + 24 * 3_600_000;

    // Uninterrupted binary run: the reference digest.
    let ref_dir = tmp_dir("mixed-ref", 0);
    let reference = run(&ref_dir, &system, horizon, &bin_opts);
    let _ = std::fs::remove_dir_all(&ref_dir);

    // All-JSON run over the same horizon: the differential oracle. Both
    // wire formats must describe the same knowledge graph.
    let json_dir = tmp_dir("mixed-json", 0);
    let oracle = run(&json_dir, &system, horizon, &json_opts);
    assert_eq!(
        oracle.kg_digest, reference.kg_digest,
        "JSON and binary payloads diverged on an uninterrupted run"
    );
    let summary = verify_dir(&json_dir, true).expect("json store verifies");
    assert!(summary.restored.is_some(), "{summary:?}");
    assert!(
        summary.payload_formats.iter().all(|f| f == "json"),
        "json-only run reported formats {:?}",
        summary.payload_formats
    );
    let _ = std::fs::remove_dir_all(&json_dir);

    // Forward-compat: a legacy all-JSON prefix, then a binary-writing
    // version resumes on top of it. Carried-forward JSON blobs now sit
    // beside fresh binary ones in the same manifest records.
    let dir = tmp_dir("mixed", 0);
    let first = run(&dir, &system, START, &json_opts);
    assert!(first.cycles_run > 0);
    let summary = verify_dir(&dir, false).expect("legacy store verifies");
    assert!(!summary.checkpoints.is_empty());
    assert!(
        summary.payload_formats.iter().all(|f| f == "json"),
        "legacy prefix reported formats {:?}",
        summary.payload_formats
    );

    let resumed = run(&dir, &system, horizon, &bin_opts);
    assert!(
        resumed.resumed_from_snapshot.is_some(),
        "binary resume redid the run from scratch: {resumed:?}"
    );
    assert_eq!(
        resumed.kg_digest, reference.kg_digest,
        "mixed-format recovery diverged from the binary reference"
    );

    let summary = verify_dir(&dir, true).expect("mixed store verifies");
    assert!(summary.restored.is_some(), "{summary:?}");
    let formats = &summary.payload_formats;
    assert!(
        formats
            .iter()
            .any(|f| f.starts_with("mixed(") || f == "bin"),
        "no checkpoint reports binary payloads after the resume: {formats:?}"
    );
    let newest = formats.last().unwrap();
    assert!(
        newest.starts_with("mixed(") || newest == "bin",
        "newest checkpoint should carry binary payloads, got {newest}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_footprint_stays_bounded_by_retention_and_compaction() {
    let system = system(31);
    let opts = DurableOptions {
        snapshot_every_cycles: 1,
        retention: 2,
        ..DurableOptions::default()
    };
    let dir = tmp_dir("bound", 0);
    let horizon = START + 3 * 24 * 3_600_000;
    let report = run(&dir, &system, horizon, &opts);
    assert!(
        report.cycles_run > 30,
        "want many checkpoints, got {} cycles",
        report.cycles_run
    );

    let summary = verify_dir(&dir, true).expect("store verifies");
    assert!(summary.restored.is_some(), "{summary:?}");
    let stats = &summary.stats;
    assert!(stats.live_bytes > 0);
    // Compaction keeps dead frames from dominating: total data stays within
    // a small multiple of the live set, independent of how many checkpoints
    // the run wrote.
    assert!(
        stats.data_bytes <= 2 * stats.live_bytes + 512 * 1024,
        "data {} bytes vs live {} bytes — compaction fell behind",
        stats.data_bytes,
        stats.live_bytes
    );
    // The manifest is rewritten once it outgrows its bound.
    assert!(
        stats.manifest_bytes <= 320 * 1024,
        "manifest grew to {} bytes",
        stats.manifest_bytes
    );
    // The journal is truncated below the oldest retained checkpoint, so it
    // holds a bounded suffix, not the whole run.
    let journal_len = std::fs::metadata(dir.join("journal.log")).unwrap().len();
    assert!(
        journal_len <= 64 * 1024,
        "journal grew to {journal_len} bytes despite truncation"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_barriers_are_ordered() {
    let system = system(37);
    let hook = FaultHook::new();
    let opts = DurableOptions {
        snapshot_every_cycles: 2,
        fault_hook: Some(hook.clone()),
        ..DurableOptions::default()
    };
    let dir = tmp_dir("barrier", 0);
    let report = run(&dir, &system, START, &opts);
    let _ = std::fs::remove_dir_all(&dir);
    assert!(report.cycles_run >= 4);

    let log = hook.log();
    let mut commits = 0;
    // (a) Every manifest append is fsynced immediately — the commit point
    // is never left sitting in the page cache.
    for (i, op) in log.iter().enumerate() {
        if let IoOp::Write { file, .. } = op {
            if file == "manifest.log" {
                commits += 1;
                assert!(
                    matches!(&log[i + 1], IoOp::SyncFile { file } if file == "manifest.log"),
                    "manifest write at op {i} not immediately fsynced: {:?}",
                    &log[i..(i + 2).min(log.len())]
                );
            }
        }
    }
    assert!(commits >= 3, "expected several commits, saw {commits}");

    // (b) No file has unsynced writes outstanding at any manifest commit:
    // data frames (and the journal's group commit) are durable before the
    // manifest record that depends on them.
    let mut unsynced: std::collections::BTreeSet<String> = Default::default();
    for (i, op) in log.iter().enumerate() {
        match op {
            IoOp::Write { file, .. } if file != "manifest.log" => {
                unsynced.insert(file.clone());
            }
            IoOp::SyncFile { file } => {
                unsynced.remove(file);
            }
            IoOp::Write { .. } => {
                // file == manifest.log: the commit point.
                assert!(
                    unsynced.is_empty(),
                    "manifest commit at op {i} with unsynced writes to {unsynced:?}"
                );
            }
            _ => {}
        }
    }
}
