//! Differential property tests for the compiled Cypher planner: a
//! [`CompiledPlan`] bound to any snapshot must be **indistinguishable** from
//! the interpreted reference executor (`cypher::execute_read_with_params`) —
//! same columns, same rows, same error strings — over arbitrary
//! mutate/publish interleavings that include deletes, renames (which churn
//! the lazy property index) and duplicate names.
//!
//! Four angles:
//! - plan-vs-interpreter equality on the live [`GraphStore`] for every scan
//!   shape the planner can choose (full, label, name-index, prop-index from
//!   a map literal, prop-index lifted from WHERE, `$param`-lifted);
//! - var-length patterns on a frozen [`KgSnapshot`] (k-hop adjacency fast
//!   path) vs the same plan on the raw store (edge-walk fallback) vs the
//!   interpreter;
//! - scatter/gather at shard counts 1 and 4 reassembling to the single-shard
//!   answer;
//! - plan-cache coherence: a plan cached before a publish, re-bound to the
//!   new epoch, answers exactly like a fresh compile (zero recompiles).

use proptest::prelude::*;
use securitykg::graph::cypher::execute_read_with_params;
use securitykg::graph::{parse, CompiledPlan, GraphSnapshot, GraphStore, NodeId, Params, Value};
use securitykg::search::SearchIndex;
use securitykg::serve::{KgSnapshot, PlanCache};

const LABELS: [&str; 3] = ["Malware", "Tool", "FileName"];

/// Same mutation alphabet as `shard_props`/`epoch_props`: merges, duplicate
/// names, prop writes, renames, node/edge deletes, edge merges.
fn apply_op(graph: &mut GraphStore, op: u8, a: u8, b: u8) {
    let live_nodes: Vec<NodeId> = graph.all_nodes().map(|n| n.id).collect();
    let pick = |sel: u8| {
        live_nodes
            .get(sel as usize % live_nodes.len().max(1))
            .copied()
    };
    match op % 8 {
        0 => {
            let label = LABELS[a as usize % LABELS.len()];
            graph.merge_node(
                label,
                &format!("entity-{}", b % 12),
                [("seen", Value::from(1i64))],
            );
        }
        1 => {
            let label = LABELS[a as usize % LABELS.len()];
            graph.create_node(label, [("name", Value::from(format!("dup-{}", b % 6)))]);
        }
        2 => {
            if let Some(id) = pick(a) {
                let _ = graph.set_node_prop(id, "weight", Value::from(b as i64));
            }
        }
        3 => {
            // Rename: mutates the indexed "name" key, so the lazy property
            // index must shed the old posting and pick up the new one.
            if let Some(id) = pick(a) {
                let _ = graph.set_node_prop(id, "name", Value::from(format!("renamed-{}", b % 10)));
            }
        }
        4 => {
            if let Some(id) = pick(a) {
                let _ = graph.delete_node(id);
            }
        }
        5 => {
            if let (Some(from), Some(to)) = (pick(a), pick(b.wrapping_add(1))) {
                let _ = graph.merge_edge(from, "RELATED_TO", to);
            }
        }
        6 => {
            let live_edges: Vec<_> = graph.all_edges().map(|e| e.id).collect();
            if !live_edges.is_empty() {
                let _ = graph.delete_edge(live_edges[a as usize % live_edges.len()]);
            }
        }
        _ => {
            if let Some(id) = pick(a) {
                let _ = graph.set_node_prop(id, "seen", Value::from((b as i64) + 1));
            }
        }
    }
}

fn seeded_graph(ops: &[(u8, u8, u8)]) -> GraphStore {
    let mut graph = GraphStore::new();
    graph.merge_node("Malware", "entity-3", [("seen", Value::from(1i64))]);
    for (op, a, b) in ops {
        apply_op(&mut graph, *op, *a, *b);
    }
    graph
}

/// One probe per scan shape the planner can pick, plus every projection
/// feature (aggregates, DISTINCT/SKIP/LIMIT, ORDER BY), parameter binding,
/// a missing-parameter error and a write rejection.
fn probes() -> Vec<(&'static str, Params)> {
    let mut with_who = Params::new();
    with_who.insert("who".into(), Value::from("entity-5"));
    let mut with_w = Params::new();
    with_w.insert("w".into(), Value::from(2i64));
    vec![
        ("MATCH (n) RETURN n.name ORDER BY n.name", Params::new()),
        ("MATCH (n:Malware) RETURN n", Params::new()),
        ("MATCH (n:Tool {name: 'entity-3'}) RETURN n", Params::new()),
        ("MATCH (n {name: 'dup-2'}) RETURN n", Params::new()),
        (
            "MATCH (n) WHERE n.name = 'renamed-4' RETURN n",
            Params::new(),
        ),
        (
            "MATCH (n) WHERE n.name = $who RETURN n.name, n.seen",
            with_who,
        ),
        ("MATCH (n) WHERE n.name = $who RETURN n", Params::new()),
        (
            "MATCH (n) WHERE n.name = 'dup-1' AND n.weight = $w RETURN n",
            with_w,
        ),
        ("MATCH (n) WHERE n.weight > 3 RETURN n.name", Params::new()),
        (
            "MATCH (a)-[:RELATED_TO]->(b) RETURN a.name, b.name",
            Params::new(),
        ),
        ("MATCH (a)-[*1..3]->(b) RETURN a, b", Params::new()),
        ("MATCH (a)-[*1..2]-(b) RETURN count(*)", Params::new()),
        (
            "MATCH (a)-[:RELATED_TO]->(b) RETURN a.name, count(b) ORDER BY count(b) DESC LIMIT 3",
            Params::new(),
        ),
        (
            "MATCH (n) RETURN DISTINCT n.name ORDER BY n.name SKIP 1 LIMIT 5",
            Params::new(),
        ),
        ("CREATE (n:Intruder {name: 'nope'})", Params::new()),
    ]
}

/// Compiled result ≡ interpreted result: Ok sides byte-match on columns and
/// rows, Err sides render the same diagnostic.
fn assert_plan_matches_oracle<S>(
    snap: &S,
    graph: &GraphStore,
    text: &str,
    params: &Params,
) -> Result<(), TestCaseError>
where
    S: GraphSnapshot,
{
    let query = parse(text).expect("probe parses");
    let oracle = execute_read_with_params(graph, &query, params);
    let compiled = CompiledPlan::compile(&query).and_then(|plan| plan.execute_on(snap, params));
    match (oracle, compiled) {
        (Ok(want), Ok(got)) => {
            prop_assert_eq!(&want.columns, &got.columns, "columns diverged for {}", text);
            prop_assert_eq!(&want.rows, &got.rows, "rows diverged for {}", text);
        }
        (Err(want), Err(got)) => {
            prop_assert_eq!(
                want.to_string(),
                got.to_string(),
                "errors diverged for {}",
                text
            );
        }
        (want, got) => {
            return Err(TestCaseError::fail(format!(
                "oracle/compiled disagree on success for {text}: {want:?} vs {got:?}"
            )));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Compiled ≡ interpreted directly on the mutable store, for every probe,
    /// after an arbitrary mutation history. This is the index-vs-full-scan
    /// row-set equality check: whichever access path the planner chose (and
    /// however stale the lazy prop index got through renames and deletes),
    /// the visible rows must match the interpreter's scan.
    #[test]
    fn compiled_equals_interpreted_on_the_live_store(
        ops in prop::collection::vec((0u8..16, 0u8..32, 0u8..32), 1..50),
    ) {
        let graph = seeded_graph(&ops);
        for (text, params) in probes() {
            assert_plan_matches_oracle(&graph, &graph, text, &params)?;
        }
    }

    /// Var-length patterns through the frozen snapshot's k-hop adjacency
    /// take a different code path than the edge-walk fallback on the raw
    /// store; both must equal the interpreter.
    #[test]
    fn khop_fast_path_equals_edge_walk_and_oracle(
        ops in prop::collection::vec((0u8..16, 0u8..32, 0u8..32), 1..40),
    ) {
        let graph = seeded_graph(&ops);
        let snapshot = KgSnapshot::build(graph.clone(), SearchIndex::default());
        for hops in ["*1..1", "*1..2", "*2..3", "*1..4"] {
            let text = format!("MATCH (a)-[{hops}]-(b) RETURN a, b ORDER BY b.name");
            // Fast path: KgSnapshot carries precomputed adjacency.
            assert_plan_matches_oracle(&snapshot, &graph, &text, &Params::new())?;
            // Fallback: the bare store walks edges level by level.
            assert_plan_matches_oracle(&graph, &graph, &text, &Params::new())?;
            // Directed/typed variants never use the adjacency table.
            let text = format!("MATCH (a)-[{hops}]->(b) RETURN count(*)");
            assert_plan_matches_oracle(&snapshot, &graph, &text, &Params::new())?;
        }
    }

    /// Scatter/gather over synthetic ownership partitions (1 and 4 shards)
    /// reassembles exactly the single-snapshot answer for every probe the
    /// planner accepts — including aggregates, ORDER/SKIP/LIMIT and
    /// var-length paths.
    #[test]
    fn scatter_gather_reassembles_the_unsharded_answer(
        ops in prop::collection::vec((0u8..16, 0u8..32, 0u8..32), 1..40),
    ) {
        let graph = seeded_graph(&ops);
        let snapshot = KgSnapshot::build(graph.clone(), SearchIndex::default());
        for shards in [1usize, 4] {
            for (text, params) in probes() {
                let query = parse(text).expect("probe parses");
                let Ok(plan) = CompiledPlan::compile(&query) else {
                    continue; // write rejection: no plan to scatter
                };
                let whole = plan.execute_on(&snapshot, &params);
                let mut rows = Vec::new();
                let mut failed = None;
                for shard in 0..shards {
                    let owns = |id: NodeId| id.0 as usize % shards == shard;
                    match plan.scatter_on(&snapshot, &params, &owns) {
                        Ok(part) => rows.extend(part),
                        Err(e) => failed = Some(e),
                    }
                }
                match (whole, failed) {
                    (Ok(want), None) => {
                        let got = plan.gather(rows).expect("gather");
                        prop_assert_eq!(&want.columns, &got.columns, "{} columns @{} shards", text, shards);
                        prop_assert_eq!(&want.rows, &got.rows, "{} rows @{} shards", text, shards);
                    }
                    (Err(want), Some(got)) => {
                        prop_assert_eq!(want.to_string(), got.to_string(), "{} @{} shards", text, shards);
                    }
                    (want, got) => {
                        return Err(TestCaseError::fail(format!(
                            "plain/scatter disagree on success for {text}: {want:?} vs {got:?}"
                        )));
                    }
                }
            }
        }
    }

    /// Plan-cache coherence across epochs: compile once through the cache,
    /// then after every publish the *same* `Arc`'d plan — never recompiled —
    /// answers each new snapshot exactly like a fresh compile and the
    /// interpreter.
    #[test]
    fn cached_plans_stay_coherent_across_publishes(
        rounds in prop::collection::vec(
            prop::collection::vec((0u8..16, 0u8..32, 0u8..32), 1..10),
            1..5
        ),
    ) {
        let cache = PlanCache::new(64);
        let texts: Vec<&str> = probes()
            .iter()
            .map(|(t, _)| *t)
            .filter(|t| !t.starts_with("CREATE"))
            .collect();
        let originals: Vec<_> = texts.iter().map(|t| cache.plan(t).unwrap()).collect();
        let mut graph = GraphStore::new();
        graph.merge_node("Malware", "entity-3", [("seen", Value::from(1i64))]);
        for ops in rounds {
            for (op, a, b) in ops {
                apply_op(&mut graph, op, a, b);
            }
            // Publish a fresh epoch; the cache must not recompile anything.
            let snapshot = KgSnapshot::build(graph.clone(), SearchIndex::default());
            for ((text, params), original) in probes()
                .into_iter()
                .filter(|(t, _)| !t.starts_with("CREATE"))
                .zip(&originals)
            {
                let cached = cache.plan(text).unwrap();
                prop_assert!(
                    std::sync::Arc::ptr_eq(&cached, original),
                    "plan for {} was recompiled after a publish",
                    text
                );
                let fresh = CompiledPlan::compile(&parse(text).unwrap()).unwrap();
                let from_cache = cached.execute_on(&snapshot, &params);
                let from_fresh = fresh.execute_on(&snapshot, &params);
                match (&from_cache, &from_fresh) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(&a.columns, &b.columns);
                        prop_assert_eq!(&a.rows, &b.rows);
                    }
                    (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
                    _ => return Err(TestCaseError::fail(format!(
                        "cached/fresh disagree on success for {text}"
                    ))),
                }
                assert_plan_matches_oracle(&snapshot, &graph, text, &params)?;
            }
        }
        prop_assert_eq!(cache.stats().compiles, texts.len() as u64);
    }
}
