//! Reproducibility: the whole system is a pure function of its seeds.

use securitykg::corpus::{standard_sources, ArticleGenerator, SimulatedWeb, World, WorldConfig};
use securitykg::crawler::{crawl_all, CrawlState, CrawlerConfig};
use securitykg::extract::RegexNerBaseline;
use securitykg::pipeline::{
    run_sequential, GraphConnector, IocOnlyExtractor, ParserRegistry, PipelineConfig,
};
use std::sync::Arc;

fn build_graph(seed: u64) -> securitykg::graph::GraphStore {
    let world = World::generate(WorldConfig::tiny(seed));
    let web = SimulatedWeb::new(world, standard_sources(8), seed);
    let mut state = CrawlState::new();
    let (mut reports, _) = crawl_all(&web, &mut state, &CrawlerConfig::default(), u64::MAX / 4);
    // The parallel crawl delivers reports in scheduling order; fix a
    // canonical order so graph node ids are comparable across runs. (The
    // graph *contents* are order-independent either way; ids are not.)
    reports.sort_by(|a, b| {
        (a.source.0, &a.report_key, a.page).cmp(&(b.source.0, &b.report_key, b.page))
    });
    let extractor = IocOnlyExtractor {
        baseline: Arc::new(RegexNerBaseline::new(vec![])),
    };
    run_sequential(
        reports,
        &ParserRegistry::new(),
        &extractor,
        GraphConnector::new(),
        &PipelineConfig::default(),
    )
    .connector
    .graph
}

#[test]
fn same_seed_same_graph() {
    let a = build_graph(99);
    let b = build_graph(99);
    assert_eq!(a.node_count(), b.node_count());
    assert_eq!(a.edge_count(), b.edge_count());
    // Same nodes with same names and labels, id by id.
    for node in a.all_nodes() {
        let other = b.node(node.id).expect("same ids");
        assert_eq!(node.label, other.label);
        assert_eq!(node.name(), other.name());
    }
}

#[test]
fn different_seed_different_graph() {
    let a = build_graph(99);
    let b = build_graph(100);
    // Worlds differ → article routing differs → graphs differ.
    assert!(
        a.node_count() != b.node_count() || a.edge_count() != b.edge_count(),
        "distinct seeds should not collide exactly"
    );
}

#[test]
fn article_generation_is_stable_across_generator_instances() {
    let world = World::generate(WorldConfig::tiny(5));
    let sources = standard_sources(10);
    let a = ArticleGenerator::new(&world, 7).generate(&sources[3], 4);
    let b = ArticleGenerator::new(&world, 7).generate(&sources[3], 4);
    assert_eq!(a, b);
}

#[test]
fn crawl_state_serialisation_resumes_identically() {
    let world = World::generate(WorldConfig::tiny(3));
    let web = SimulatedWeb::new(world, standard_sources(12), 3);
    let config = CrawlerConfig::default();

    // Crawl halfway (time-gated), snapshot state, resume from the snapshot.
    let t_half = web.sources()[0].publish_time_ms(5);
    let mut state = CrawlState::new();
    let _ = crawl_all(&web, &mut state, &config, t_half);
    let snapshot = state.to_bytes().unwrap();

    let (rest_direct, _) = crawl_all(&web, &mut state, &config, u64::MAX / 4);
    let mut resumed = CrawlState::from_bytes(&snapshot).unwrap();
    let (rest_resumed, _) = crawl_all(&web, &mut resumed, &config, u64::MAX / 4);

    let mut keys_direct: Vec<String> = rest_direct
        .iter()
        .map(|r| format!("{}/{}/{}", r.source_name, r.report_key, r.page))
        .collect();
    let mut keys_resumed: Vec<String> = rest_resumed
        .iter()
        .map(|r| format!("{}/{}/{}", r.source_name, r.report_key, r.page))
        .collect();
    keys_direct.sort();
    keys_resumed.sort();
    assert_eq!(keys_direct, keys_resumed);
}
