//! Property-based tests over the heavier subsystems: layout, search,
//! fusion similarity, hunting, and the corpus generators.

use proptest::prelude::*;
use securitykg::hunting::{AuditGenerator, Hunter};
use securitykg::layout::{quadtree, QuadTree, Vec2};
use securitykg::search::SearchIndex;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Barnes–Hut approximates the exact repulsion within a θ-dependent
    /// bound on random point sets.
    #[test]
    fn barnes_hut_error_bound(
        points in prop::collection::vec((-500f32..500.0, -500f32..500.0), 3..80)
    ) {
        let pts: Vec<Vec2> = points.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
        let tree = QuadTree::build(&pts);
        for i in (0..pts.len()).step_by(7) {
            let exact = quadtree::naive_repulsion(&pts, i, 1.0);
            let approx = tree.repulsion(pts[i], Some(i), 1.0, 0.5);
            let err = (exact - approx).len();
            // The net force can nearly cancel, so bound the error against
            // the total *unsigned* force magnitude instead.
            let unsigned: f32 = (0..pts.len())
                .filter(|&j| j != i)
                .map(|j| 1.0 / (pts[i] - pts[j]).len2().max(1e-6).sqrt())
                .sum();
            prop_assert!(
                err <= 0.05 * unsigned + 1e-3,
                "point {i}: err {err}, unsigned {unsigned}, |exact| {}",
                exact.len()
            );
        }
    }

    /// θ = 0 reproduces the exact force for any configuration.
    #[test]
    fn barnes_hut_theta_zero_exact(
        points in prop::collection::vec((-100f32..100.0, -100f32..100.0), 2..40)
    ) {
        let pts: Vec<Vec2> = points.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
        let tree = QuadTree::build(&pts);
        for i in 0..pts.len().min(10) {
            let exact = quadtree::naive_repulsion(&pts, i, 1.0);
            let approx = tree.repulsion(pts[i], Some(i), 1.0, 0.0);
            prop_assert!((exact - approx).len() < 1e-2 * (1.0 + exact.len()));
        }
    }

    /// Every document containing a queried word is retrievable (BM25 never
    /// loses a posting), and scores are positive and finite.
    #[test]
    fn bm25_finds_all_containing_docs(
        docs in prop::collection::vec(
            prop::collection::vec("[a-d]{1,6}", 1..8), 1..20),
        query_idx in 0usize..100
    ) {
        let mut index = SearchIndex::default();
        for (i, words) in docs.iter().enumerate() {
            index.add(i as u32, &words.join(" "));
        }
        // Query one word that exists somewhere.
        let all_words: Vec<&String> = docs.iter().flatten().collect();
        let query = all_words[query_idx % all_words.len()].clone();
        let hits = index.search(&query, docs.len() + 1);
        let expected: std::collections::HashSet<u32> = docs
            .iter()
            .enumerate()
            .filter(|(_, ws)| ws.contains(&query))
            .map(|(i, _)| i as u32)
            .collect();
        let got: std::collections::HashSet<u32> = hits.iter().map(|h| h.doc).collect();
        prop_assert_eq!(got, expected);
        for hit in hits {
            prop_assert!(hit.score.is_finite() && hit.score > 0.0);
        }
    }

    /// Hunting never reports scores outside [0, 1] and a clean log never
    /// beats an implanted one for the implanted threat.
    #[test]
    fn hunting_scores_bounded_and_monotone(seed in 0u64..5_000) {
        use securitykg::hunting::behavior::behavior_of;
        use securitykg::graph::{GraphStore, Value};
        let mut g = GraphStore::new();
        let m = g.create_node("Malware", [("name", Value::from("threatx"))]);
        let f = g.create_node("FileName", [("name", Value::from("tx.exe"))]);
        let d = g.create_node("Domain", [("name", Value::from("tx.evil.ru"))]);
        g.create_edge(m, "DROP", f, [] as [(&str, Value); 0]).unwrap();
        g.create_edge(m, "CONNECTS_TO", d, [] as [(&str, Value); 0]).unwrap();
        let behavior = behavior_of(&g, m).unwrap();

        let clean = AuditGenerator::new(seed).benign_log(300, 0);
        let clean_score = securitykg::hunting::hunt(&behavior, &clean).score;

        let mut generator = AuditGenerator::new(seed);
        let mut dirty = generator.benign_log(300, 0);
        generator.implant(&mut dirty, &behavior.as_audit_steps(), "tx.exe", "h");
        let dirty_score = securitykg::hunting::hunt(&behavior, &dirty).score;

        prop_assert!((0.0..=1.0).contains(&clean_score));
        prop_assert!((0.0..=1.0).contains(&dirty_score));
        prop_assert!(dirty_score >= clean_score);
        prop_assert!(dirty_score > 0.99, "full implant must fully match: {dirty_score}");

        let hunter = Hunter::new(vec![behavior]);
        let reports = hunter.scan(&dirty);
        prop_assert_eq!(reports.len(), 1);
    }

    /// Generated articles are internally consistent for arbitrary seeds and
    /// article indices (the corpus invariant everything else rests on).
    #[test]
    fn corpus_articles_always_consistent(seed in 0u64..1_000, article in 0usize..50) {
        use securitykg::corpus::{standard_sources, ArticleGenerator, World, WorldConfig};
        let world = World::generate(WorldConfig::tiny(seed));
        let sources = standard_sources(60);
        let generator = ArticleGenerator::new(&world, seed);
        let spec = &sources[(seed as usize) % sources.len()];
        let gold = generator.generate(spec, article);
        prop_assert!(gold.is_consistent(), "{gold:?}");
        // All relation kinds obey the ontology.
        let ontology = securitykg::ontology::Ontology::standard();
        for rel in &gold.relations {
            let s = gold.mentions[rel.subject].kind;
            let o = gold.mentions[rel.object].kind;
            prop_assert!(ontology.allows(s, rel.kind, o));
        }
    }

    /// Fusion name similarity composite stays in bounds and equals 1 for
    /// normalisation-identical names.
    #[test]
    fn fusion_similarity_properties(a in "[a-z ]{1,16}", b in "[a-z ]{1,16}") {
        use securitykg::fusion::similarity::{name_similarity, normalize};
        let (na, nb) = (normalize(&a), normalize(&b));
        if na.is_empty() || nb.is_empty() {
            return Ok(());
        }
        let s = name_similarity(&na, &nb);
        prop_assert!((0.0..=1.0).contains(&s), "{s}");
        prop_assert!((name_similarity(&na, &na) - 1.0).abs() < 1e-12);
        prop_assert!((s - name_similarity(&nb, &na)).abs() < 1e-12, "symmetry");
    }

    /// Serving-cache coherence: for arbitrary query strings, the cached
    /// answer equals a fresh evaluation against the same snapshot, and the
    /// second execution of any query is a cache hit with an identical answer.
    #[test]
    fn serve_cache_coherent_with_fresh_evaluation(
        docs in prop::collection::vec("[a-e ]{1,24}", 1..10),
        queries in prop::collection::vec("[a-e .]{0,16}", 1..8),
        k in 1usize..10
    ) {
        use securitykg::graph::{GraphStore, Value};
        use securitykg::serve::{KgServe, KgSnapshot, Query};
        let mut graph = GraphStore::new();
        let mut search = SearchIndex::default();
        for (i, text) in docs.iter().enumerate() {
            let id = graph.create_node("Report", [("name", Value::from(format!("r{i}")))]);
            search.add(id, text);
        }
        let serve = KgServe::new(KgSnapshot::build(graph, search), 1024);
        let pinned = serve.pin();
        for q in &queries {
            // Search, Cypher and expansion all go through the same cache.
            let cases = [
                Query::Search { q: q.clone(), k },
                Query::Cypher {
                    q: "MATCH (n:Report) RETURN count(*)".into(),
                },
                Query::Expand { name: q.clone(), hops: 2, cap: 20 },
            ];
            for query in cases {
                let first = serve.execute(&query);
                let second = serve.execute(&query);
                prop_assert!(second.cached, "{query:?}");
                prop_assert_eq!(&second.answer, &first.answer);
                // The cached answer must equal an uncached re-evaluation.
                prop_assert_eq!(&second.answer, &pinned.answer(&query));
            }
        }
    }

    /// `SearchIndex` serde round-trip preserves BM25 scores bit-exactly and
    /// keeps the key→slot lookup intact, for arbitrary document sets.
    #[test]
    fn search_index_serde_round_trip_is_score_exact(
        docs in prop::collection::vec(
            prop::collection::vec("[a-d]{1,6}", 1..8), 1..15),
        query_idx in 0usize..100
    ) {
        let mut index = SearchIndex::default();
        for (i, words) in docs.iter().enumerate() {
            index.add(i as u32, &words.join(" "));
        }
        let json = serde_json::to_string(&index).unwrap();
        let back: SearchIndex<u32> = serde_json::from_str(&json).unwrap();
        let all_words: Vec<&String> = docs.iter().flatten().collect();
        let query = all_words[query_idx % all_words.len()].clone();
        let original = index.search(&query, docs.len() + 1);
        let restored = back.search(&query, docs.len() + 1);
        prop_assert_eq!(original.len(), restored.len());
        for (a, b) in original.iter().zip(&restored) {
            prop_assert_eq!(a.doc, b.doc);
            prop_assert_eq!(
                a.score.to_bits(), b.score.to_bits(),
                "scores must survive serde bit-exactly: {} vs {}", a.score, b.score
            );
        }
        for i in 0..docs.len() as u32 {
            prop_assert_eq!(index.slot_of(&i), back.slot_of(&i));
            prop_assert_eq!(index.key_at(i), back.key_at(i));
        }
    }
}
