//! Property-based tests over the core data structures and invariants,
//! spanning crates (hence at the workspace root).

use proptest::prelude::*;
use securitykg::extract::LabelSet;
use securitykg::fusion::similarity;
use securitykg::graph::{GraphStore, Value};
use securitykg::nlp::{split_sentences, tokenize, tokenize_protected, IocMatcher};
use securitykg::ontology::EntityKind;

proptest! {
    /// Tokenizer offsets always index the original string exactly.
    #[test]
    fn tokenizer_offsets_are_exact(text in "\\PC{0,200}") {
        for token in tokenize(&text) {
            prop_assert_eq!(&text[token.start..token.end], token.text.as_str());
        }
    }

    /// Protected tokenization never panics, preserves offsets, and produces
    /// non-overlapping, ordered tokens.
    #[test]
    fn protected_tokens_ordered_nonoverlapping(text in "\\PC{0,200}") {
        let matcher = IocMatcher::standard();
        let tokens = tokenize_protected(&text, &matcher);
        let mut last_end = 0usize;
        for token in &tokens {
            prop_assert!(token.start >= last_end, "overlap at {}", token.start);
            prop_assert_eq!(&text[token.start..token.end], token.text.as_str());
            last_end = token.end;
        }
    }

    /// Sentence splitting partitions the tokens (no loss, no duplication).
    #[test]
    fn sentences_partition_tokens(text in "[a-zA-Z0-9 .!?,']{0,200}") {
        let tokens = tokenize(&text);
        let total: usize = tokens.len();
        let sentences = split_sentences(tokens);
        let sum: usize = sentences.iter().map(Vec::len).sum();
        // Punctuation-only fragments may be dropped, never invented.
        prop_assert!(sum <= total);
    }

    /// BIO span encoding/decoding round-trips for arbitrary span layouts.
    #[test]
    fn bio_round_trip(spans in prop::collection::vec((0usize..30, 1usize..4, 0usize..18), 0..5)) {
        let labels = LabelSet::standard();
        // Build non-overlapping spans from (start, len, kind-index) triples.
        let kinds: Vec<EntityKind> =
            EntityKind::ALL.iter().copied().filter(|k| !k.is_report()).collect();
        let mut chosen: Vec<(EntityKind, usize, usize)> = Vec::new();
        let mut cursor = 0usize;
        for (start, len, kind_idx) in spans {
            let s = cursor + start;
            let e = s + len;
            chosen.push((kinds[kind_idx % kinds.len()], s, e));
            cursor = e;
        }
        let total = cursor + 3;
        let encoded = labels.encode_spans(total, &chosen);
        prop_assert_eq!(labels.decode_spans(&encoded), chosen);
    }

    /// Similarity metrics stay within [0, 1] and are symmetric.
    #[test]
    fn similarity_bounds_and_symmetry(a in "[a-z ]{0,20}", b in "[a-z ]{0,20}") {
        for f in [similarity::jaro, similarity::jaro_winkler, similarity::levenshtein_similarity, similarity::token_jaccard] {
            let ab = f(&a, &b);
            let ba = f(&b, &a);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&ab), "{ab}");
            prop_assert!((ab - ba).abs() < 1e-9, "asymmetric: {ab} vs {ba}");
        }
        prop_assert!((similarity::jaro(&a, &a) - 1.0).abs() < 1e-9 || a.is_empty());
    }

    /// The Cypher front-end never panics on arbitrary input.
    #[test]
    fn cypher_parser_never_panics(query in "\\PC{0,120}") {
        let mut g = GraphStore::new();
        let _ = g.query(&query);
    }

    /// Graph store invariants under a random operation sequence: live
    /// counts match, adjacency is symmetric, deleted nodes leave no edges.
    #[test]
    fn graph_store_invariants(ops in prop::collection::vec((0u8..4, 0usize..20, 0usize..20), 1..60)) {
        let mut g = GraphStore::new();
        let mut ids = Vec::new();
        for (op, a, b) in ops {
            match op {
                0 => ids.push(g.create_node("Malware", [("name", Value::from(format!("n{}", ids.len())))])),
                1 => {
                    if !ids.is_empty() {
                        let from = ids[a % ids.len()];
                        let to = ids[b % ids.len()];
                        let _ = g.create_edge(from, "RELATED_TO", to, [] as [(&str, Value); 0]);
                    }
                }
                2 => {
                    if !ids.is_empty() {
                        let _ = g.delete_node(ids[a % ids.len()]);
                    }
                }
                _ => {
                    if !ids.is_empty() {
                        let id = ids[a % ids.len()];
                        let _ = g.set_node_prop(id, "name", Value::from(format!("renamed{a}")));
                    }
                }
            }
        }
        // Invariants.
        prop_assert_eq!(g.all_nodes().count(), g.node_count());
        prop_assert_eq!(g.all_edges().count(), g.edge_count());
        for edge in g.all_edges() {
            prop_assert!(g.node(edge.from).is_some(), "dangling from");
            prop_assert!(g.node(edge.to).is_some(), "dangling to");
            prop_assert!(g.outgoing(edge.from).iter().any(|e| e.id == edge.id));
            prop_assert!(g.incoming(edge.to).iter().any(|e| e.id == edge.id));
        }
        // The (label, name) index resolves to a live node carrying exactly
        // that label and name. (With unconstrained create/rename, duplicate
        // names can exist; the index keeps the most recent writer — see the
        // GraphStore docs — so id equality is only guaranteed via
        // merge_node.)
        for node in g.all_nodes() {
            if let Some(name) = node.name() {
                let resolved = g.node_by_name(&node.label, name);
                prop_assert!(resolved.is_some(), "index lost name {name}");
                let hit = g.node(resolved.unwrap());
                prop_assert!(
                    hit.is_some_and(|h| h.label == node.label && h.name() == Some(name))
                );
            }
        }
    }

    /// FNV content hashing is stable and collision-free on distinct short
    /// inputs (sanity property, not a cryptographic claim).
    #[test]
    fn fnv_stable(data in prop::collection::vec(any::<u8>(), 0..64)) {
        let h1 = securitykg::ir::fnv1a64(&data);
        let h2 = securitykg::ir::fnv1a64(&data);
        prop_assert_eq!(h1, h2);
    }

    /// Canonical names are idempotent under re-canonicalisation.
    #[test]
    fn canonical_name_idempotent(text in "\\PC{1,40}") {
        use securitykg::ir::EntityMention;
        let m = EntityMention::new(EntityKind::Malware, text, 0, 0);
        let once = m.canonical_name();
        let m2 = EntityMention::new(EntityKind::Malware, once.clone(), 0, 0);
        prop_assert_eq!(m2.canonical_name(), once);
    }
}

#[test]
fn ontology_resolution_total_over_all_pairs() {
    // resolve_extracted never panics for any (kind, verb, kind) combination.
    let ontology = securitykg::ontology::Ontology::standard();
    for s in EntityKind::ALL {
        for o in EntityKind::ALL {
            for verb in ["drop", "use", "zzz", ""] {
                let _ = ontology.resolve_extracted(s, verb, o);
            }
        }
    }
}
