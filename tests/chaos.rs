//! Chaos harness: crash-safety of the durable ingest driver.
//!
//! The core property: for a fixed seed, killing a durable run after *any*
//! journal record and resuming must reconstruct a knowledge graph whose
//! digest is byte-identical to the uninterrupted run's. A second battery
//! turns the fault injectors up and checks that the pipeline accounting
//! invariant and the breaker telemetry survive sustained failures.

use securitykg::corpus::{FaultProfile, WorldConfig};
use securitykg::crawler::{CrawlerConfig, SchedulerConfig};
use securitykg::pipeline::TraceEvent;
use securitykg::{run_durable, DurableOptions, DurableReport, JournalError, SystemConfig};
use std::path::{Path, PathBuf};

fn system(seed: u64, faults: FaultProfile) -> SystemConfig {
    SystemConfig {
        world: WorldConfig::tiny(seed),
        articles_per_source: 2,
        seed,
        faults,
        ..SystemConfig::default()
    }
}

fn sched_config() -> SchedulerConfig {
    SchedulerConfig {
        breaker_threshold: 2,
        breaker_cooldown_ms: 2 * 3_600_000,
        ..SchedulerConfig::default()
    }
}

fn tmp_dir(name: &str, k: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kg-chaos-{}-{name}-{k}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run(dir: &Path, system: &SystemConfig, until_ms: u64, opts: &DurableOptions) -> DurableReport {
    run_durable(system, &sched_config(), dir, until_ms, opts).expect("durable run")
}

const START: u64 = securitykg::DEFAULT_START_MS;

#[test]
fn crash_after_any_record_recovers_to_identical_digest() {
    let system = system(7, FaultProfile::default());
    let opts = DurableOptions {
        snapshot_every_cycles: 5,
        ..DurableOptions::default()
    };

    // Uninterrupted reference run.
    let dir = tmp_dir("ref", 0);
    let reference = run(&dir, &system, START, &opts);
    let _ = std::fs::remove_dir_all(&dir);
    assert!(reference.cycles_run > 0);
    assert!(reference.reports_ingested > 0);
    let total_records = reference.records_appended;
    assert!(
        total_records > 20,
        "want a journal worth killing, got {total_records}"
    );

    // Kill after each of the first records exhaustively, then stride through
    // the rest so every region of the journal (early cycles, mid-run
    // snapshots, the tail) gets a kill point.
    let mut kill_points: Vec<u64> = (0..10.min(total_records)).collect();
    kill_points.extend((10..total_records).step_by(7));
    for k in kill_points {
        let dir = tmp_dir("kill", k);
        let crash = DurableOptions {
            crash_after_records: Some(k),
            // Every third kill leaves a torn half-written frame behind.
            crash_torn_tail: k % 3 == 0,
            ..opts.clone()
        };
        match run_durable(&system, &sched_config(), &dir, START, &crash) {
            Err(JournalError::InjectedCrash) => {}
            other => panic!("kill at record {k}: expected injected crash, got {other:?}"),
        }
        let resumed = run(&dir, &system, START, &opts);
        assert_eq!(
            resumed.kg_digest, reference.kg_digest,
            "kill at record {k}: recovered digest diverged"
        );
        if k % 3 == 0 && k > 0 {
            assert!(resumed.torn_tail, "kill at record {k} left a torn tail");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn resume_is_idempotent_and_continues_the_run() {
    let system = system(11, FaultProfile::default());
    let opts = DurableOptions::default();
    let horizon = START + 24 * 3_600_000;

    // One uninterrupted run to the full horizon...
    let ref_dir = tmp_dir("uninterrupted", 0);
    let reference = run(&ref_dir, &system, horizon, &opts);
    let _ = std::fs::remove_dir_all(&ref_dir);

    // ...versus the same horizon reached in two sittings.
    let dir = tmp_dir("two-sittings", 0);
    let first = run(&dir, &system, START + 6 * 3_600_000, &opts);
    assert!(first.cycles_run > 0);
    let second = run(&dir, &system, horizon, &opts);
    assert!(second.resumed_from_snapshot.is_some());
    assert_eq!(second.kg_digest, reference.kg_digest);

    // A third call with nothing left to do is a no-op with the same digest.
    let noop = run(&dir, &system, horizon, &opts);
    assert_eq!(noop.cycles_run, 0);
    assert_eq!(noop.kg_digest, reference.kg_digest);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_recovery_holds_under_elevated_faults() {
    let system = system(13, FaultProfile::chaos());
    let opts = DurableOptions {
        snapshot_every_cycles: 16,
        ..DurableOptions::default()
    };
    let horizon = START + 24 * 3_600_000;

    let ref_dir = tmp_dir("chaos-ref", 0);
    let reference = run(&ref_dir, &system, horizon, &opts);
    let _ = std::fs::remove_dir_all(&ref_dir);

    for k in [3, 17, 40] {
        let dir = tmp_dir("chaos-kill", k);
        let crash = DurableOptions {
            crash_after_records: Some(k),
            crash_torn_tail: k == 17,
            ..opts.clone()
        };
        match run_durable(&system, &sched_config(), &dir, horizon, &crash) {
            Err(JournalError::InjectedCrash) => {}
            other => panic!("chaos kill at {k}: expected injected crash, got {other:?}"),
        }
        let resumed = run(&dir, &system, horizon, &opts);
        assert_eq!(
            resumed.kg_digest, reference.kg_digest,
            "chaos kill at record {k}: recovered digest diverged"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn elevated_faults_keep_accounting_balanced_and_surface_breakers() {
    let system = system(17, FaultProfile::chaos());
    let mut sched = sched_config();
    // Tight budget so chaos faults actually abort cycles and trip breakers.
    sched.crawler = CrawlerConfig {
        max_retries: 0,
        failure_budget: 1,
        ..CrawlerConfig::default()
    };
    let opts = DurableOptions {
        snapshot_every_cycles: 64,
        ..DurableOptions::default()
    };
    let dir = tmp_dir("invariant", 0);
    let horizon = START + 10 * 24 * 3_600_000;
    let report = run_durable(&system, &sched, &dir, horizon, &opts).expect("chaos run");
    let _ = std::fs::remove_dir_all(&dir);

    // PR-1 accounting invariant: every ported page is accounted for even
    // while fetches truncate, rate-limit and hand over mangled HTML.
    assert!(report.reports_ingested > 0, "{report:?}");
    assert!(
        report.metrics.accounting_balanced(),
        "ported {} != screened_out {} + parsed {} + parse_errors {} + quarantined {}",
        report.metrics.ported,
        report.metrics.screened_out,
        report.metrics.parsed,
        report.metrics.parse_errors,
        report.metrics.quarantined,
    );

    // Breaker transitions are visible in both the stats and the trace.
    assert!(report.stats.breaker_opens > 0, "{:?}", report.stats);
    assert!(!report.stats.breaker_events.is_empty());
    let trace = report.trace.snapshot();
    let transitions = trace
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::BreakerTransition { .. }))
        .count();
    assert!(transitions > 0, "no BreakerTransition events in the trace");
    let snapshots = trace
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::SnapshotTaken { .. }))
        .count();
    assert!(snapshots > 0, "no SnapshotTaken events in the trace");
}
