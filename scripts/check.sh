#!/usr/bin/env bash
# Repo gate: formatting, lints, tests. Run from anywhere; exits non-zero on
# the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace -- -D warnings

echo "== cargo test (workspace) =="
test_log="$(mktemp)"
trap 'rm -f "$test_log"' EXIT
cargo test -q --workspace 2>&1 | tee "$test_log"
awk '/^test result:/ { passed += $4; suites += 1 }
     END { printf "test summary: %d tests passed across %d suites\n", passed, suites }' \
    "$test_log"

echo "== E4 smoke (4 connect workers, digest vs sequential) =="
cargo run -q -p kg-bench --bin exp_pipeline --release -- --smoke

echo "== E13 smoke (incremental publish digest vs full rebuild) =="
cargo run -q -p kg-bench --bin exp_publish --release -- --smoke

echo "== E14 smoke (standing queries vs full-rescan oracle) =="
cargo run -q -p kg-bench --bin exp_subscribe --release -- --smoke

echo "== E15 smoke (segment checkpoint + recovery digest parity) =="
cargo run -q -p kg-bench --bin exp_persist --release -- --smoke

echo "== E16 smoke (open-loop load, 2 shards, per-request merge equality) =="
cargo run -q -p kg-bench --bin exp_load --release -- --smoke

echo "== E17 smoke (compiled plans byte-identical to the interpreter) =="
cargo run -q -p kg-bench --bin exp_plan --release -- --smoke

echo "== E18 smoke (binary vs JSON payload decode digest parity) =="
cargo run -q -p kg-bench --bin exp_recover_decode --release -- --smoke

echo "== serving stress (elevated readers) =="
SERVE_STRESS_READERS=8 cargo test -q --test serving

echo "== chaos harness (bounded) =="
scripts/chaos.sh

echo "all checks passed"
