#!/usr/bin/env bash
# Repo gate: formatting, lints, tests. Run from anywhere; exits non-zero on
# the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace -- -D warnings

echo "== cargo test =="
cargo test -q

echo "== chaos harness (bounded) =="
scripts/chaos.sh

echo "all checks passed"
