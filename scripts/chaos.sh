#!/usr/bin/env bash
# Bounded CLI-level chaos check over the durable build path:
#   1. kill after N journal records → resume → digest matches the reference
#      (the resume also runs --shards 4, so the per-shard partial digests
#      must reassemble the recovered kg-digest or the run fails);
#   2. kill before global durable I/O op N (half of them torn) → resume →
#      digest matches — this sweeps kills into checkpoint, prune, journal
#      truncation and compaction windows;
#   3. flip a byte inside the newest data segment → `recover --verify` still
#      exits 0 with the corruption attributed, and a resume falls back past
#      the quarantined checkpoint to the reference digest;
#   4. destroy the manifest magic → `recover` fails cleanly (exit 1, no panic);
#   5. an elevated-fault (--chaos) build completes.
# Run from anywhere; exits non-zero on the first divergence.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/debug/securitykg
SEED=5
ARTICLES=3
WORK=$(mktemp -d "${TMPDIR:-/tmp}/kg-chaos.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

cargo build -q -p securitykg-cli

digest_of() { grep '^kg-digest:' "$1" | awk '{print $2}'; }

echo "== uninterrupted reference run =="
"$BIN" build --journal "$WORK/ref" --articles "$ARTICLES" --days 0 --seed "$SEED" \
  >"$WORK/ref.out" 2>/dev/null
REF=$(digest_of "$WORK/ref.out")
echo "reference digest: $REF"

for K in 5 20 55; do
  echo "== kill after journal record $K, then resume =="
  DIR="$WORK/kill-$K"
  set +e
  "$BIN" build --journal "$DIR" --articles "$ARTICLES" --days 0 --seed "$SEED" \
    --crash-after-records "$K" >/dev/null 2>&1
  CODE=$?
  set -e
  if [ "$CODE" -ne 9 ]; then
    echo "FAIL: expected injected-crash exit 9, got $CODE" >&2
    exit 1
  fi
  # --shards 4 partitions the recovered graph and fails (nonzero exit)
  # unless the per-shard partial digests reassemble the printed kg-digest.
  "$BIN" build --resume "$DIR" --articles "$ARTICLES" --days 0 --seed "$SEED" \
    --shards 4 >"$WORK/resume-$K.out" 2>"$WORK/resume-$K.err"
  GOT=$(digest_of "$WORK/resume-$K.out")
  if [ "$GOT" != "$REF" ]; then
    echo "FAIL: kill at record $K recovered to $GOT, expected $REF" >&2
    exit 1
  fi
  if ! grep -q 'shard partition verified' "$WORK/resume-$K.err"; then
    echo "FAIL: resume did not verify the 4-shard partition" >&2
    cat "$WORK/resume-$K.err" >&2
    exit 1
  fi
  echo "recovered digest matches; 4-shard partition reassembles it"
done

echo "== uninterrupted reference run (checkpoint every cycle) =="
"$BIN" build --journal "$WORK/io-ref" --articles "$ARTICLES" --days 2 --seed "$SEED" \
  --snapshot-every 1 >"$WORK/io-ref.out" 2>/dev/null
IOREF=$(digest_of "$WORK/io-ref.out")
echo "reference digest: $IOREF"

for K in 3 40 90; do
  echo "== kill before durable I/O op $K, then resume =="
  DIR="$WORK/io-kill-$K"
  set +e
  "$BIN" build --journal "$DIR" --articles "$ARTICLES" --days 2 --seed "$SEED" \
    --snapshot-every 1 --kill-at-io "$K" >/dev/null 2>&1
  CODE=$?
  set -e
  if [ "$CODE" -ne 9 ]; then
    echo "FAIL: expected injected-crash exit 9, got $CODE" >&2
    exit 1
  fi
  # --journal, not --resume: a kill in the opening ops can die before the
  # journal file exists, and the resume must then redo from scratch.
  "$BIN" build --journal "$DIR" --articles "$ARTICLES" --days 2 --seed "$SEED" \
    --snapshot-every 1 >"$WORK/io-resume-$K.out" 2>/dev/null
  GOT=$(digest_of "$WORK/io-resume-$K.out")
  if [ "$GOT" != "$IOREF" ]; then
    echo "FAIL: I/O kill at op $K recovered to $GOT, expected $IOREF" >&2
    exit 1
  fi
  echo "recovered digest matches"
done

echo "== bit flip in the newest data segment =="
SRC="$WORK/flip-src"
"$BIN" build --journal "$SRC" --articles "$ARTICLES" --days 1 --seed "$SEED" \
  --snapshot-every 2 >"$WORK/flip-src.out" 2>/dev/null
FLIPREF=$(digest_of "$WORK/flip-src.out")

DIR="$WORK/flip-data"
cp -r "$SRC" "$DIR"
# The last byte of the newest data file belongs to the newest checkpoint's
# final frame: flipping it must quarantine that checkpoint, not crash.
DATA=$(ls "$DIR"/data-*.log | sort | tail -1)
SIZE=$(wc -c <"$DATA")
OLD=$(tail -c 1 "$DATA" | od -An -tu1 | tr -d ' ')
printf "$(printf '\\%03o' $((OLD ^ 255)))" |
  dd of="$DATA" bs=1 seek=$((SIZE - 1)) conv=notrunc 2>/dev/null
set +e
"$BIN" recover --dir "$DIR" --verify >"$WORK/flip-recover.out" 2>&1
CODE=$?
set -e
if [ "$CODE" -ne 0 ]; then
  echo "FAIL: recover --verify exited $CODE on a single flipped byte" >&2
  cat "$WORK/flip-recover.out" >&2
  exit 1
fi
if ! grep -q '^quarantined:' "$WORK/flip-recover.out"; then
  echo "FAIL: recover did not attribute the corrupt checkpoint" >&2
  cat "$WORK/flip-recover.out" >&2
  exit 1
fi
echo "corruption attributed: $(grep -c '^quarantined:' "$WORK/flip-recover.out") event(s)"
"$BIN" build --resume "$DIR" --articles "$ARTICLES" --days 1 --seed "$SEED" \
  --snapshot-every 2 >"$WORK/flip-resume.out" 2>/dev/null
GOT=$(digest_of "$WORK/flip-resume.out")
if [ "$GOT" != "$FLIPREF" ]; then
  echo "FAIL: resume past the flipped byte recovered to $GOT, expected $FLIPREF" >&2
  exit 1
fi
echo "resume fell back past the quarantined checkpoint; digest matches"

echo "== mixed payload formats: legacy JSON prefix, binary resume =="
DIR="$WORK/mixed"
"$BIN" build --journal "$DIR" --articles "$ARTICLES" --days 0 --seed "$SEED" \
  --snapshot-every 2 --json-payloads >"$WORK/mixed-json.out" 2>/dev/null
"$BIN" recover --dir "$DIR" --verify >"$WORK/mixed-verify-json.out" 2>&1
if ! grep -q 'payload json' "$WORK/mixed-verify-json.out"; then
  echo "FAIL: recover did not report the legacy checkpoints as 'payload json'" >&2
  cat "$WORK/mixed-verify-json.out" >&2
  exit 1
fi
if grep -Eq 'payload (bin|mixed)' "$WORK/mixed-verify-json.out"; then
  echo "FAIL: json-payload run reported binary blobs" >&2
  cat "$WORK/mixed-verify-json.out" >&2
  exit 1
fi
# Resume the legacy store with the binary-writing default: carried-forward
# JSON blobs now sit beside fresh KGBIN001 blobs in the same manifest.
"$BIN" build --resume "$DIR" --articles "$ARTICLES" --days 2 --seed "$SEED" \
  --snapshot-every 2 >"$WORK/mixed-resume.out" 2>/dev/null
MIXED=$(digest_of "$WORK/mixed-resume.out")
"$BIN" build --journal "$WORK/mixed-ref" --articles "$ARTICLES" --days 2 --seed "$SEED" \
  --snapshot-every 2 >"$WORK/mixed-ref.out" 2>/dev/null
MIXEDREF=$(digest_of "$WORK/mixed-ref.out")
if [ "$MIXED" != "$MIXEDREF" ]; then
  echo "FAIL: mixed-format resume produced $MIXED, binary reference $MIXEDREF" >&2
  exit 1
fi
"$BIN" recover --dir "$DIR" --verify >"$WORK/mixed-verify.out" 2>&1
if ! grep -Eq 'payload (bin|mixed)' "$WORK/mixed-verify.out"; then
  echo "FAIL: post-resume store shows no binary payloads" >&2
  cat "$WORK/mixed-verify.out" >&2
  exit 1
fi
echo "mixed-format store recovers to the reference digest; formats reported"

echo "== destroyed manifest magic fails cleanly =="
DIR="$WORK/flip-manifest"
cp -r "$SRC" "$DIR"
OLD=$(head -c 1 "$DIR/manifest.log" | od -An -tu1 | tr -d ' ')
printf "$(printf '\\%03o' $((OLD ^ 255)))" |
  dd of="$DIR/manifest.log" bs=1 conv=notrunc 2>/dev/null
set +e
"$BIN" recover --dir "$DIR" >"$WORK/manifest-recover.out" 2>&1
CODE=$?
set -e
if [ "$CODE" -eq 0 ]; then
  echo "FAIL: recover claimed success over an unusable manifest" >&2
  exit 1
fi
echo "recover refused the unusable manifest (exit $CODE)"

echo "== elevated-fault build completes =="
"$BIN" build --journal "$WORK/chaos" --articles "$ARTICLES" --days 2 --seed "$SEED" \
  --chaos >"$WORK/chaos.out" 2>&1
grep -q '^kg-digest:' "$WORK/chaos.out"

echo "chaos checks passed"
