#!/usr/bin/env bash
# Bounded CLI-level chaos check: kill a durable build after a handful of
# journal records, resume it, and demand the recovered graph digest match an
# uninterrupted run's bit-for-bit. Also proves a chaos-fault build completes.
# Run from anywhere; exits non-zero on the first divergence.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/debug/securitykg
SEED=5
ARTICLES=3
WORK=$(mktemp -d "${TMPDIR:-/tmp}/kg-chaos.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

cargo build -q -p securitykg-cli

digest_of() { grep '^kg-digest:' "$1" | awk '{print $2}'; }

echo "== uninterrupted reference run =="
"$BIN" build --journal "$WORK/ref" --articles "$ARTICLES" --days 0 --seed "$SEED" \
  >"$WORK/ref.out" 2>/dev/null
REF=$(digest_of "$WORK/ref.out")
echo "reference digest: $REF"

for K in 5 20 55; do
  echo "== kill after journal record $K, then resume =="
  DIR="$WORK/kill-$K"
  set +e
  "$BIN" build --journal "$DIR" --articles "$ARTICLES" --days 0 --seed "$SEED" \
    --crash-after-records "$K" >/dev/null 2>&1
  CODE=$?
  set -e
  if [ "$CODE" -ne 9 ]; then
    echo "FAIL: expected injected-crash exit 9, got $CODE" >&2
    exit 1
  fi
  "$BIN" build --resume "$DIR" --articles "$ARTICLES" --days 0 --seed "$SEED" \
    >"$WORK/resume-$K.out" 2>/dev/null
  GOT=$(digest_of "$WORK/resume-$K.out")
  if [ "$GOT" != "$REF" ]; then
    echo "FAIL: kill at record $K recovered to $GOT, expected $REF" >&2
    exit 1
  fi
  echo "recovered digest matches"
done

echo "== elevated-fault build completes =="
"$BIN" build --journal "$WORK/chaos" --articles "$ARTICLES" --days 2 --seed "$SEED" \
  --chaos >"$WORK/chaos.out" 2>&1
grep -q '^kg-digest:' "$WORK/chaos.out"

echo "chaos checks passed"
